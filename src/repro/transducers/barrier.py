"""The coordinating counterpart of the Section 4.2 protocols: with ``All``,
a transducer can compute *any* generic query distributedly — by building a
global synchronization barrier out of per-node acknowledgement handshakes.

Protocol (per node x):

* broadcast every local input fact (``cast_R``);
* acknowledge every input fact stored, tagged with x (``ack_R(x, ...)``);
* once every local fact has been acknowledged by some node y, declare
  ``done(x, y)`` — "y now holds everything I was given";
* output Q over the collected facts only when ``done(y, x)`` has been
  received from **every** other node in ``All``.

When x holds done-declarations from everyone, its collection is exactly the
global input, so the output is Q(I) — for *any* computable query, monotone
or not.  The price is the use of ``All``: the transducer waits on explicit
word from every node in the network, which is precisely the *global
coordination* that Definition 3 excludes.  Accordingly (and the tests
verify this):

* it distributedly computes queries far outside Mdisjoint, but
* it admits **no heartbeat-only witness** — under any policy, the output
  gate needs messages from the other nodes — so it is not
  coordination-free; and
* it cannot be built at all in the no-``All`` variants (Theorem 4.5's
  other half: without ``All``, transducers are automatically
  coordination-free — there is simply nothing to wait on).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..datalog.schema import Schema
from ..datalog.terms import Fact
from ..queries.base import Query
from .protocols import (
    ACK_PREFIX,
    CAST_PREFIX,
    GOT_PREFIX,
    _casts,
    _memory_schema,
    _ProtocolState,
)
from .schema import ModelVariant, POLICY_AWARE, TransducerSchema
from .transducer import LocalView, PythonTransducer

__all__ = ["global_barrier_transducer", "barrier_baseline", "DONE"]

DONE = "done"


def _barrier_schema(query: Query, variant: ModelVariant) -> TransducerSchema:
    inputs = query.input_schema
    relations: dict[str, int] = {}
    for name in inputs:
        relations[CAST_PREFIX + name] = inputs.arity(name)
        relations[ACK_PREFIX + name] = inputs.arity(name) + 1
    relations[DONE] = 2
    messages = Schema(relations, allow_nullary=True)
    return TransducerSchema(
        inputs=inputs,
        outputs=query.output_schema,
        messages=messages,
        memory=_memory_schema(messages),
        variant=variant,
    )


def _barrier_messages(state: _ProtocolState) -> list[Fact]:
    view = state.view
    me = view.my_id
    messages: list[Fact] = list(_casts(view.local_input))

    # Acknowledge everything stored (local facts included, so a node whose
    # facts were replicated to us is released without a resend).
    for fact in state.known_facts:
        messages.append(Fact(ACK_PREFIX + fact.relation, (me,) + fact.values))

    # Release every node whose acks cover our entire local input.
    acked_by: dict[Hashable, set[Fact]] = {}
    for ack in (
        f for f in state.memory if f.relation.startswith(GOT_PREFIX + ACK_PREFIX)
    ):
        relation = ack.relation[len(GOT_PREFIX) + len(ACK_PREFIX):]
        acked_by.setdefault(ack.values[0], set()).add(Fact(relation, ack.values[1:]))
    for other in view.all_nodes:
        if other == me:
            continue
        if all(fact in acked_by.get(other, ()) for fact in view.local_input):
            messages.append(Fact(DONE, (me, other)))
    return messages


def _barrier_complete(state: _ProtocolState) -> bool:
    view = state.view
    me = view.my_id
    released_by = {
        f.values[0]
        for f in state.got(DONE)
        if f.values[1] == me
    }
    return all(other in released_by for other in view.all_nodes if other != me)


def global_barrier_transducer(
    query: Query, *, variant: ModelVariant = POLICY_AWARE
) -> PythonTransducer:
    """A transducer computing *query* distributedly through a global barrier.

    Works for every generic query; requires ``Id`` and ``All``; is provably
    not coordination-free (no heartbeat-only witness exists).
    """
    schema = _barrier_schema(query, variant)

    def out(view: LocalView) -> Iterable[Fact]:
        state = _ProtocolState(view, query.input_schema)
        if _barrier_complete(state):
            return query(state.known_facts)
        return ()

    def insert(view: LocalView) -> Iterable[Fact]:
        state = _ProtocolState(view, query.input_schema)
        yield from state.store_deliveries()
        yield from state.sent_markers(state.fresh(_barrier_messages(state)))

    def send(view: LocalView) -> Iterable[Fact]:
        state = _ProtocolState(view, query.input_schema)
        return state.fresh(_barrier_messages(state))

    return PythonTransducer(
        schema, out=out, insert=insert, send=send, name=f"barrier[{query.name}]"
    )


def barrier_baseline():
    """The coordinating baseline bundle for the chaos-confluence sweep.

    The barrier protocol waits on explicit word from every node, so it is
    *not* coordination-free — but it is still built from idempotent,
    delivered-message-driven updates, so under any fair schedule (faulty
    channels included: duplication, delay, drop-with-redelivery) it must
    converge to the same Q(I).  Including it in the sweep separates the two
    notions the paper keeps distinct: confluence under fair faults holds
    for coordinating and coordination-free protocols alike; what the
    barrier lacks is the heartbeat-only witness.
    """
    from ..datalog.parser import parse_facts
    from ..datalog.instance import Instance
    from ..queries.graph import complement_tc_query
    from .protocols import Section4Protocol

    cotc = complement_tc_query()
    return Section4Protocol(
        key="barrier-baseline",
        theorem="§4.2 discussion (coordinating baseline, uses All)",
        transducer=global_barrier_transducer(cotc),
        query=cotc,
        instance=Instance(parse_facts("E(1,2). E(2,1). E(3,4).")),
    )
