"""Relational transducers: the quadruple (Qout, Qins, Qdel, Qsnd).

A transducer's four queries all read the same database D = J ∪ S, where
J is the node's local snapshot (input fragment, output, memory, delivered
messages) and S the system facts (Section 4.1.3).  Two concrete flavours:

* :class:`PythonTransducer` — the four queries are Python callables over a
  :class:`LocalView`; used for the evaluation protocols of Section 4.2 whose
  bookkeeping would be tedious in pure Datalog.
* :class:`DatalogTransducer` — the four queries are stratified Datalog¬
  programs evaluated on the materialized D; the declarative-networking
  flavour of the model.

The :class:`LocalView` enforces the model variant: reading ``my_id`` without
the ``Id`` relation, ``all_nodes`` without ``All``, or the policy accessors
in a policy-blind variant raises :class:`SystemRelationUnavailable` — the
programmatic analogue of the relation simply not being in the schema.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Callable, Hashable, Iterable, Iterator

from ..datalog.instance import Instance
from ..datalog.program import Program
from ..datalog.stratified import StratifiedEvaluator
from ..datalog.terms import Fact
from .policy import DistributionPolicy, Network
from .schema import (
    ALL_RELATION,
    ID_RELATION,
    MYADOM_RELATION,
    TransducerSchema,
    policy_relation_name,
)

__all__ = [
    "SystemRelationUnavailable",
    "LocalView",
    "Transducer",
    "PythonTransducer",
    "DatalogTransducer",
    "TransducerUpdate",
]


class SystemRelationUnavailable(RuntimeError):
    """Raised when a transducer reads a system relation its model lacks."""


class LocalView:
    """Everything a node may consult during one transition (the database D).

    Built by the runtime; exposes the paper's system relations as lazy
    accessors so Python transducers need not materialize the (potentially
    large) ``policy_R`` relations.
    """

    def __init__(
        self,
        *,
        node: Hashable,
        network: Network,
        schema: TransducerSchema,
        policy: DistributionPolicy,
        local_input: Instance,
        output: Instance,
        memory: Instance,
        delivered: Instance,
        db_token: Hashable | None = None,
    ) -> None:
        self._node = node
        self._network = network
        self._schema = schema
        self._policy = policy
        self._local_input = local_input
        self._output = output
        self._memory = memory
        self._delivered = delivered
        self._known: frozenset | None = None
        self._responsible: frozenset | None = None
        self._db_token = db_token
        #: Per-view memo for values derived purely from this view.  The four
        #: queries of one transition see the same immutable database D, so
        #: protocol implementations stash shared intermediates here (decoded
        #: memory, candidate message lists) instead of recomputing them in
        #: each of Qout/Qins/Qdel/Qsnd.
        self.scratch: dict[str, object] = {}

    @property
    def db_token(self) -> Hashable | None:
        """A fingerprint of the database D this view presents, or ``None``.

        Supplied by the runtime (see ``Run.transition``): views with equal
        tokens are guaranteed to present an identical D to the transducer,
        so the step result can be replayed from cache.  ``None`` means
        "unknown provenance — always evaluate"."""
        return self._db_token

    # -- raw parts of J -------------------------------------------------

    @property
    def schema(self) -> TransducerSchema:
        return self._schema

    @property
    def local_input(self) -> Instance:
        """H(x): the input fragment assigned to this node by the policy."""
        return self._local_input

    @property
    def output(self) -> Instance:
        """The output facts this node has produced so far."""
        return self._output

    @property
    def memory(self) -> Instance:
        """The node's memory relations."""
        return self._memory

    @property
    def delivered(self) -> Instance:
        """M: the messages delivered in this transition, collapsed to a set."""
        return self._delivered

    def local_facts(self) -> Instance:
        """J = H(x) ∪ s1(x) ∪ M."""
        return self._local_input | self._output | self._memory | self._delivered

    # -- system relations (Section 4.1.3) --------------------------------

    @property
    def my_id(self) -> Hashable:
        """The ``Id`` relation: this node's identifier."""
        if not self._schema.variant.has_id:
            raise SystemRelationUnavailable(
                f"model {self._schema.variant.name} has no Id relation"
            )
        return self._node

    @property
    def all_nodes(self) -> frozenset:
        """The ``All`` relation: every node of the network."""
        if not self._schema.variant.has_all:
            raise SystemRelationUnavailable(
                f"model {self._schema.variant.name} has no All relation"
            )
        return frozenset(self._network)

    def known_adom(self) -> frozenset:
        """The ``MyAdom`` relation: the set A of the transition semantics.

        With ``All``: A = N ∪ adom(J); without: A = {x} ∪ adom(J) (Sec 4.3).
        """
        if not self._schema.variant.has_policy:
            raise SystemRelationUnavailable(
                f"model {self._schema.variant.name} has no MyAdom relation"
            )
        return self._known_values()

    def _known_values(self) -> frozenset:
        if self._known is None:
            values = set(self.local_facts().adom())
            if self._schema.variant.has_all:
                values |= set(self._network)
            elif self._schema.variant.has_id:
                values.add(self._node)
            self._known = frozenset(values)
        return self._known

    def is_responsible(self, fact: Fact) -> bool:
        """The ``policy_R`` relations, pointwise: is this fact over the known
        active domain and assigned to this node by the policy?"""
        if not self._schema.variant.has_policy:
            raise SystemRelationUnavailable(
                f"model {self._schema.variant.name} has no policy relations"
            )
        if not self._schema.inputs.contains_fact(fact):
            return False
        if not fact.adom() <= self._known_values():
            return False
        return self._policy.assigns(fact, self._node)

    def responsible_values(self) -> frozenset:
        """Values a ∈ MyAdom this node is responsible for under a
        domain-guided policy.

        Uses the paper's observation (proof of Theorem 4.4): x ∈ alpha(a)
        iff ``policy_R(a, ..., a)`` is shown to x for at least one input
        relation R.
        """
        if self._responsible is not None:
            return self._responsible
        memo = getattr(self._policy, "responsible_memo", None)
        key = None
        if memo is not None:
            # Ownership depends only on (policy, node, known adom); the
            # policy object anchors the memo so it is shared across
            # transitions and runs.
            key = (self._node, self._known_values())
            cached = memo.get(key)
            if cached is not None:
                self._responsible = cached
                return cached
        values = set()
        for value in self._known_values():
            for relation in self._schema.inputs:
                arity = self._schema.inputs.arity(relation)
                if arity == 0:
                    # A nullary probe fact carries no value, so it says
                    # nothing about ownership of `value` (Section 7).
                    continue
                if self.is_responsible(Fact(relation, (value,) * arity)):
                    values.add(value)
                    break
        self._responsible = frozenset(values)
        if memo is not None:
            if len(memo) >= 65_536:
                del memo[next(iter(memo))]
            memo[key] = self._responsible
        return self._responsible

    def policy_facts(self, *, limit: int = 200_000) -> Iterator[Fact]:
        """Materialize all ``policy_R`` facts over the known active domain.

        Exponential in the relation arities; guarded by *limit* because the
        Datalog transducers are run on small experimental inputs only.
        """
        if not self._schema.variant.has_policy:
            raise SystemRelationUnavailable(
                f"model {self._schema.variant.name} has no policy relations"
            )
        values = sorted(self._known_values(), key=repr)
        produced = 0
        for relation in self._schema.inputs:
            arity = self._schema.inputs.arity(relation)
            for combo in itertools.product(values, repeat=arity):
                produced += 1
                if produced > limit:
                    raise RuntimeError(
                        f"policy materialization exceeded {limit} candidate facts"
                    )
                candidate = Fact(relation, combo)
                if self._policy.assigns(candidate, self._node):
                    yield Fact(policy_relation_name(relation), combo)

    def system_facts(self) -> Instance:
        """The fully materialized system instance S (for Datalog transducers)."""
        facts: list[Fact] = []
        variant = self._schema.variant
        if variant.has_id:
            facts.append(Fact(ID_RELATION, (self._node,)))
        if variant.has_all:
            facts.extend(Fact(ALL_RELATION, (node,)) for node in self._network)
        if variant.has_policy:
            facts.extend(
                Fact(MYADOM_RELATION, (value,)) for value in self._known_values()
            )
            facts.extend(self.policy_facts())
        return Instance(facts)

    def database(self) -> Instance:
        """The full database D = J ∪ S of the transition semantics."""
        return self.local_facts() | self.system_facts()


class TransducerUpdate:
    """The result of running the four queries on one view."""

    __slots__ = ("output", "insertions", "deletions", "messages")

    def __init__(
        self,
        output: Instance,
        insertions: Instance,
        deletions: Instance,
        messages: Instance,
    ) -> None:
        self.output = output
        self.insertions = insertions
        self.deletions = deletions
        self.messages = messages


#: Default FIFO capacity of the per-transducer step cache.
STEP_CACHE_SIZE = 4096


def _cache_enabled_default() -> bool:
    from ..flags import query_cache_enabled

    return query_cache_enabled()


class Transducer(ABC):
    """A relational transducer over a :class:`TransducerSchema`.

    The four queries of the model are *generic deterministic queries over
    the database D* (Section 4.1.3), so the whole transition result is a
    pure function of D.  :meth:`step` exploits this: when the runtime
    supplies a database fingerprint (``LocalView.db_token``), the computed
    :class:`TransducerUpdate` is memoized under that token and replayed on
    the next transition that presents an identical D — which is every
    heartbeat and every duplicate delivery.  Set ``REPRO_DISABLE_QUERY_CACHE=1``
    (or pass ``cache=False``) to force re-evaluation on every step.
    """

    def __init__(
        self,
        schema: TransducerSchema,
        name: str = "transducer",
        *,
        cache: bool | None = None,
    ) -> None:
        self._schema = schema
        self._name = name
        self._cache_enabled = (
            _cache_enabled_default() if cache is None else cache
        )
        self._step_cache: dict[Hashable, TransducerUpdate] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    @property
    def schema(self) -> TransducerSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._name

    @abstractmethod
    def out_query(self, view: LocalView) -> Iterable[Fact]:
        """Qout: new output facts (target schema Upsilon_out)."""

    @abstractmethod
    def insert_query(self, view: LocalView) -> Iterable[Fact]:
        """Qins: memory insertions (target schema Upsilon_mem)."""

    @abstractmethod
    def delete_query(self, view: LocalView) -> Iterable[Fact]:
        """Qdel: memory deletions (target schema Upsilon_mem)."""

    @abstractmethod
    def send_query(self, view: LocalView) -> Iterable[Fact]:
        """Qsnd: messages sent to every other node (target Upsilon_msg)."""

    def step(self, view: LocalView) -> TransducerUpdate:
        """Run all four queries and validate their target schemas.

        When the view carries a database fingerprint, the update is served
        from (and stored into) the step cache; the returned update must be
        treated as read-only by callers, as cache hits alias earlier
        results.
        """
        token = view.db_token if self._cache_enabled else None
        if token is not None:
            cached = self._step_cache.get(token)
            if cached is not None:
                self._cache_hits += 1
                return cached
            self._cache_misses += 1
        update = self._evaluate(view)
        if token is not None:
            if len(self._step_cache) >= STEP_CACHE_SIZE:
                del self._step_cache[next(iter(self._step_cache))]
            self._step_cache[token] = update
        return update

    def _evaluate(self, view: LocalView) -> TransducerUpdate:
        """Actually run the four queries (no caching)."""
        return TransducerUpdate(
            output=self._checked(self.out_query(view), self._schema.outputs, "Qout"),
            insertions=self._checked(self.insert_query(view), self._schema.memory, "Qins"),
            deletions=self._checked(self.delete_query(view), self._schema.memory, "Qdel"),
            messages=self._checked(self.send_query(view), self._schema.messages, "Qsnd"),
        )

    def evaluation_stats(self) -> dict[str, int]:
        """Cumulative evaluation counters, surfaced in run telemetry."""
        return {
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "plans_compiled": self.plans_compiled(),
        }

    def plans_compiled(self) -> int:
        """Join plans compiled by this transducer's evaluators (0 unless the
        queries run through the Datalog engine)."""
        return 0

    def _checked(self, facts: Iterable[Fact], target, label: str) -> Instance:
        produced = Instance(facts)
        for fact in produced:
            if not target.contains_fact(fact):
                raise ValueError(
                    f"{self._name}.{label} produced {fact!r}, which is not "
                    f"over its target schema"
                )
        return produced

    def with_variant(self, variant) -> "Transducer":
        """A copy of this transducer running under a different model variant
        (used by the Theorem 4.5 experiments)."""
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._schema = self._schema.with_variant(variant)
        # The clone answers queries under a different variant (different
        # system relations in D), so it gets its own cache and counters.
        clone._step_cache = {}
        clone._cache_hits = 0
        clone._cache_misses = 0
        return clone


class PythonTransducer(Transducer):
    """A transducer whose four queries are Python callables on the view."""

    def __init__(
        self,
        schema: TransducerSchema,
        *,
        out: Callable[[LocalView], Iterable[Fact]] | None = None,
        insert: Callable[[LocalView], Iterable[Fact]] | None = None,
        delete: Callable[[LocalView], Iterable[Fact]] | None = None,
        send: Callable[[LocalView], Iterable[Fact]] | None = None,
        name: str = "python-transducer",
    ) -> None:
        super().__init__(schema, name)
        nothing: Callable[[LocalView], Iterable[Fact]] = lambda view: ()
        self._out = out or nothing
        self._insert = insert or nothing
        self._delete = delete or nothing
        self._send = send or nothing

    def out_query(self, view: LocalView) -> Iterable[Fact]:
        return self._out(view)

    def insert_query(self, view: LocalView) -> Iterable[Fact]:
        return self._insert(view)

    def delete_query(self, view: LocalView) -> Iterable[Fact]:
        return self._delete(view)

    def send_query(self, view: LocalView) -> Iterable[Fact]:
        return self._send(view)


class DatalogTransducer(Transducer):
    """A transducer whose four queries are stratified Datalog¬ programs.

    Each program is evaluated on the materialized database D; its designated
    output relations must lie in the corresponding target schema.  Programs
    may be ``None`` (the empty query).
    """

    def __init__(
        self,
        schema: TransducerSchema,
        *,
        out: Program | None = None,
        insert: Program | None = None,
        delete: Program | None = None,
        send: Program | None = None,
        name: str = "datalog-transducer",
    ) -> None:
        super().__init__(schema, name)
        self._programs = {
            "out": out,
            "insert": insert,
            "delete": delete,
            "send": send,
        }
        self._evaluators = {
            key: StratifiedEvaluator(program) if program is not None else None
            for key, program in self._programs.items()
        }

    def _run(self, key: str, view: LocalView) -> Iterable[Fact]:
        evaluator = self._evaluators[key]
        if evaluator is None:
            return ()
        return evaluator.output(view.database())

    def plans_compiled(self) -> int:
        return sum(
            evaluator.plans_compiled
            for evaluator in self._evaluators.values()
            if evaluator is not None
        )

    def out_query(self, view: LocalView) -> Iterable[Fact]:
        return self._run("out", view)

    def insert_query(self, view: LocalView) -> Iterable[Fact]:
        return self._run("insert", view)

    def delete_query(self, view: LocalView) -> Iterable[Fact]:
        return self._run("delete", view)

    def send_query(self, view: LocalView) -> Iterable[Fact]:
        return self._run("send", view)
