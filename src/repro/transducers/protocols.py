"""The three coordination-free evaluation protocols of Section 4.2 / 4.3.

The proofs of Theorems 4.3 and 4.4 are constructive: they build policy-aware
transducers that distributedly compute any query of the matching
monotonicity class.  This module implements those constructions (plus the
plain broadcast strategy for M from [13]) as :class:`PythonTransducer`
instances over an arbitrary :class:`~repro.queries.base.Query`:

* :func:`broadcast_transducer` (class **M**) — every node broadcasts its
  local input facts and outputs Q over everything it has seen; sound for
  monotone queries only.
* :func:`distinct_protocol_transducer` (class **Mdistinct**, Theorem 4.3) —
  nodes additionally broadcast *absences*: a node responsible (under the
  policy) for a candidate fact over its known active domain that is missing
  from its local input announces that the fact is globally absent.  Output
  is produced only when the known active domain is *complete*: every
  candidate fact over it is known present or known absent.
* :func:`disjoint_protocol_transducer` (class **Mdisjoint**, Theorem 4.4) —
  under domain-guided policies, nodes broadcast active-domain values and run
  the request / reply / acknowledge / OK handshake of the paper for values
  they are not responsible for.  Output is produced when every known value
  is either owned or OK'd.

All three deduplicate their sends through ``sent_*`` memory mirrors, so runs
quiesce; every delivered message is stored in memory, so re-deliveries are
idempotent (the property the runtime's quiescence detection relies on).

One detail the paper leaves implicit: in the no-``All`` variants of
Theorem 4.5 a node's identifier is not known to the other nodes, yet
absences / ownership over that identifier must still be decided.  The
protocols therefore announce the node's own identifier alongside its data
values; with ``All`` present this is redundant but harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Hashable, Iterable, Iterator

from ..datalog.instance import Instance
from ..datalog.schema import Schema
from ..datalog.terms import Fact
from ..queries.base import Query
from .schema import ModelVariant, POLICY_AWARE, TransducerSchema
from .transducer import (
    LocalView,
    PythonTransducer,
    SystemRelationUnavailable,
    Transducer,
)

__all__ = [
    "broadcast_transducer",
    "distinct_protocol_transducer",
    "disjoint_protocol_transducer",
    "local_shard_transducer",
    "protocol_for_class",
    "Section4Protocol",
    "section4_protocols",
    "CAST_PREFIX",
    "ABSENT_PREFIX",
]

CAST_PREFIX = "cast_"
ABSENT_PREFIX = "absent_"
ACK_PREFIX = "ack_"
GOT_PREFIX = "got_"
SENT_PREFIX = "sent_"
ANNOUNCE = "announce"
REQUEST = "request"
OK = "ok_value"


def _message_schema(kind: str, inputs: Schema) -> Schema:
    """The message schema of the given protocol kind."""
    relations: dict[str, int] = {}
    for name in inputs:
        relations[CAST_PREFIX + name] = inputs.arity(name)
    if kind == "distinct":
        for name in inputs:
            relations[ABSENT_PREFIX + name] = inputs.arity(name)
        relations[ANNOUNCE] = 1
    if kind == "disjoint":
        for name in inputs:
            relations[ACK_PREFIX + name] = inputs.arity(name) + 1
        relations[ANNOUNCE] = 1
        relations[REQUEST] = 2
        relations[OK] = 2
    return Schema(relations, allow_nullary=True)


def _memory_schema(message_schema: Schema) -> Schema:
    """Memory mirrors every message relation twice: ``got_*`` stores the
    delivered messages, ``sent_*`` deduplicates the outgoing ones."""
    relations: dict[str, int] = {}
    for name in message_schema:
        relations[GOT_PREFIX + name] = message_schema.arity(name)
        relations[SENT_PREFIX + name] = message_schema.arity(name)
    return Schema(relations, allow_nullary=True)


def _protocol_schema(kind: str, query: Query, variant: ModelVariant) -> TransducerSchema:
    messages = _message_schema(kind, query.input_schema)
    return TransducerSchema(
        inputs=query.input_schema,
        outputs=query.output_schema,
        messages=messages,
        memory=_memory_schema(messages),
        variant=variant,
    )


class _ProtocolState:
    """Decoded view of a protocol node's memory + inputs for one transition."""

    def __init__(self, view: LocalView, inputs: Schema) -> None:
        self.view = view
        self.inputs = inputs
        memory = view.memory
        self.memory = memory
        self.known_facts = view.local_input | Instance(
            Fact(f.relation[len(GOT_PREFIX) + len(CAST_PREFIX):], f.values)
            for f in memory
            if f.relation.startswith(GOT_PREFIX + CAST_PREFIX)
        )

    def got(self, relation: str) -> Instance:
        prefixed = GOT_PREFIX + relation
        return Instance(f for f in self.memory if f.relation == prefixed)

    def already_sent(self, message: Fact) -> bool:
        return Fact(SENT_PREFIX + message.relation, message.values) in self.memory

    def store_deliveries(self) -> Iterator[Fact]:
        """Qins fragment: persist every delivered message as a got_* fact."""
        for fact in self.view.delivered:
            yield Fact(GOT_PREFIX + fact.relation, fact.values)

    def fresh(self, messages: Iterable[Fact]) -> list[Fact]:
        """Messages not sent before (the Qsnd output)."""
        return [m for m in messages if not self.already_sent(m)]

    @staticmethod
    def sent_markers(messages: Iterable[Fact]) -> Iterator[Fact]:
        for message in messages:
            yield Fact(SENT_PREFIX + message.relation, message.values)


def _casts(local_input: Instance) -> Iterator[Fact]:
    for fact in local_input:
        yield Fact(CAST_PREFIX + fact.relation, fact.values)


def _sharing_enabled() -> bool:
    """Per-transition work sharing rides the same kill switch as the step
    cache, so an uncached benchmark baseline recomputes everything the way
    the pre-plan engine did."""
    from ..flags import query_cache_enabled

    return query_cache_enabled()


def _shared_state(view: LocalView, inputs: Schema) -> _ProtocolState:
    """The transition's :class:`_ProtocolState`, decoded at most once.

    All four queries of a transition observe the same immutable view, so
    the decoded state is stashed in ``view.scratch`` and shared between
    Qout/Qins/Qsnd instead of being rebuilt by each of them.
    """
    if not _sharing_enabled():
        return _ProtocolState(view, inputs)
    state = view.scratch.get("protocol_state")
    if state is None:
        state = _ProtocolState(view, inputs)
        view.scratch["protocol_state"] = state
    return state


def _desired_once(state: _ProtocolState, key: str, build) -> list[Fact]:
    """Memoize a desired-message list on the view (Qins and Qsnd both need
    it; it is a pure function of the view)."""
    messages = state.view.scratch.get(key)
    if messages is None:
        messages = build(state)
        if _sharing_enabled():
            state.view.scratch[key] = messages
    return messages


def _fresh_once(state: _ProtocolState, key: str, build) -> list[Fact]:
    """The not-yet-sent subset of a desired-message list, computed once per
    view (Qins emits the sent_* markers for exactly the messages Qsnd sends,
    so both need the same list)."""
    fresh_key = key + ":fresh"
    fresh = state.view.scratch.get(fresh_key)
    if fresh is None:
        fresh = state.fresh(_desired_once(state, key, build))
        if _sharing_enabled():
            state.view.scratch[fresh_key] = fresh
    return fresh


# ----------------------------------------------------------------------
# M: plain broadcast ([13]; Section 4.3 discussion)
# ----------------------------------------------------------------------


def broadcast_transducer(
    query: Query, *, variant: ModelVariant = POLICY_AWARE
) -> PythonTransducer:
    """The naive strategy for monotone queries: broadcast all local input
    facts; output Q over every fact seen so far, every transition."""
    schema = _protocol_schema("broadcast", query, variant)

    def desired_messages(state: _ProtocolState) -> list[Fact]:
        return list(_casts(state.view.local_input))

    def fresh_messages(state: _ProtocolState) -> list[Fact]:
        return _fresh_once(state, "broadcast_desired", desired_messages)

    def out(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        return query(state.known_facts)

    def insert(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        yield from state.store_deliveries()
        yield from state.sent_markers(fresh_messages(state))

    def send(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        return fresh_messages(state)

    return PythonTransducer(
        schema, out=out, insert=insert, send=send, name=f"broadcast[{query.name}]"
    )


# ----------------------------------------------------------------------
# Mdistinct: fact + absence broadcast (Theorem 4.3)
# ----------------------------------------------------------------------


def _known_absences(state: _ProtocolState) -> Iterator[Fact]:
    """Candidate input facts over the known active domain that this node is
    responsible for and that are absent from its local input — hence absent
    from the global input (bare relation names, no prefix)."""
    view = state.view
    values = sorted(view.known_adom(), key=repr)
    for relation in state.inputs:
        arity = state.inputs.arity(relation)
        for combo in product(values, repeat=arity):
            candidate = Fact(relation, combo)
            if candidate in view.local_input:
                continue
            if view.is_responsible(candidate):
                yield candidate


#: Cross-transition memo for :func:`_known_absences`.  The absence sweep is
#: a pure function of (policy, node, known adom, local input); the known
#: adom stabilizes after a few transitions, so most evaluations replay this
#: instead of probing the |adom|^arity candidate product again.  The policy
#: object in the key anchors responsibility (and holds a strong reference,
#: so its id cannot be recycled while the entry lives).
_ABSENCE_MEMO: dict[tuple, tuple] = {}
_ABSENCE_MEMO_SIZE = 4096


def _known_absences_cached(state: _ProtocolState) -> Iterable[Fact]:
    view = state.view
    if not _sharing_enabled():
        return _known_absences(state)
    key = (
        view._policy,
        view._node,
        view._known_values(),
        view.local_input.facts,
    )
    absences = _ABSENCE_MEMO.get(key)
    if absences is None:
        absences = tuple(_known_absences(state))
        if len(_ABSENCE_MEMO) >= _ABSENCE_MEMO_SIZE:
            del _ABSENCE_MEMO[next(iter(_ABSENCE_MEMO))]
        _ABSENCE_MEMO[key] = absences
    return absences


def _distinct_complete(state: _ProtocolState) -> bool:
    """Every candidate fact over MyAdom is known present or known absent."""
    view = state.view
    values = sorted(view.known_adom(), key=repr)
    known = state.known_facts
    for relation in state.inputs:
        arity = state.inputs.arity(relation)
        absent = {
            f.values
            for f in state.got(ABSENT_PREFIX + relation)
        }
        for combo in product(values, repeat=arity):
            if Fact(relation, combo) in known:
                continue
            if combo in absent:
                continue
            candidate = Fact(relation, combo)
            if view.is_responsible(candidate) and candidate not in view.local_input:
                continue  # self-derived absence
            return False
    return True


def distinct_protocol_transducer(
    query: Query, *, variant: ModelVariant = POLICY_AWARE
) -> PythonTransducer:
    """The Theorem 4.3 construction for domain-distinct-monotone queries.

    Requires a policy-aware model (``MyAdom`` + ``policy_R``); raises
    :class:`SystemRelationUnavailable` at run time under a policy-blind
    variant, mirroring the fact that the construction does not exist in the
    original model.
    """
    schema = _protocol_schema("distinct", query, variant)

    def build_desired(state: _ProtocolState) -> list[Fact]:
        messages = list(_casts(state.view.local_input))
        try:
            messages.append(Fact(ANNOUNCE, (state.view.my_id,)))
        except SystemRelationUnavailable:
            pass  # oblivious variants have no id to announce
        for absent in _known_absences_cached(state):
            messages.append(Fact(ABSENT_PREFIX + absent.relation, absent.values))
        return messages

    def fresh_messages(state: _ProtocolState) -> list[Fact]:
        return _fresh_once(state, "distinct_desired", build_desired)

    def out(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        if _distinct_complete(state):
            return query(state.known_facts)
        return ()

    def insert(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        yield from state.store_deliveries()
        yield from state.sent_markers(fresh_messages(state))

    def send(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        return fresh_messages(state)

    return PythonTransducer(
        schema, out=out, insert=insert, send=send, name=f"distinct[{query.name}]"
    )


# ----------------------------------------------------------------------
# Mdisjoint: value announcements + ownership handshake (Theorem 4.4)
# ----------------------------------------------------------------------


def _disjoint_messages(state: _ProtocolState) -> list[Fact]:
    view = state.view
    me = view.my_id
    messages: list[Fact] = list(_casts(view.local_input))
    messages.append(Fact(ANNOUNCE, (me,)))
    for value in sorted(view.local_input.adom(), key=repr):
        messages.append(Fact(ANNOUNCE, (value,)))

    owned = view.responsible_values()

    # Requests for known values we do not own.
    for value in sorted(view.known_adom(), key=repr):
        if value not in owned:
            messages.append(Fact(REQUEST, (me, value)))

    # Acknowledge every input fact we have stored (local or received).
    for fact in state.known_facts:
        messages.append(Fact(ACK_PREFIX + fact.relation, (me,) + fact.values))

    # Serve requests we own: cast the matching local facts, and emit OK once
    # the requester has acknowledged every one of them.
    requests = state.got(REQUEST)
    acked: dict[Hashable, set[Fact]] = {}
    for ack in (f for f in state.memory if f.relation.startswith(GOT_PREFIX + ACK_PREFIX)):
        requester = ack.values[0]
        relation = ack.relation[len(GOT_PREFIX) + len(ACK_PREFIX):]
        acked.setdefault(requester, set()).add(Fact(relation, ack.values[1:]))
    for request in requests:
        requester, value = request.values
        if value not in owned:
            continue
        owed = [f for f in view.local_input if value in f.values]
        for fact in owed:
            messages.append(Fact(CAST_PREFIX + fact.relation, fact.values))
        if all(f in acked.get(requester, ()) for f in owed):
            messages.append(Fact(OK, (requester, value)))
    return messages


def _disjoint_complete(state: _ProtocolState) -> bool:
    """Every known value is owned or has been OK'd to this node."""
    view = state.view
    me = view.my_id
    owned = view.responsible_values()
    oks = {f.values[1] for f in state.got(OK) if f.values[0] == me}
    return all(
        value in owned or value in oks for value in view.known_adom()
    )


def disjoint_protocol_transducer(
    query: Query, *, variant: ModelVariant = POLICY_AWARE
) -> PythonTransducer:
    """The Theorem 4.4 construction for domain-disjoint-monotone queries.

    Correct under *domain-guided* policies only: ownership of a value must
    imply ownership of every input fact containing it, which is exactly what
    domain-guidedness provides.

    Section 7 caveat: value ownership is detected through the paper's
    ``policy_R(a, ..., a)`` probe, which needs at least one input relation of
    arity >= 1.  Nullary input facts themselves need no handshake — a
    domain-guided policy replicates them to every node.
    """
    schema = _protocol_schema("disjoint", query, variant)

    def fresh_messages(state: _ProtocolState) -> list[Fact]:
        return _fresh_once(state, "disjoint_desired", _disjoint_messages)

    def out(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        if _disjoint_complete(state):
            return query(state.known_facts)
        return ()

    def insert(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        yield from state.store_deliveries()
        yield from state.sent_markers(fresh_messages(state))

    def send(view: LocalView) -> Iterable[Fact]:
        state = _shared_state(view, query.input_schema)
        return fresh_messages(state)

    return PythonTransducer(
        schema, out=out, insert=insert, send=send, name=f"disjoint[{query.name}]"
    )


def local_shard_transducer(
    query: Query, *, variant: ModelVariant = POLICY_AWARE
) -> PythonTransducer:
    """Shard-local evaluation: each node outputs Q over its own fragment
    and never sends a message.

    Sound exactly when the distribution policy makes Q *distributive over
    the fragments*: Q(I) = ∪_n Q(frag_n).  A co-locating domain-guided
    policy (one that keeps every connected component of the input on one
    node, e.g. :func:`~repro.transducers.policy.block_domain_assignment`)
    provides that for component-local queries like transitive closure.
    This is the embarrassingly-parallel end of the protocol spectrum — the
    fixed partitionable workload the process runtime's scaling curve
    measures — and the caller is responsible for the policy precondition
    (the scaling benchmark asserts union-of-fragments == Q(I) every run).
    """
    schema = TransducerSchema(
        inputs=query.input_schema,
        outputs=query.output_schema,
        messages=Schema({}, allow_nullary=True),
        memory=Schema({}, allow_nullary=True),
        variant=variant,
    )

    def out(view: LocalView) -> Iterable[Fact]:
        return query(view.local_input)

    return PythonTransducer(schema, out=out, name=f"local-shard[{query.name}]")


def protocol_for_class(
    query: Query, klass: str, *, variant: ModelVariant = POLICY_AWARE
) -> PythonTransducer:
    """Pick the protocol matching a monotonicity class name
    (``"M"`` / ``"Mdistinct"`` / ``"Mdisjoint"``)."""
    if klass == "M":
        return broadcast_transducer(query, variant=variant)
    if klass == "Mdistinct":
        return distinct_protocol_transducer(query, variant=variant)
    if klass == "Mdisjoint":
        return disjoint_protocol_transducer(query, variant=variant)
    raise ValueError(f"no coordination-free protocol for class {klass!r}")


# ----------------------------------------------------------------------
# The Section-4 protocol suite (shared by the chaos-confluence benchmark,
# the property tests and the examples)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Section4Protocol:
    """One ready-to-run (transducer, query, instance) bundle of Section 4.

    ``domain_guided`` records whether the protocol is only correct under
    domain-guided policies (Theorem 4.4); :meth:`policy` builds a matching
    hash-based policy for a concrete network.
    """

    key: str
    theorem: str
    transducer: Transducer
    query: Query
    instance: Instance
    domain_guided: bool = False

    def policy(self, network):
        """A hash policy for *network* honoring ``domain_guided``."""
        from .policy import domain_guided_policy, hash_domain_assignment, hash_policy

        if self.domain_guided:
            return domain_guided_policy(
                self.query.input_schema, network, hash_domain_assignment(network)
            )
        return hash_policy(self.query.input_schema, network)

    def expected(self) -> Instance:
        """Q(I): the centralized answer every fair run must converge to."""
        return self.query(self.instance)


def section4_protocols() -> tuple[Section4Protocol, ...]:
    """The constructions of Theorems 4.3 / 4.4 / 4.5 (and Corollary 4.6)
    on their canonical queries and small witness inputs."""
    from ..datalog.parser import parse_facts
    from ..queries.base import DatalogQuery
    from ..queries.graph import complement_tc_query, transitive_closure_query
    from ..queries.zoo import zoo_program
    from .schema import OBLIVIOUS, POLICY_AWARE_NO_ALL

    sp_query = DatalogQuery(zoo_program("sp-missing-targets"), "sp-missing-targets")
    sp_instance = Instance(parse_facts("E(1,2). E(2,3). E(3,1). Mark(2)."))
    cotc = complement_tc_query()
    tc = transitive_closure_query()
    graph = Instance(parse_facts("E(1,2). E(2,1). E(3,4)."))

    return (
        Section4Protocol(
            key="thm43-distinct",
            theorem="Thm 4.3 (policy-aware, F1 = Mdistinct)",
            transducer=distinct_protocol_transducer(sp_query),
            query=sp_query,
            instance=sp_instance,
        ),
        Section4Protocol(
            key="thm44-disjoint",
            theorem="Thm 4.4 (domain-guided, F2 = Mdisjoint)",
            transducer=disjoint_protocol_transducer(cotc),
            query=cotc,
            instance=graph,
            domain_guided=True,
        ),
        Section4Protocol(
            key="thm45-distinct-noall",
            theorem="Thm 4.5 (no All, A1 = Mdistinct)",
            transducer=distinct_protocol_transducer(
                sp_query, variant=POLICY_AWARE_NO_ALL
            ),
            query=sp_query,
            instance=sp_instance,
        ),
        Section4Protocol(
            key="thm45-disjoint-noall",
            theorem="Thm 4.5 (no All, A2 = Mdisjoint)",
            transducer=disjoint_protocol_transducer(
                cotc, variant=POLICY_AWARE_NO_ALL
            ),
            query=cotc,
            instance=graph,
            domain_guided=True,
        ),
        Section4Protocol(
            key="cor46-broadcast",
            theorem="Cor 4.6 (oblivious, F0 = A0 = M)",
            transducer=broadcast_transducer(tc, variant=OBLIVIOUS),
            query=tc,
            instance=graph,
        ),
    )
