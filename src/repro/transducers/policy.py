"""Networks, distribution policies and domain assignments (Section 4.1.1).

A *network* N is a finite nonempty set of dom-values called nodes.  A
*distribution policy* P for a schema and a network is a total function from
``facts(sigma)`` to nonempty sets of nodes; ``dist_P(I)`` maps each node to
the facts assigned to it.  A policy is *domain-guided* when it is induced by
a *domain assignment* alpha : dom -> P+(N) via
``P(R(a1..ak)) = alpha(a1) ∪ ... ∪ alpha(ak)``.

Policies must be total over the infinite fact space, so they are represented
by functions; dictionary-backed helpers cover the finitely many facts an
experiment touches with an explicit fallback for the rest.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from ..datalog.instance import Instance
from ..datalog.schema import Schema
from ..datalog.terms import Fact

__all__ = [
    "Network",
    "DistributionPolicy",
    "DomainAssignment",
    "domain_guided_policy",
    "function_policy",
    "hash_policy",
    "everywhere_policy",
    "single_node_policy",
    "override_policy",
    "hash_domain_assignment",
    "block_domain_assignment",
    "range_policy",
    "replicated_hash_assignment",
    "single_node_assignment",
    "dict_domain_assignment",
    "distribute",
]


class Network(frozenset):
    """A nonempty finite set of node identifiers (dom-values).

    Node identifiers may occur as data inside relations (Example 4.1).
    """

    def __new__(cls, nodes: Iterable[Hashable]):
        network = super().__new__(cls, nodes)
        if not network:
            raise ValueError("a network must contain at least one node")
        return network

    def sorted_nodes(self) -> list[Hashable]:
        return sorted(self, key=lambda n: (type(n).__name__, repr(n)))

    def __repr__(self) -> str:
        inner = ", ".join(repr(n) for n in self.sorted_nodes())
        return f"Network({{{inner}}})"


class DomainAssignment:
    """A total function alpha : dom -> P+(N) (Section 4.1.1)."""

    def __init__(
        self, network: Network, assign: Callable[[Hashable], frozenset]
    ) -> None:
        self._network = network
        self._assign = assign

    @property
    def network(self) -> Network:
        return self._network

    def __call__(self, value: Hashable) -> frozenset:
        nodes = frozenset(self._assign(value))
        if not nodes:
            raise ValueError(f"domain assignment returned no node for {value!r}")
        if not nodes <= self._network:
            raise ValueError(
                f"domain assignment returned nodes outside the network for {value!r}"
            )
        return nodes


class DistributionPolicy:
    """A total function from facts over *schema* to nonempty node sets.

    ``domain_assignment`` is set when the policy is domain-guided; the
    :attr:`is_domain_guided` flag gates the domain-guided transducer model.
    """

    def __init__(
        self,
        schema: Schema,
        network: Network,
        assign: Callable[[Fact], frozenset],
        *,
        domain_assignment: DomainAssignment | None = None,
        name: str = "policy",
    ) -> None:
        self._schema = schema
        self._network = network
        self._assign = assign
        self._domain_assignment = domain_assignment
        self._name = name
        # Policies are static functions of the fact (Section 4.1.2), so the
        # assignment can be memoized; the bound keeps adversarial workloads
        # (policy materialization probes every tuple over the adom) from
        # holding the whole cross product.  Disabled together with the
        # transducer step cache so benchmark baselines reflect uncached
        # evaluation.
        from ..flags import query_cache_enabled

        caching_off = not query_cache_enabled()
        self._memo: dict[Fact, frozenset] | None = None if caching_off else {}
        #: Memo for LocalView.responsible_values, keyed by (node, known
        #: adom): ownership probes are a pure function of those plus this
        #: policy, and the known adom repeats across most transitions.
        self.responsible_memo: dict[tuple, frozenset] | None = (
            None if caching_off else {}
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def network(self) -> Network:
        return self._network

    @property
    def name(self) -> str:
        return self._name

    @property
    def is_domain_guided(self) -> bool:
        return self._domain_assignment is not None

    @property
    def domain_assignment(self) -> DomainAssignment | None:
        return self._domain_assignment

    _MEMO_SIZE = 65_536

    def nodes_for(self, fact: Fact) -> frozenset:
        """P(f): the nonempty set of nodes the fact is assigned to."""
        memo = self._memo
        if memo is not None:
            nodes = memo.get(fact)
            if nodes is not None:
                return nodes
        if not self._schema.contains_fact(fact):
            raise ValueError(f"fact {fact!r} is not over the policy schema")
        nodes = frozenset(self._assign(fact))
        if not nodes:
            raise ValueError(f"policy assigned no node to {fact!r}")
        if not nodes <= self._network:
            raise ValueError(f"policy assigned {fact!r} outside the network")
        if memo is not None:
            if len(memo) >= self._MEMO_SIZE:
                del memo[next(iter(memo))]
            memo[fact] = nodes
        return nodes

    def assigns(self, fact: Fact, node: Hashable) -> bool:
        """True when *node* ∈ P(*fact*)."""
        return node in self.nodes_for(fact)

    def distribute(self, instance: Instance) -> dict[Hashable, Instance]:
        """``dist_P(I)``: node -> its local fragment of *instance*."""
        fragments: dict[Hashable, set[Fact]] = {node: set() for node in self._network}
        for fact in instance:
            for node in self.nodes_for(fact):
                fragments[node].add(fact)
        return {node: Instance(facts) for node, facts in fragments.items()}

    def __repr__(self) -> str:
        kind = "domain-guided " if self.is_domain_guided else ""
        return f"<{kind}policy {self._name} on {self._network!r}>"


def distribute(policy: DistributionPolicy, instance: Instance) -> dict[Hashable, Instance]:
    """Module-level alias for :meth:`DistributionPolicy.distribute`."""
    return policy.distribute(instance)


# ----------------------------------------------------------------------
# Policy constructors
# ----------------------------------------------------------------------


def function_policy(
    schema: Schema,
    network: Network,
    assign: Callable[[Fact], Iterable[Hashable]],
    *,
    name: str = "custom",
) -> DistributionPolicy:
    """Wrap an arbitrary total assignment function as a policy."""
    return DistributionPolicy(
        schema, network, lambda fact: frozenset(assign(fact)), name=name
    )


def hash_policy(
    schema: Schema, network: Network, *, position: int = 0, name: str = "hash"
) -> DistributionPolicy:
    """Partition facts by hashing the value at *position* (Example 4.1's P1
    generalized: deterministic, non-replicating, not domain-guided)."""
    nodes = network.sorted_nodes()

    def assign(fact: Fact) -> frozenset:
        if fact.arity == 0:
            # Nullary facts carry no value to hash; key on the relation name.
            return frozenset({nodes[_stable_hash(fact.relation) % len(nodes)]})
        index = position if position < fact.arity else 0
        value = fact.values[index]
        return frozenset({nodes[_stable_hash(value) % len(nodes)]})

    return DistributionPolicy(schema, network, assign, name=name)


def everywhere_policy(schema: Schema, network: Network) -> DistributionPolicy:
    """Assign every fact to every node (full replication).

    Domain-guided: induced by alpha(v) = N for all v.
    """
    assignment = DomainAssignment(network, lambda value: frozenset(network))
    return DistributionPolicy(
        schema,
        network,
        lambda fact: frozenset(network),
        domain_assignment=assignment,
        name="everywhere",
    )


def single_node_policy(
    schema: Schema, network: Network, node: Hashable
) -> DistributionPolicy:
    """Assign every fact to one designated node — the 'ideal' distribution
    used by the coordination-freeness arguments.

    Domain-guided (alpha(v) = {node}).
    """
    if node not in network:
        raise ValueError(f"{node!r} is not a node of the network")
    target = frozenset({node})
    assignment = DomainAssignment(network, lambda value: target)
    return DistributionPolicy(
        schema,
        network,
        lambda fact: target,
        domain_assignment=assignment,
        name=f"all-to-{node!r}",
    )


def override_policy(
    base: DistributionPolicy,
    overrides: Mapping[Fact, Iterable[Hashable]],
    *,
    name: str | None = None,
) -> DistributionPolicy:
    """The policy used in the F1 ⊆ Mdistinct proof: P2(g) = override for the
    finitely many facts in *overrides*, else the base policy.

    The result is generally *not* domain-guided even when the base is.
    """
    frozen = {fact: frozenset(nodes) for fact, nodes in overrides.items()}

    def assign(fact: Fact) -> frozenset:
        if fact in frozen:
            return frozen[fact]
        return base.nodes_for(fact)

    return DistributionPolicy(
        base.schema, base.network, assign, name=name or f"{base.name}+overrides"
    )


# ----------------------------------------------------------------------
# Domain assignments and domain-guided policies
# ----------------------------------------------------------------------


def domain_guided_policy(
    schema: Schema,
    network: Network,
    assignment: DomainAssignment | Callable[[Hashable], Iterable[Hashable]],
    *,
    name: str = "domain-guided",
) -> DistributionPolicy:
    """The policy induced by a domain assignment: P(R(a1..ak)) = ∪ alpha(ai)."""
    if not isinstance(assignment, DomainAssignment):
        raw = assignment
        assignment = DomainAssignment(network, lambda v: frozenset(raw(v)))

    def assign(fact: Fact) -> frozenset:
        if not fact.values:
            # Section 7: in a domain-guided policy, nullary facts are
            # always assigned to all computing nodes.
            return frozenset(network)
        nodes: frozenset = frozenset()
        for value in fact.values:
            nodes |= assignment(value)
        return nodes

    return DistributionPolicy(
        schema, network, assign, domain_assignment=assignment, name=name
    )


def hash_domain_assignment(network: Network) -> DomainAssignment:
    """alpha hashing each value to one node (Example 4.1's P2 generalized)."""
    nodes = network.sorted_nodes()
    return DomainAssignment(
        network,
        lambda value: frozenset({nodes[_stable_hash(value) % len(nodes)]}),
    )


def block_domain_assignment(network: Network, block: int) -> DomainAssignment:
    """alpha mapping integer values to nodes by contiguous *block*:
    ``value // block`` picks the bucket, round-robin over the sorted nodes.

    This is the co-locating assignment for partitionable workloads: encode
    each shard's values inside one block (e.g. ``shard * block + local``)
    and every fact of a shard lands on exactly one node, so the induced
    domain-guided policy shards the database horizontally with no
    cross-node value sharing.  Non-integer values fall back to the stable
    hash so the assignment stays total.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    nodes = network.sorted_nodes()

    def assign(value: Hashable) -> frozenset:
        if isinstance(value, bool) or not isinstance(value, int):
            return frozenset({nodes[_stable_hash(value) % len(nodes)]})
        return frozenset({nodes[(value // block) % len(nodes)]})

    return DomainAssignment(network, assign)


def single_node_assignment(network: Network, node: Hashable) -> DomainAssignment:
    """alpha sending every value to one node."""
    if node not in network:
        raise ValueError(f"{node!r} is not a node of the network")
    target = frozenset({node})
    return DomainAssignment(network, lambda value: target)


def dict_domain_assignment(
    network: Network,
    mapping: Mapping[Hashable, Iterable[Hashable]],
    default: Hashable | None = None,
) -> DomainAssignment:
    """alpha from an explicit table, with a default node for unseen values
    (totality requires one; defaults to the smallest node)."""
    fallback = frozenset({default if default is not None else network.sorted_nodes()[0]})
    table = {value: frozenset(nodes) for value, nodes in mapping.items()}
    return DomainAssignment(network, lambda value: table.get(value, fallback))


def range_policy(
    schema: Schema,
    network: Network,
    boundaries: "list",
    *,
    position: int = 0,
    name: str = "range",
) -> DistributionPolicy:
    """Range partitioning on the value at *position*: node i receives the
    facts whose key falls below ``boundaries[i]`` (last node takes the
    rest).  Keys must be comparable with the boundaries; non-comparable
    keys fall through to the last node.  Deterministic, non-replicating,
    not domain-guided — the shape of a classic sharded table.
    """
    nodes = network.sorted_nodes()
    if len(boundaries) != len(nodes) - 1:
        raise ValueError(
            f"need {len(nodes) - 1} boundaries for {len(nodes)} nodes"
        )

    def assign(fact: Fact) -> frozenset:
        if fact.arity == 0:
            return frozenset({nodes[-1]})
        index = position if position < fact.arity else 0
        key = fact.values[index]
        for node, boundary in zip(nodes, boundaries):
            try:
                if key < boundary:
                    return frozenset({node})
            except TypeError:
                break  # incomparable key: fall through to the last node
        return frozenset({nodes[-1]})

    return DistributionPolicy(schema, network, assign, name=name)


def replicated_hash_assignment(network: Network, replication: int) -> DomainAssignment:
    """alpha sending each value to *replication* consecutive nodes (in the
    sorted node order) starting at its hash bucket — domain-guided
    replication, the fault-tolerant flavour of :func:`hash_domain_assignment`."""
    nodes = network.sorted_nodes()
    if not 1 <= replication <= len(nodes):
        raise ValueError("replication must be between 1 and the network size")

    def assign(value: Hashable) -> frozenset:
        first = _stable_hash(value) % len(nodes)
        return frozenset(nodes[(first + offset) % len(nodes)] for offset in range(replication))

    return DomainAssignment(network, assign)


def _stable_hash(value: Hashable) -> int:
    """A process-independent hash so seeded experiments are reproducible
    (Python's built-in hash of str is salted per process)."""
    text = f"{type(value).__name__}:{value!r}"
    acc = 2166136261
    for char in text:
        acc = (acc ^ ord(char)) * 16777619 % (1 << 32)
    return acc
