"""Exhaustive exploration of transducer-network runs: bounded confluence
checking.

"Π distributedly computes Q" quantifies over *every* fair run (Section
4.1.4), and deciding such confluence properties is the subject of follow-up
work the paper cites ([12, 14]).  For small inputs and networks the
transition system is finite enough to explore outright, which turns the
sampled evidence of :func:`repro.transducers.coordination.
check_distributed_computation` into bounded-exhaustive evidence.

State-space abstraction
-----------------------

Message buffers are explored as *sets* of pending facts per node, and a
fact already delivered to a node is never re-enqueued for it.  Transition
semantics collapse the delivered submultiset to a set anyway, so this
abstraction is exact for transducers that are **duplicate-idempotent** —
re-delivering an already-delivered message never changes their behaviour.
Every protocol in this package stores all deliveries in memory and is
therefore duplicate-idempotent; arbitrary transducers may not be, so the
report records the abstraction.

Per state, the explored nondeterminism is: for every node, a heartbeat, the
delivery of each single pending fact, and the delivery of everything
pending — which covers the extremes and all single-message interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from ..datalog.instance import Instance
from ..datalog.terms import Fact
from .runtime import TransducerNetwork
from .transducer import LocalView

__all__ = ["ConfluenceReport", "explore_runs"]


@dataclass(frozen=True)
class _NodeState:
    output: frozenset
    memory: frozenset
    pending: frozenset
    delivered: frozenset


@dataclass(frozen=True)
class _Configuration:
    nodes: tuple[tuple[Hashable, _NodeState], ...]

    def state_of(self) -> dict:
        return dict(self.nodes)


@dataclass(frozen=True)
class ConfluenceReport:
    """Outcome of a bounded-exhaustive run exploration.

    ``confluent`` — every terminal (quiescent) configuration reached shows
    the same global output;
    ``complete`` — the whole reachable space fit within the budget, so the
    verdict is exhaustive rather than partial;
    ``outputs`` — the distinct terminal outputs observed.
    """

    configurations_explored: int
    terminal_configurations: int
    outputs: tuple[Instance, ...]
    complete: bool

    @property
    def confluent(self) -> bool:
        return len(self.outputs) <= 1

    def describe(self) -> str:
        scope = "exhaustively" if self.complete else "within budget (PARTIAL)"
        verdict = "confluent" if self.confluent else "NOT confluent"
        return (
            f"{verdict}: {len(self.outputs)} distinct terminal output(s) over "
            f"{self.terminal_configurations} terminal / "
            f"{self.configurations_explored} reachable configurations, {scope}"
        )


def _initial_configuration(network: TransducerNetwork) -> _Configuration:
    nodes = tuple(
        (
            node,
            _NodeState(
                output=frozenset(),
                memory=frozenset(),
                pending=frozenset(),
                delivered=frozenset(),
            ),
        )
        for node in sorted(network.network, key=repr)
    )
    # Input fragments are static and live outside the configuration.
    return _Configuration(nodes=nodes)


def _step(
    network: TransducerNetwork,
    fragments: dict,
    configuration: _Configuration,
    active: Hashable,
    delivered: frozenset,
) -> _Configuration:
    """One transition under the set-buffer abstraction (pure function)."""
    states = configuration.state_of()
    state = states[active]
    view = LocalView(
        node=active,
        network=network.network,
        schema=network.transducer.schema,
        policy=network.policy,
        local_input=fragments[active],
        output=Instance(state.output),
        memory=Instance(state.memory),
        delivered=Instance(delivered),
    )
    update = network.transducer.step(view)
    ins_only = update.insertions - update.deletions
    del_only = update.deletions - update.insertions
    new_memory = (Instance(state.memory) | ins_only) - del_only
    new_states = dict(states)
    new_states[active] = _NodeState(
        output=state.output | update.output.facts,
        memory=frozenset(new_memory.facts),
        pending=state.pending - delivered,
        delivered=state.delivered | delivered,
    )
    if update.messages:
        for node, other in states.items():
            if node == active:
                continue
            fresh = update.messages.facts - new_states.get(node, other).delivered
            base = new_states.get(node, other)
            new_states[node] = _NodeState(
                output=base.output,
                memory=base.memory,
                pending=base.pending | fresh,
                delivered=base.delivered,
            )
    return _Configuration(
        nodes=tuple((node, new_states[node]) for node, _ in configuration.nodes)
    )


def _choices(configuration: _Configuration) -> Iterator[tuple[Hashable, frozenset]]:
    for node, state in configuration.nodes:
        yield node, frozenset()  # heartbeat
        for message in sorted(state.pending, key=repr):
            yield node, frozenset({message})
        if len(state.pending) > 1:
            yield node, state.pending  # deliver everything


def _global_output(configuration: _Configuration) -> Instance:
    facts: set[Fact] = set()
    for _, state in configuration.nodes:
        facts |= state.output
    return Instance(facts)


def explore_runs(
    network: TransducerNetwork,
    instance: Instance,
    *,
    max_configurations: int = 20_000,
) -> ConfluenceReport:
    """Breadth-first exploration of all reachable configurations.

    A configuration is *terminal* when no choice changes it.  Outputs of
    terminal configurations are collected; the report says whether they all
    agree and whether the exploration was exhaustive.
    """
    fragments = network.policy.distribute(
        instance.restrict(network.transducer.schema.inputs)
    )
    start = _initial_configuration(network)
    seen = {start}
    frontier = [start]
    terminal_outputs: set[Instance] = set()
    terminal_count = 0
    complete = True

    while frontier:
        configuration = frontier.pop()
        successors = []
        for node, delivery in _choices(configuration):
            following = _step(network, fragments, configuration, node, delivery)
            if following != configuration:
                successors.append(following)
        if not successors:
            terminal_count += 1
            terminal_outputs.add(_global_output(configuration))
            continue
        for following in successors:
            if following in seen:
                continue
            if len(seen) >= max_configurations:
                complete = False
                continue
            seen.add(following)
            frontier.append(following)

    return ConfluenceReport(
        configurations_explored=len(seen),
        terminal_configurations=terminal_count,
        outputs=tuple(sorted(terminal_outputs, key=lambda i: sorted(map(repr, i)))),
        complete=complete,
    )
