"""Fault injection for transducer runs: adversarial channels and schedulers.

The confluence claims behind Theorems 4.3/4.4/4.5 quantify over *every* fair
run of the multiset-buffer semantics — arbitrary message reordering,
duplication and heartbeat interleavings.  This module supplies the
machinery to actually stress that space:

* :class:`FaultyChannel` — a :class:`~repro.transducers.runtime.Channel`
  that duplicates sends (multiset buffers make this legal), holds facts in
  flight for a bounded number of transitions (delay ⇒ reordering), or
  "drops" them with guaranteed later re-injection.  All three faults stay
  inside the paper's fair-run semantics: nothing is ever lost for good,
  because the runtime force-flushes in-flight facts before declaring
  quiescence.
* a scheduler zoo — :class:`SingletonScheduler` (one message per
  transition), :class:`HeartbeatStormScheduler` (bursts of empty
  deliveries), :class:`StarvationScheduler` (one node is starved of
  activations while the rest run hot, then bursts), and
  :class:`ChaosScheduler` (a seeded mix of all of the above plus random
  submultiset deliveries).  Every ``pre_round`` is followed by a fair
  full-delivery round inside :meth:`Run.run_to_quiescence`, so each
  schedule remains fair.

``chaos_scheduler_zoo`` and ``make_scheduler`` are the entry points used by
the CLI (``repro run --chaos``), the chaos-confluence benchmark and the
property tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable

from ..datalog.terms import Fact
from .runtime import Channel, Run, FairScheduler, Scheduler, TrickleScheduler

__all__ = [
    "FAULT_COUNTER_NAMES",
    "FaultPlan",
    "CHAOS_PLAN",
    "FaultyChannel",
    "SingletonScheduler",
    "HeartbeatStormScheduler",
    "StarvationScheduler",
    "ChaosScheduler",
    "chaos_scheduler_zoo",
    "make_scheduler",
    "SCHEDULER_NAMES",
]


# ----------------------------------------------------------------------
# The channel fault model
# ----------------------------------------------------------------------

#: The shared fault-counter vocabulary, used verbatim by both the
#: synchronous :class:`FaultyChannel` and the cluster fault layer
#: (:class:`repro.cluster.faults.FaultLayer`) so sweep tooling can diff
#: their telemetry directly.  Note that ``dropped`` counts
#: *drop-with-redelivery* events in both runtimes: a "dropped" fact is
#: withheld and re-injected later (every drop eventually increments
#: ``redelivered``), never lost for good — that is what keeps every faulty
#: run inside the paper's fair-run semantics.
FAULT_COUNTER_NAMES = ("duplicated", "delayed", "dropped", "redelivered")


@dataclass(frozen=True)
class FaultPlan:
    """Per-fact fault probabilities and bounds for a :class:`FaultyChannel`.

    The three fault kinds are mutually exclusive per (fact, target) send —
    a single random draw picks drop, delay or clean delivery — and a clean
    delivery may additionally be duplicated.  ``max_delay`` and
    ``redelivery_delay`` are measured in global transitions, so they are
    bounded: a delayed fact becomes due after finitely many transitions and
    fairness is preserved.

    ``crash_rate`` and ``max_crashes`` describe *node crash* faults: a
    node's task is killed mid-round and must recover from its last durable
    checkpoint.  Crashes only exist in the asynchronous cluster runtime
    (the synchronous simulator has no process to kill); the channel model
    here ignores both fields.  ``crash_rate`` is the per-transition
    probability that a node crashes at that decision point (drawn from a
    per-node seeded stream, so the schedule is deterministic per seed) and
    ``max_crashes`` bounds the total number of crashes per run.
    """

    duplicate_rate: float = 0.0
    max_copies: int = 3
    delay_rate: float = 0.0
    max_delay: int = 8
    drop_rate: float = 0.0
    redelivery_delay: int = 12
    crash_rate: float = 0.0
    max_crashes: int = 2

    def __post_init__(self) -> None:
        for name in ("duplicate_rate", "delay_rate", "drop_rate", "crash_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.delay_rate + self.drop_rate > 1.0:
            raise ValueError("delay_rate + drop_rate must not exceed 1")
        if self.max_copies < 2:
            raise ValueError("max_copies must be at least 2")
        if self.max_delay < 1 or self.redelivery_delay < 1:
            raise ValueError("delays must be at least one transition")
        if self.max_crashes < 0:
            raise ValueError("max_crashes must be non-negative")

    def describe(self) -> str:
        base = (
            f"dup={self.duplicate_rate:g}x{self.max_copies} "
            f"delay={self.delay_rate:g}<={self.max_delay} "
            f"drop={self.drop_rate:g}<={self.redelivery_delay}"
        )
        if self.crash_rate > 0:
            base += f" crash={self.crash_rate:g}<={self.max_crashes}"
        return base


#: The default adversarial mix used by ``repro run --chaos`` and the
#: chaos-confluence benchmark.
CHAOS_PLAN = FaultPlan(
    duplicate_rate=0.25, delay_rate=0.25, drop_rate=0.15
)


class FaultyChannel(Channel):
    """A channel that injects duplication, delay and drop-with-redelivery.

    All held facts live in per-target in-flight queues tagged with a due
    transition; :meth:`release` hands back the due ones when the target
    next transitions, and :meth:`flush` surrenders everything, which the
    runtime uses to guarantee eventual delivery.

    Counter vocabulary (:data:`FAULT_COUNTER_NAMES`): ``dropped`` counts
    drop-with-redelivery events — a dropped fact is withheld, not lost,
    and later shows up in ``redelivered``.
    """

    name = "faulty"

    def __init__(self, plan: FaultPlan = CHAOS_PLAN, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(seed)
        self._in_flight: dict[Hashable, list[tuple[int, Fact, str]]] = {}
        self._counters = {name: 0 for name in FAULT_COUNTER_NAMES}

    def transmit(
        self, source: Hashable, target: Hashable, facts: Iterable[Fact], clock: int
    ) -> list[Fact]:
        plan = self.plan
        rng = self._rng
        now: list[Fact] = []
        for fact in facts:
            draw = rng.random()
            if draw < plan.drop_rate:
                due = clock + 1 + rng.randrange(plan.redelivery_delay)
                self._hold(target, due, fact, "dropped")
                self._counters["dropped"] += 1
            elif draw < plan.drop_rate + plan.delay_rate:
                due = clock + 1 + rng.randrange(plan.max_delay)
                self._hold(target, due, fact, "delayed")
                self._counters["delayed"] += 1
            else:
                copies = 1
                if rng.random() < plan.duplicate_rate:
                    copies = rng.randint(2, plan.max_copies)
                    self._counters["duplicated"] += copies - 1
                now.extend([fact] * copies)
        return now

    def _hold(self, target: Hashable, due: int, fact: Fact, kind: str) -> None:
        self._in_flight.setdefault(target, []).append((due, fact, kind))

    def release(self, target: Hashable, clock: int) -> list[Fact]:
        queue = self._in_flight.get(target)
        if not queue:
            return []
        due_now = [entry for entry in queue if entry[0] <= clock]
        if not due_now:
            return []
        self._in_flight[target] = [entry for entry in queue if entry[0] > clock]
        self._counters["redelivered"] += sum(
            1 for entry in due_now if entry[2] == "dropped"
        )
        return [fact for _, fact, _ in due_now]

    def flush(self, target: Hashable) -> list[Fact]:
        queue = self._in_flight.pop(target, [])
        self._counters["redelivered"] += sum(
            1 for entry in queue if entry[2] == "dropped"
        )
        return [fact for _, fact, _ in queue]

    def pending(self) -> int:
        return sum(len(queue) for queue in self._in_flight.values())

    def fault_counters(self) -> dict[str, int]:
        return dict(self._counters)


# ----------------------------------------------------------------------
# The scheduler zoo
# ----------------------------------------------------------------------


class SingletonScheduler(Scheduler):
    """Delivers buffered messages strictly one at a time, in a random
    round-robin over the nodes, before every fair round — the maximal
    interleaving of the multiset semantics.  The drain is budgeted (a
    chatty transducer could otherwise keep it busy forever); whatever is
    left is swept up by the fair round."""

    name = "singleton"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pre_round(self, run: Run) -> None:
        budget = 4 * run.buffered_messages() + 4 * len(run.nodes())
        while budget > 0:
            nodes = [node for node in run.nodes() if run.buffer(node)]
            if not nodes:
                return
            self._rng.shuffle(nodes)
            for node in nodes:
                pending = list(run.buffer(node).elements())
                if not pending:
                    continue
                message = self._rng.choice(pending)
                run.transition(node, deliver=[message])
                budget -= 1
                if budget <= 0:
                    return

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        return nodes


class HeartbeatStormScheduler(Scheduler):
    """Interleaves bursts of heartbeats (empty deliveries) before every
    round.  Heartbeat transitions still run Qout/Qsnd over the local state,
    so a protocol whose output gate mistakenly depended on *when* it is
    evaluated — rather than on what has been delivered — diverges here."""

    name = "storm"

    def __init__(self, seed: int = 0, storms: int = 3) -> None:
        self._rng = random.Random(seed)
        self.storms = storms

    def pre_round(self, run: Run) -> None:
        nodes = run.nodes() * self.storms
        self._rng.shuffle(nodes)
        for node in nodes:
            run.heartbeat(node)

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        return nodes


class StarvationScheduler(Scheduler):
    """Starves one (rotating) victim node: for a few phases every other
    node transitions with full delivery while the victim only heartbeats —
    its buffer balloons — then the victim absorbs the whole backlog in one
    burst transition.  Probes order-independence of large batched
    deliveries versus the fine-grained schedules."""

    name = "starve"

    def __init__(self, seed: int = 0, phases: int = 3) -> None:
        self._rng = random.Random(seed)
        self.phases = phases
        self._turn = 0

    def pre_round(self, run: Run) -> None:
        nodes = run.nodes()
        if len(nodes) < 2:
            return
        victim = nodes[self._turn % len(nodes)]
        self._turn += 1
        others = [node for node in nodes if node != victim]
        for _ in range(self.phases):
            self._rng.shuffle(others)
            for node in others:
                run.transition(node, deliver="all")
            run.heartbeat(victim)
        run.transition(victim, deliver="all")

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        return nodes


class ChaosScheduler(Scheduler):
    """A seeded mix: each pre_round randomly behaves like one of the other
    adversaries or delivers a random submultiset at every node."""

    name = "chaos"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._moods: list[Scheduler] = [
            SingletonScheduler(seed + 1),
            HeartbeatStormScheduler(seed + 2, storms=2),
            StarvationScheduler(seed + 3, phases=2),
            TrickleScheduler(seed + 4),
        ]

    def pre_round(self, run: Run) -> None:
        roll = self._rng.random()
        if roll < 0.2:
            self._random_submultisets(run)
        else:
            self._rng.choice(self._moods).pre_round(run)

    def _random_submultisets(self, run: Run) -> None:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        for node in nodes:
            pending = list(run.buffer(node).elements())
            if not pending:
                continue
            take = self._rng.randint(0, len(pending))
            if take == 0:
                run.heartbeat(node)
                continue
            self._rng.shuffle(pending)
            run.transition(node, deliver=pending[:take])

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        return nodes


SCHEDULER_NAMES: dict[str, type[Scheduler]] = {
    "fair": FairScheduler,
    "trickle": TrickleScheduler,
    "singleton": SingletonScheduler,
    "storm": HeartbeatStormScheduler,
    "starve": StarvationScheduler,
    "chaos": ChaosScheduler,
}


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    """Instantiate a scheduler by CLI name (see ``SCHEDULER_NAMES``)."""
    try:
        factory = SCHEDULER_NAMES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_NAMES))
        raise ValueError(f"unknown scheduler {name!r} (known: {known})") from None
    return factory(seed)


def chaos_scheduler_zoo(seed: int = 0) -> list[Scheduler]:
    """One seeded instance of every adversarial scheduler (no plain fair)."""
    return [
        TrickleScheduler(seed),
        SingletonScheduler(seed),
        HeartbeatStormScheduler(seed),
        StarvationScheduler(seed),
        ChaosScheduler(seed),
    ]
