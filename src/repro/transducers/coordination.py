"""Coordination-freeness (Definition 3) and the distributed-computation check.

Definition 3 has two parts: (1) the transducer distributedly computes a
query Q — same output on *every* network, policy and fair run; (2) for every
network and input there is an *ideal* distribution policy under which some
run computes Q(I) in a prefix of heartbeat-only transitions (no
communication read).

Part (1) quantifies over infinitely many objects, so
:func:`check_distributed_computation` samples: several networks, several
policies (including adversarial single-node and hash policies), several
seeded fair schedules, asserting ``out(R) = Q(I)`` on each.  Part (2) is
checked constructively by :func:`heartbeat_witness`: the protocols of this
package reach Q(I) on the all-to-one-node policy with heartbeats only,
exactly as in the proofs of Theorems 4.3 / 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..datalog.instance import Instance
from ..queries.base import Query
from .policy import (
    DistributionPolicy,
    Network,
    domain_guided_policy,
    everywhere_policy,
    hash_domain_assignment,
    hash_policy,
    single_node_assignment,
    single_node_policy,
)
from .faults import CHAOS_PLAN, FaultyChannel, chaos_scheduler_zoo
from .runtime import Channel, FairScheduler, TransducerNetwork, TrickleScheduler
from .transducer import Transducer

__all__ = [
    "DistributedCheck",
    "HeartbeatWitness",
    "check_distributed_computation",
    "heartbeat_witness",
    "default_policies",
    "CoordinationReport",
    "coordination_free_report",
]


@dataclass(frozen=True)
class DistributedCheck:
    """Outcome of sampling runs for the 'distributedly computes Q' property."""

    consistent: bool
    runs: int
    failures: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.consistent:
            return f"consistent output across {self.runs} sampled runs"
        return f"INCONSISTENT in {len(self.failures)}/{self.runs} runs: " + "; ".join(
            self.failures[:3]
        )


@dataclass(frozen=True)
class HeartbeatWitness:
    """A heartbeat-only prefix computing Q(I) under an ideal policy."""

    found: bool
    node: Hashable | None = None
    heartbeats: int = 0
    policy_name: str = ""

    def describe(self) -> str:
        if self.found:
            return (
                f"Q(I) computed at node {self.node!r} after {self.heartbeats} "
                f"heartbeats under policy {self.policy_name}"
            )
        return "no heartbeat-only witness found"


def default_policies(
    schema, network: Network, *, domain_guided_only: bool = False
) -> list[DistributionPolicy]:
    """A policy sample: replication, all-to-one, hashing — with the
    non-domain-guided ones dropped when *domain_guided_only*."""
    nodes = network.sorted_nodes()
    policies: list[DistributionPolicy] = [
        everywhere_policy(schema, network),
        single_node_policy(schema, network, nodes[0]),
        single_node_policy(schema, network, nodes[-1]),
        domain_guided_policy(schema, network, hash_domain_assignment(network), name="dg-hash"),
    ]
    if not domain_guided_only:
        policies.append(hash_policy(schema, network, position=0))
        if any(schema.arity(r) > 1 for r in schema):
            policies.append(hash_policy(schema, network, position=1, name="hash-p1"))
    return policies


def check_distributed_computation(
    transducer: Transducer,
    query: Query,
    instance: Instance,
    *,
    networks: Iterable[Network] | None = None,
    policies_for: "callable | None" = None,
    domain_guided_only: bool = False,
    seeds: Iterable[int] = (0, 1, 2),
    max_rounds: int = 10_000,
    include_trickle: bool = True,
    include_chaos: bool = False,
) -> DistributedCheck:
    """Sample networks x policies x schedules and compare out(R) to Q(I).

    ``include_chaos`` additionally runs every (network, policy, seed)
    combination under the full adversarial scheduler zoo with a
    fault-injecting channel (duplication, delay, drop-with-redelivery) —
    the heavier sweep behind the chaos-confluence benchmark.
    """
    if networks is None:
        networks = [
            Network(["n1"]),
            Network(["n1", "n2"]),
            Network(["n1", "n2", "n3"]),
        ]
    expected = query(instance)
    failures: list[str] = []
    runs = 0
    for network in networks:
        if policies_for is not None:
            policies = policies_for(query.input_schema, network)
        else:
            policies = default_policies(
                query.input_schema, network, domain_guided_only=domain_guided_only
            )
        for policy in policies:
            for seed in seeds:
                jobs: list[tuple[object, Channel | None]] = [
                    (FairScheduler(seed), None)
                ]
                if include_trickle:
                    jobs.append((TrickleScheduler(seed), None))
                if include_chaos:
                    jobs.extend(
                        (scheduler, FaultyChannel(CHAOS_PLAN, seed))
                        for scheduler in chaos_scheduler_zoo(seed)
                    )
                for scheduler, channel in jobs:
                    runs += 1
                    run = TransducerNetwork(
                        network, transducer, policy
                    ).new_run(instance, channel=channel)
                    output = run.run_to_quiescence(
                        max_rounds=max_rounds, scheduler=scheduler
                    )
                    if output != expected:
                        missing = expected - output
                        extra = output - expected
                        failures.append(
                            f"net={sorted(network, key=repr)} policy={policy.name} "
                            f"seed={seed} sched={getattr(scheduler, 'name', '?')}: "
                            f"missing={len(missing)} extra={len(extra)}"
                        )
    return DistributedCheck(
        consistent=not failures, runs=runs, failures=tuple(failures)
    )


def heartbeat_witness(
    transducer: Transducer,
    query: Query,
    network: Network,
    instance: Instance,
    *,
    domain_guided: bool = False,
    max_heartbeats: int = 200,
) -> HeartbeatWitness:
    """Definition 3(2): find a policy and a heartbeat-only prefix computing
    Q(I).

    Tries, for each node x, the ideal distribution that hands the entire
    input (for domain-guided models: every domain value) to x, then runs
    heartbeat transitions at x only.
    """
    expected = query(instance)
    for node in network.sorted_nodes():
        if domain_guided:
            policy = domain_guided_policy(
                query.input_schema,
                network,
                single_node_assignment(network, node),
                name=f"dg-all-to-{node!r}",
            )
        else:
            policy = single_node_policy(query.input_schema, network, node)
        run = TransducerNetwork(network, transducer, policy).new_run(instance)
        for step in range(1, max_heartbeats + 1):
            run.heartbeat(node)
            if expected <= run.state(node).output:
                return HeartbeatWitness(
                    found=True,
                    node=node,
                    heartbeats=step,
                    policy_name=policy.name,
                )
    return HeartbeatWitness(found=False)


@dataclass(frozen=True)
class CoordinationReport:
    """Both halves of Definition 3 for one (transducer, query) pair."""

    query_name: str
    transducer_name: str
    distributed: DistributedCheck
    witness: HeartbeatWitness

    @property
    def coordination_free(self) -> bool:
        return self.distributed.consistent and self.witness.found

    def describe(self) -> str:
        verdict = "coordination-free" if self.coordination_free else "NOT coordination-free"
        return (
            f"{self.transducer_name} computing {self.query_name}: {verdict} "
            f"[{self.distributed.describe()}; {self.witness.describe()}]"
        )


def coordination_free_report(
    transducer: Transducer,
    query: Query,
    instance: Instance,
    *,
    domain_guided: bool = False,
    seeds: Iterable[int] = (0, 1),
    networks: Iterable[Network] | None = None,
) -> CoordinationReport:
    """Run both Definition 3 checks and bundle the evidence."""
    distributed = check_distributed_computation(
        transducer,
        query,
        instance,
        networks=networks,
        domain_guided_only=domain_guided,
        seeds=seeds,
    )
    witness_network = Network(["n1", "n2", "n3"])
    witness = heartbeat_witness(
        transducer, query, witness_network, instance, domain_guided=domain_guided
    )
    return CoordinationReport(
        query_name=query.name,
        transducer_name=transducer.name,
        distributed=distributed,
        witness=witness,
    )
