"""Structured run telemetry: machine-readable reports over finished runs.

A :class:`RunReport` snapshots everything a confluence or robustness sweep
needs to compare runs — aggregate :class:`~repro.transducers.runtime.RunMetrics`,
per-node delivery counters and buffer high-water marks, fault counters from
the channel, rounds-to-quiescence, and a fingerprint of the global output
so "byte-identical output" is a string comparison.

The JSON layout (``RunReport.to_dict``) is documented in ``docs/CHAOS.md``
and versioned through ``REPORT_VERSION``; it is emitted by the CLI
(``repro run --report out.json``) and consumed by
``benchmarks/bench_chaos_confluence.py``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..datalog.instance import Instance
from .runtime import Run, Scheduler

__all__ = [
    "REPORT_VERSION",
    "REQUIRED_REPORT_KEYS",
    "REQUIRED_CLUSTER_KEYS",
    "REQUIRED_CRASH_KEYS",
    "REQUIRED_NODE_KEYS",
    "NodeReport",
    "RunReport",
    "build_run_report",
    "output_fingerprint",
    "validate_report_dict",
    "write_report",
]

#: Bumped whenever the report JSON layout changes incompatibly.
REPORT_VERSION = 1

#: The versioned report schema, as required-key sets per report flavor.
#: Consumers (sweeps, CI, the conformance tests) validate against these
#: instead of hardcoding key lists — ``validate_report_dict`` is the one
#: place the contract lives.
REQUIRED_REPORT_KEYS = frozenset(
    {
        "version",
        "protocol",
        "nodes",
        "policy",
        "scheduler",
        "channel",
        "quiesced",
        "rounds_to_quiescence",
        "metrics",
        "faults",
        "per_node",
        "output_facts",
        "output_fingerprint",
    }
)

#: Cluster runs additionally carry the transport and Safra-ring telemetry.
REQUIRED_CLUSTER_KEYS = REQUIRED_REPORT_KEYS | {
    "transport",
    "token_rounds",
    "in_flight_high_water",
}

#: Crash-recovery cluster runs additionally carry the recovery counters.
REQUIRED_CRASH_KEYS = REQUIRED_CLUSTER_KEYS | {
    "crashes",
    "recoveries",
    "wal_replayed",
    "snapshot_bytes",
}

#: Every per-node record carries these, whatever the runtime.
REQUIRED_NODE_KEYS = frozenset(
    {
        "node",
        "transitions",
        "heartbeats",
        "deliveries",
        "sent_facts",
        "buffer_high_water",
        "buffered_at_end",
        "output_facts",
        "memory_facts",
    }
)

_REQUIRED_BY_KIND = {
    "run": REQUIRED_REPORT_KEYS,
    "cluster": REQUIRED_CLUSTER_KEYS,
    "cluster-crash": REQUIRED_CRASH_KEYS,
}


def validate_report_dict(payload: dict, *, kind: str = "run") -> None:
    """Validate a report JSON dict against the versioned schema.

    ``kind`` is one of ``"run"`` (synchronous simulator), ``"cluster"``
    (async runtime) or ``"cluster-crash"`` (async runtime with the
    crash-recovery counters).  Raises :class:`ValueError` naming every
    missing key, a version mismatch, or a malformed per-node record —
    silence means the report honors the contract.
    """
    try:
        required = _REQUIRED_BY_KIND[kind]
    except KeyError:
        raise ValueError(
            f"unknown report kind {kind!r}; expected one of "
            f"{sorted(_REQUIRED_BY_KIND)}"
        ) from None
    if not isinstance(payload, dict):
        raise ValueError(f"report must be a JSON object, got {type(payload).__name__}")
    version = payload.get("version")
    if version != REPORT_VERSION:
        raise ValueError(
            f"report version {version!r} does not match {REPORT_VERSION}"
        )
    missing = sorted(required - payload.keys())
    if missing:
        raise ValueError(f"{kind} report is missing keys: {', '.join(missing)}")
    per_node = payload["per_node"]
    if not isinstance(per_node, list) or not per_node:
        raise ValueError("per_node must be a non-empty list of node records")
    for record in per_node:
        node_missing = sorted(REQUIRED_NODE_KEYS - record.keys())
        if node_missing:
            raise ValueError(
                f"per_node record {record.get('node', '?')} is missing keys: "
                f"{', '.join(node_missing)}"
            )


def output_fingerprint(instance: Instance) -> str:
    """A stable digest of an instance: sha256 over the sorted fact reprs.

    Two runs have byte-identical global output iff their fingerprints are
    equal — the equality the chaos-confluence sweep asserts.
    """
    canonical = "\n".join(repr(fact) for fact in instance.sorted_facts())
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class NodeReport:
    """Telemetry for one node of a finished run."""

    node: str
    transitions: int
    heartbeats: int
    deliveries: int
    sent_facts: int
    buffer_high_water: int
    buffered_at_end: int
    output_facts: int
    memory_facts: int
    #: Cluster runs only: deepest this node's transport mailbox ever got,
    #: in frames.  ``None`` for synchronous-simulator reports.
    mailbox_high_water: int | None = None

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "node": self.node,
            "transitions": self.transitions,
            "heartbeats": self.heartbeats,
            "deliveries": self.deliveries,
            "sent_facts": self.sent_facts,
            "buffer_high_water": self.buffer_high_water,
            "buffered_at_end": self.buffered_at_end,
            "output_facts": self.output_facts,
            "memory_facts": self.memory_facts,
        }
        if self.mailbox_high_water is not None:
            payload["mailbox_high_water"] = self.mailbox_high_water
        return payload


@dataclass(frozen=True)
class RunReport:
    """The full structured report for one run (see docs/CHAOS.md)."""

    protocol: str
    nodes: tuple[str, ...]
    policy: str
    scheduler: str
    channel: str
    quiesced: bool
    metrics: dict[str, int]
    faults: dict[str, int]
    per_node: tuple[NodeReport, ...]
    output_facts: int
    output_fingerprint: str
    trace: tuple[dict[str, Any], ...] | None = None
    #: Cluster runs only (``None`` for synchronous-simulator reports):
    #: transport name, Safra probe circulations until quiescence, and the
    #: fault layer's peak count of facts withheld for redelivery.
    transport: str | None = None
    token_rounds: int | None = None
    in_flight_high_water: int | None = None
    #: Crash-recovery telemetry (cluster runs with a checkpoint store):
    #: injected crashes, completed recoveries, WAL entries replayed across
    #: all recoveries, and total snapshot bytes written.
    crashes: int | None = None
    recoveries: int | None = None
    wal_replayed: int | None = None
    snapshot_bytes: int | None = None
    version: int = field(default=REPORT_VERSION)

    @property
    def rounds_to_quiescence(self) -> int | None:
        """Rounds executed, when the run actually quiesced."""
        return self.metrics["rounds"] if self.quiesced else None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "version": self.version,
            "protocol": self.protocol,
            "nodes": list(self.nodes),
            "policy": self.policy,
            "scheduler": self.scheduler,
            "channel": self.channel,
            "quiesced": self.quiesced,
            "rounds_to_quiescence": self.rounds_to_quiescence,
            "metrics": dict(self.metrics),
            "faults": dict(self.faults),
            "per_node": [node.to_dict() for node in self.per_node],
            "output_facts": self.output_facts,
            "output_fingerprint": self.output_fingerprint,
        }
        if self.trace is not None:
            payload["trace"] = [dict(record) for record in self.trace]
        if self.transport is not None:
            payload["transport"] = self.transport
        if self.token_rounds is not None:
            payload["token_rounds"] = self.token_rounds
        if self.in_flight_high_water is not None:
            payload["in_flight_high_water"] = self.in_flight_high_water
        if self.crashes is not None:
            payload["crashes"] = self.crashes
        if self.recoveries is not None:
            payload["recoveries"] = self.recoveries
        if self.wal_replayed is not None:
            payload["wal_replayed"] = self.wal_replayed
        if self.snapshot_bytes is not None:
            payload["snapshot_bytes"] = self.snapshot_bytes
        return payload

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """One human line: the numbers one scans in a sweep log."""
        state = "quiesced" if self.quiesced else "DID NOT QUIESCE"
        return (
            f"{self.protocol} [{self.scheduler}/{self.channel}] {state} "
            f"after {self.metrics['rounds']} rounds, "
            f"{self.metrics['transitions']} transitions "
            f"({self.metrics['pre_round_transitions']} adversarial), "
            f"{self.output_facts} output facts, "
            f"out={self.output_fingerprint[:12]}"
        )


def build_run_report(
    run: Run,
    *,
    scheduler: Scheduler | None = None,
    quiesced: bool = True,
    include_trace: bool = False,
    trace_limit: int = 200,
) -> RunReport:
    """Assemble the report for a (normally finished) run.

    ``scheduler`` is the one the run executed under — the Run itself does
    not retain it.  ``include_trace`` embeds the last ``trace_limit``
    transition records (JSON-ready dicts) for debugging divergent runs.
    """
    output = run.global_output()
    per_node = []
    for node in run.nodes():
        stats = run.node_stats[node]
        state = run.state(node)
        per_node.append(
            NodeReport(
                node=repr(node),
                transitions=stats.transitions,
                heartbeats=stats.heartbeats,
                deliveries=stats.deliveries,
                sent_facts=stats.sent_facts,
                buffer_high_water=stats.buffer_high_water,
                buffered_at_end=sum(run.buffer(node).values()),
                output_facts=len(state.output),
                memory_facts=len(state.memory),
            )
        )
    trace = None
    if include_trace:
        trace = tuple(record.to_dict() for record in run.history[-trace_limit:])
    scheduler_name = getattr(scheduler, "name", None) or (
        type(scheduler).__name__ if scheduler is not None else "fair"
    )
    return RunReport(
        protocol=run.network.transducer.name,
        nodes=tuple(repr(node) for node in run.nodes()),
        policy=run.network.policy.name,
        scheduler=scheduler_name,
        channel=run.channel.name,
        quiesced=quiesced,
        metrics=run.metrics.to_dict(),
        faults=run.channel.fault_counters(),
        per_node=tuple(per_node),
        output_facts=len(output),
        output_fingerprint=output_fingerprint(output),
        trace=trace,
    )


def write_report(report: RunReport, path: str) -> None:
    """Write the report JSON to *path* (the CLI's ``--report`` backend)."""
    with open(path, "w") as handle:
        handle.write(report.to_json())
        handle.write("\n")
