"""The operational semantics of transducer networks (Section 4.1.3).

A :class:`TransducerNetwork` bundles (N, Upsilon, Pi, P).  A :class:`Run`
holds a configuration — per-node output/memory state plus multiset message
buffers — and exposes :meth:`Run.transition` implementing the paper's
transition relation exactly:

* the active node x receives a submultiset m of its buffer, collapsed to a
  set M;
* the database D = J ∪ S is assembled (J = local input ∪ state ∪ M, S the
  system facts for the model variant);
* output grows by Qout(D); memory becomes
  ``(mem ∪ (ins \\ del)) \\ (del \\ ins)``;
* Qsnd(D) is appended to every *other* node's buffer (multiset union), and
  m is removed from x's buffer (multiset difference).

Runs are infinite in the paper; the simulator executes finite prefixes under
pluggable schedulers and detects *quiescence* — a full round of
all-message-delivery transitions that changes no state and sends nothing not
already delivered — after which well-behaved transducers (all the protocols
in this package store every delivered message in memory) can never produce
new facts.  Fairness is realized by round-based scheduling: every node is
activated once per round and buffered messages are eventually delivered.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..datalog.instance import Instance
from ..datalog.terms import Fact
from .policy import DistributionPolicy, Network
from .transducer import LocalView, Transducer

__all__ = [
    "TransducerNetwork",
    "NodeState",
    "TransitionRecord",
    "RunMetrics",
    "Run",
    "Scheduler",
    "FairScheduler",
    "TrickleScheduler",
    "QuiescenceError",
]


class QuiescenceError(RuntimeError):
    """Raised when a run fails to quiesce within its transition budget."""


@dataclass
class NodeState:
    """s(x): the output and memory facts stored at one node."""

    output: Instance = field(default_factory=Instance)
    memory: Instance = field(default_factory=Instance)

    def snapshot(self) -> tuple[Instance, Instance]:
        return (self.output, self.memory)


@dataclass(frozen=True)
class TransitionRecord:
    """One transition: who ran, what was delivered, what changed."""

    index: int
    node: Hashable
    delivered: int
    sent: int
    heartbeat: bool
    state_changed: bool
    new_output: int


@dataclass
class RunMetrics:
    """Aggregate counters over a run — the protocol-cost measurements used
    by the Section 4.3 discussion benchmarks."""

    transitions: int = 0
    heartbeats: int = 0
    message_facts_sent: int = 0
    message_deliveries: int = 0
    rounds: int = 0

    def record(self, record: TransitionRecord, fanout: int) -> None:
        self.transitions += 1
        if record.heartbeat:
            self.heartbeats += 1
        self.message_facts_sent += record.sent * fanout
        self.message_deliveries += record.delivered


class TransducerNetwork:
    """(N, Upsilon, Pi, P): a transducer placed on every node of a network
    with a distribution policy for the input schema."""

    def __init__(
        self,
        network: Network,
        transducer: Transducer,
        policy: DistributionPolicy,
        *,
        require_domain_guided: bool = False,
    ) -> None:
        if policy.network != network:
            raise ValueError("policy network differs from the transducer network")
        if policy.schema != transducer.schema.inputs:
            raise ValueError("policy schema differs from the input schema")
        if require_domain_guided and not policy.is_domain_guided:
            raise ValueError(
                "a domain-guided transducer network needs a domain-guided policy"
            )
        self.network = network
        self.transducer = transducer
        self.policy = policy

    def new_run(self, instance: Instance) -> "Run":
        """Start a run of this network on the given global input."""
        return Run(self, instance)


class Run:
    """A (finite prefix of a) run of a transducer network on an input."""

    def __init__(self, network: TransducerNetwork, instance: Instance) -> None:
        self._network = network
        self._instance = instance.restrict(network.transducer.schema.inputs)
        self._fragments = network.policy.distribute(self._instance)
        self._states: dict[Hashable, NodeState] = {
            node: NodeState() for node in network.network
        }
        self._buffers: dict[Hashable, Counter] = {
            node: Counter() for node in network.network
        }
        self._delivered_ever: dict[Hashable, set[Fact]] = {
            node: set() for node in network.network
        }
        self.metrics = RunMetrics()
        self._transition_count = 0
        self.history: list[TransitionRecord] = []

    # -- accessors -------------------------------------------------------

    @property
    def network(self) -> TransducerNetwork:
        return self._network

    @property
    def instance(self) -> Instance:
        return self._instance

    def nodes(self) -> list[Hashable]:
        return self._network.network.sorted_nodes()

    def state(self, node: Hashable) -> NodeState:
        return self._states[node]

    def buffer(self, node: Hashable) -> Counter:
        return Counter(self._buffers[node])

    def buffered_messages(self) -> int:
        return sum(sum(buffer.values()) for buffer in self._buffers.values())

    def local_input(self, node: Hashable) -> Instance:
        return self._fragments[node]

    def global_output(self) -> Instance:
        """out(R): the union of all output facts produced so far."""
        result = Instance()
        for state in self._states.values():
            result = result | state.output
        return result

    # -- the transition relation -----------------------------------------

    def view(self, node: Hashable, delivered: Instance) -> LocalView:
        state = self._states[node]
        return LocalView(
            node=node,
            network=self._network.network,
            schema=self._network.transducer.schema,
            policy=self._network.policy,
            local_input=self._fragments[node],
            output=state.output,
            memory=state.memory,
            delivered=delivered,
        )

    def transition(
        self, node: Hashable, deliver: Iterable[Fact] | str | None = "all"
    ) -> TransitionRecord:
        """Perform one transition with *node* active.

        ``deliver`` is ``"all"`` (empty the buffer), ``None`` / ``()`` (a
        heartbeat) or an explicit iterable forming a submultiset of the
        node's buffer.
        """
        buffer = self._buffers[node]
        if deliver == "all":
            chosen = Counter(buffer)
        elif deliver is None:
            chosen = Counter()
        else:
            chosen = Counter(deliver)
            overdraw = chosen - buffer
            if overdraw:
                raise ValueError(
                    f"cannot deliver messages not in the buffer: {set(overdraw)}"
                )
        delivered_set = Instance(chosen.keys())
        view = self.view(node, delivered_set)
        update = self._network.transducer.step(view)

        state = self._states[node]
        before = state.snapshot()
        state.output = state.output | update.output
        ins_only = update.insertions - update.deletions
        del_only = update.deletions - update.insertions
        state.memory = (state.memory | ins_only) - del_only

        buffer.subtract(chosen)
        for key in [k for k, count in buffer.items() if count <= 0]:
            del buffer[key]
        self._delivered_ever[node].update(delivered_set)

        fanout = 0
        if update.messages:
            others = [n for n in self._network.network if n != node]
            fanout = len(others)
            for other in others:
                self._buffers[other].update(update.messages.facts)

        record = TransitionRecord(
            index=self._transition_count,
            node=node,
            delivered=sum(chosen.values()),
            sent=len(update.messages),
            heartbeat=not chosen,
            state_changed=state.snapshot() != before,
            new_output=len(state.output) - len(before[0]),
        )
        self._transition_count += 1
        self.metrics.record(record, fanout if update.messages else 0)
        self.history.append(record)
        return record

    def render_trace(self, *, limit: int = 40) -> str:
        """A human-readable trace of the run's transitions (for debugging
        protocol behaviour and for the examples)."""
        lines = []
        for record in self.history[-limit:]:
            kind = "heartbeat" if record.heartbeat else f"recv {record.delivered}"
            change = "changed" if record.state_changed else "idle"
            lines.append(
                f"#{record.index:<4} {record.node!r:>8}  {kind:<10} "
                f"sent {record.sent:<3} {change}"
                + (f" (+{record.new_output} out)" if record.new_output else "")
            )
        return "\n".join(lines)

    def heartbeat(self, node: Hashable) -> TransitionRecord:
        """A transition that delivers nothing (m = ∅)."""
        return self.transition(node, deliver=None)

    # -- rounds and quiescence --------------------------------------------

    def round(self, order: Iterable[Hashable] | None = None) -> bool:
        """Activate every node once (delivering its whole buffer).

        Returns True when any state changed or any *novel* message content
        (never before delivered to its target) was sent.
        """
        changed = False
        nodes = list(order) if order is not None else self.nodes()
        for node in nodes:
            before_buffers = {
                n: set(self._buffers[n]) - self._delivered_ever[n]
                for n in self._buffers
            }
            record = self.transition(node, deliver="all")
            if record.state_changed:
                changed = True
            else:
                for n, pending_novel in (
                    (n, set(self._buffers[n]) - self._delivered_ever[n])
                    for n in self._buffers
                ):
                    if pending_novel - before_buffers[n]:
                        changed = True
                        break
        self.metrics.rounds += 1
        return changed

    def run_to_quiescence(
        self,
        *,
        max_rounds: int = 10_000,
        scheduler: "Scheduler | None" = None,
    ) -> Instance:
        """Execute fair rounds until quiescent; returns the global output.

        Quiescence: a full all-delivery round with no state change and no
        novel message content, with only already-delivered duplicates left
        buffered.
        """
        scheduler = scheduler or FairScheduler()
        for _ in range(max_rounds):
            order = scheduler.order(self)
            changed = self.round(order)
            if not changed and not self._novel_pending():
                return self.global_output()
        raise QuiescenceError(
            f"run did not quiesce within {max_rounds} rounds "
            f"({self.buffered_messages()} messages pending)"
        )

    def _novel_pending(self) -> bool:
        return any(
            set(self._buffers[node]) - self._delivered_ever[node]
            for node in self._buffers
        )


class Scheduler:
    """Chooses node activation orders for rounds; subclasses add policy."""

    def order(self, run: Run) -> list[Hashable]:
        return run.nodes()


class FairScheduler(Scheduler):
    """A seeded random permutation per round — fair because every node runs
    once per round and every buffered message is delivered when its node
    activates."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        return nodes


class TrickleScheduler(Scheduler):
    """An adversarial-ish scheduler: before each round, every node performs
    extra transitions that deliver messages one at a time in random order,
    maximizing interleavings (used to probe confluence of the protocols)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        for node in nodes:
            pending = list(run.buffer(node).elements())
            self._rng.shuffle(pending)
            for message in pending[: len(pending) // 2]:
                run.transition(node, deliver=[message])
        self._rng.shuffle(nodes)
        return nodes
