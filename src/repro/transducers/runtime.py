"""The operational semantics of transducer networks (Section 4.1.3).

A :class:`TransducerNetwork` bundles (N, Upsilon, Pi, P).  A :class:`Run`
holds a configuration — per-node output/memory state plus multiset message
buffers — and exposes :meth:`Run.transition` implementing the paper's
transition relation exactly:

* the active node x receives a submultiset m of its buffer, collapsed to a
  set M;
* the database D = J ∪ S is assembled (J = local input ∪ state ∪ M, S the
  system facts for the model variant);
* output grows by Qout(D); memory becomes
  ``(mem ∪ (ins \\ del)) \\ (del \\ ins)``;
* Qsnd(D) is appended to every *other* node's buffer (multiset union), and
  m is removed from x's buffer (multiset difference).

Runs are infinite in the paper; the simulator executes finite prefixes under
pluggable schedulers and detects *quiescence* — a full round of
all-message-delivery transitions that changes no state and sends nothing not
already delivered — after which well-behaved transducers (all the protocols
in this package store every delivered message in memory) can never produce
new facts.  Fairness is realized by round-based scheduling: every node is
activated once per round and buffered messages are eventually delivered.

Message delivery between nodes goes through a pluggable :class:`Channel`.
The default channel is perfect (every sent fact is enqueued exactly once,
immediately); :mod:`repro.transducers.faults` provides fault-injecting
channels (duplication, bounded delay, drop-with-eventual-redelivery) that
stay within the paper's fair-run semantics: a multiset buffer already allows
duplicates, and every in-flight fact is eventually delivered — the
quiescence loop force-flushes any remaining in-flight messages before it is
allowed to declare a run quiescent.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..datalog.instance import Instance
from ..datalog.terms import Fact
from .policy import DistributionPolicy, Network
from .transducer import LocalView, Transducer

__all__ = [
    "TransducerNetwork",
    "NodeState",
    "NodeStats",
    "TransitionRecord",
    "RunMetrics",
    "Run",
    "Channel",
    "Scheduler",
    "FairScheduler",
    "TrickleScheduler",
    "QuiescenceError",
]


class QuiescenceError(RuntimeError):
    """Raised when a run fails to quiesce within its transition budget."""


#: Modulus for the incremental database fingerprints (64-bit wraparound).
_HASH_MOD = 1 << 64


def _section_hash(section: str, facts: Iterable[Fact]) -> int:
    """An order-independent content hash of one section of the database D.

    A plain sum of per-fact hashes (mod 2^64) so the runtime can maintain it
    *incrementally*: adding a fact adds its term, removing subtracts it.
    The section tag keeps equal facts in different roles (input vs memory vs
    delivered message) from cancelling across sections.
    """
    total = 0
    for fact in facts:
        total += hash((section, fact))
    return total % _HASH_MOD


@dataclass
class NodeState:
    """s(x): the output and memory facts stored at one node."""

    output: Instance = field(default_factory=Instance)
    memory: Instance = field(default_factory=Instance)

    def snapshot(self) -> tuple[Instance, Instance]:
        return (self.output, self.memory)


@dataclass(frozen=True)
class TransitionRecord:
    """One transition: who ran, what was delivered, what changed."""

    index: int
    node: Hashable
    delivered: int
    sent: int
    heartbeat: bool
    state_changed: bool
    new_output: int

    def to_dict(self) -> dict:
        """A JSON-ready view of this record (telemetry traces)."""
        return {
            "index": self.index,
            "node": repr(self.node),
            "delivered": self.delivered,
            "sent": self.sent,
            "heartbeat": self.heartbeat,
            "state_changed": self.state_changed,
            "new_output": self.new_output,
        }


@dataclass
class RunMetrics:
    """Aggregate counters over a run — the protocol-cost measurements used
    by the Section 4.3 discussion benchmarks.

    ``transitions`` counts every transition, including the extra ones an
    adversarial scheduler performs before a round; those are additionally
    broken out as ``pre_round_transitions`` so rounds-to-quiescence and
    transitions-per-round read correctly from a report.
    """

    transitions: int = 0
    heartbeats: int = 0
    message_facts_sent: int = 0
    message_deliveries: int = 0
    rounds: int = 0
    pre_round_transitions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    plans_compiled: int = 0

    def record(self, record: TransitionRecord, fanout: int) -> None:
        self.transitions += 1
        if record.heartbeat:
            self.heartbeats += 1
        self.message_facts_sent += record.sent * fanout
        self.message_deliveries += record.delivered

    def to_dict(self) -> dict:
        return {
            "transitions": self.transitions,
            "heartbeats": self.heartbeats,
            "message_facts_sent": self.message_facts_sent,
            "message_deliveries": self.message_deliveries,
            "rounds": self.rounds,
            "pre_round_transitions": self.pre_round_transitions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "plans_compiled": self.plans_compiled,
        }


@dataclass
class NodeStats:
    """Per-node counters maintained during a run (telemetry)."""

    transitions: int = 0
    heartbeats: int = 0
    deliveries: int = 0
    sent_facts: int = 0
    buffer_high_water: int = 0

    def to_dict(self) -> dict:
        return {
            "transitions": self.transitions,
            "heartbeats": self.heartbeats,
            "deliveries": self.deliveries,
            "sent_facts": self.sent_facts,
            "buffer_high_water": self.buffer_high_water,
        }


class Channel:
    """The delivery model for every network link: decides what actually
    lands in a buffer when a node addresses facts to another node.

    The base class is the *perfect* channel: every sent fact is enqueued at
    its target exactly once, immediately.  Fault-injecting subclasses (see
    :mod:`repro.transducers.faults`) may return extra copies, hold facts in
    flight for later :meth:`release`, or both — but they must keep every
    held fact retrievable through :meth:`flush` so the runtime can preserve
    the fair-run guarantee that all messages are eventually delivered.

    ``clock`` arguments are the run's global transition counter.
    """

    name = "perfect"

    def transmit(
        self, source: Hashable, target: Hashable, facts: Iterable[Fact], clock: int
    ) -> list[Fact]:
        """Facts to enqueue at *target* right now (copies included)."""
        return list(facts)

    def release(self, target: Hashable, clock: int) -> list[Fact]:
        """In-flight facts for *target* whose delivery is now due."""
        return []

    def flush(self, target: Hashable) -> list[Fact]:
        """Hand over *all* in-flight facts for *target*, due or not."""
        return []

    def pending(self) -> int:
        """Number of facts currently held in flight (all targets)."""
        return 0

    def fault_counters(self) -> dict[str, int]:
        """Counters describing the faults injected so far (telemetry)."""
        return {}


class TransducerNetwork:
    """(N, Upsilon, Pi, P): a transducer placed on every node of a network
    with a distribution policy for the input schema."""

    def __init__(
        self,
        network: Network,
        transducer: Transducer,
        policy: DistributionPolicy,
        *,
        require_domain_guided: bool = False,
    ) -> None:
        if policy.network != network:
            raise ValueError("policy network differs from the transducer network")
        if policy.schema != transducer.schema.inputs:
            raise ValueError("policy schema differs from the input schema")
        if require_domain_guided and not policy.is_domain_guided:
            raise ValueError(
                "a domain-guided transducer network needs a domain-guided policy"
            )
        self.network = network
        self.transducer = transducer
        self.policy = policy

    def new_run(self, instance: Instance, *, channel: Channel | None = None) -> "Run":
        """Start a run of this network on the given global input.

        ``channel`` selects the delivery model; ``None`` means the perfect
        channel (immediate, exactly-once enqueueing).
        """
        return Run(self, instance, channel=channel)


class Run:
    """A (finite prefix of a) run of a transducer network on an input."""

    def __init__(
        self,
        network: TransducerNetwork,
        instance: Instance,
        *,
        channel: Channel | None = None,
    ) -> None:
        self._network = network
        self._instance = instance.restrict(network.transducer.schema.inputs)
        self._fragments = network.policy.distribute(self._instance)
        # Sorted node order everywhere a dict's insertion order can leak into
        # scheduling or telemetry: Network is a frozenset, and frozenset
        # iteration order varies with the per-process hash salt.
        ordered_nodes = network.network.sorted_nodes()
        self._states: dict[Hashable, NodeState] = {
            node: NodeState() for node in ordered_nodes
        }
        self._buffers: dict[Hashable, Counter] = {
            node: Counter() for node in ordered_nodes
        }
        self._delivered_ever: dict[Hashable, set[Fact]] = {
            node: set() for node in ordered_nodes
        }
        self._channel = channel if channel is not None else Channel()
        # Database fingerprints (the step-cache tokens): the local input
        # fragment is hashed once, the output/memory hash is maintained
        # incrementally by `transition`, and the delivered set is hashed per
        # transition.  The context ties tokens to this run's network, policy
        # and model variant, since one transducer object may serve many runs
        # (the policy participates by identity; the run holds a strong
        # reference, so its id cannot be recycled while tokens live).
        self._cache_context = (
            network.transducer.schema.variant.name,
            frozenset(network.network),
            network.policy,
        )
        self._input_hash: dict[Hashable, int] = {
            node: _section_hash("in", self._fragments[node])
            for node in ordered_nodes
        }
        self._state_hash: dict[Hashable, int] = {
            node: 0 for node in ordered_nodes
        }
        self.metrics = RunMetrics()
        self.node_stats: dict[Hashable, NodeStats] = {
            node: NodeStats() for node in ordered_nodes
        }
        self._transition_count = 0
        self.history: list[TransitionRecord] = []
        # Streaming telemetry: one entry per quiescent epoch (the output
        # observed just before each delta batch was ingested, plus the
        # final output), and the count of late-arriving facts accepted.
        self.epoch_outputs: list[Instance] = []
        self.deltas_ingested = 0

    # -- accessors -------------------------------------------------------

    @property
    def network(self) -> TransducerNetwork:
        return self._network

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def channel(self) -> Channel:
        return self._channel

    def nodes(self) -> list[Hashable]:
        return self._network.network.sorted_nodes()

    def state(self, node: Hashable) -> NodeState:
        return self._states[node]

    def buffer(self, node: Hashable) -> Counter:
        return Counter(self._buffers[node])

    def buffered_messages(self) -> int:
        return sum(sum(buffer.values()) for buffer in self._buffers.values())

    def local_input(self, node: Hashable) -> Instance:
        return self._fragments[node]

    def global_output(self) -> Instance:
        """out(R): the union of all output facts produced so far."""
        result = Instance()
        for state in self._states.values():
            result = result | state.output
        return result

    # -- the transition relation -----------------------------------------

    def view(
        self,
        node: Hashable,
        delivered: Instance,
        *,
        db_token: Hashable | None = None,
    ) -> LocalView:
        state = self._states[node]
        return LocalView(
            node=node,
            network=self._network.network,
            schema=self._network.transducer.schema,
            policy=self._network.policy,
            local_input=self._fragments[node],
            output=state.output,
            memory=state.memory,
            delivered=delivered,
            db_token=db_token,
        )

    def transition(
        self, node: Hashable, deliver: Iterable[Fact] | str | None = "all"
    ) -> TransitionRecord:
        """Perform one transition with *node* active.

        ``deliver`` is ``"all"`` (empty the buffer), ``None`` / ``()`` (a
        heartbeat) or an explicit iterable forming a submultiset of the
        node's buffer.
        """
        buffer = self._buffers[node]
        released = self._channel.release(node, self._transition_count)
        if released:
            buffer.update(released)
            self._note_buffer(node)
        if deliver == "all":
            chosen = Counter(buffer)
        elif deliver is None:
            chosen = Counter()
        else:
            chosen = Counter(deliver)
            overdraw = chosen - buffer
            if overdraw:
                raise ValueError(
                    f"cannot deliver messages not in the buffer: {set(overdraw)}"
                )
        delivered_set = Instance(chosen.keys())
        transducer = self._network.transducer
        token = (
            node,
            self._cache_context,
            self._input_hash[node],
            self._state_hash[node],
            _section_hash("msg", delivered_set),
        )
        view = self.view(node, delivered_set, db_token=token)
        stats_before = transducer.evaluation_stats()
        update = transducer.step(view)
        stats_after = transducer.evaluation_stats()
        self.metrics.cache_hits += (
            stats_after["cache_hits"] - stats_before["cache_hits"]
        )
        self.metrics.cache_misses += (
            stats_after["cache_misses"] - stats_before["cache_misses"]
        )
        self.metrics.plans_compiled += (
            stats_after["plans_compiled"] - stats_before["plans_compiled"]
        )

        state = self._states[node]
        before = state.snapshot()
        state.output = state.output | update.output
        ins_only = update.insertions - update.deletions
        del_only = update.deletions - update.insertions
        state.memory = (state.memory | ins_only) - del_only

        # Maintain the node's output/memory fingerprint incrementally so
        # the next transition's token costs O(|changes|), not O(|state|).
        added_output = update.output - before[0]
        added_memory = ins_only - before[1]
        removed_memory = Instance(f for f in del_only if f in before[1])
        if added_output or added_memory or removed_memory:
            delta = _section_hash("out", added_output)
            delta += _section_hash("mem", added_memory)
            delta -= _section_hash("mem", removed_memory)
            self._state_hash[node] = (self._state_hash[node] + delta) % _HASH_MOD

        buffer.subtract(chosen)
        for key in [k for k, count in buffer.items() if count <= 0]:
            del buffer[key]
        self._delivered_ever[node].update(delivered_set)

        fanout = 0
        if update.messages:
            # Canonical (sorted) fact and target orders: buffer insertion and
            # the channel's per-fact randomness must not depend on frozenset
            # iteration order, which is salted per process for str values —
            # this is what makes `repro run --chaos --seed S` byte-reproducible
            # across interpreter invocations.
            outgoing = sorted(update.messages.facts)
            others = [
                n for n in self._network.network.sorted_nodes() if n != node
            ]
            fanout = len(others)
            for other in others:
                copies = self._channel.transmit(
                    node, other, outgoing, self._transition_count
                )
                if copies:
                    self._buffers[other].update(copies)
                self._note_buffer(other)

        record = TransitionRecord(
            index=self._transition_count,
            node=node,
            delivered=sum(chosen.values()),
            sent=len(update.messages),
            heartbeat=not chosen,
            state_changed=state.snapshot() != before,
            new_output=len(state.output) - len(before[0]),
        )
        self._transition_count += 1
        self.metrics.record(record, fanout if update.messages else 0)
        stats = self.node_stats[node]
        stats.transitions += 1
        stats.deliveries += record.delivered
        stats.sent_facts += record.sent
        if record.heartbeat:
            stats.heartbeats += 1
        self.history.append(record)
        return record

    def _note_buffer(self, node: Hashable) -> None:
        """Track the buffer high-water mark after an enqueue (telemetry)."""
        size = sum(self._buffers[node].values())
        stats = self.node_stats[node]
        if size > stats.buffer_high_water:
            stats.buffer_high_water = size

    def render_trace(self, *, limit: int = 40) -> str:
        """A human-readable trace of the run's transitions (for debugging
        protocol behaviour and for the examples)."""
        lines = []
        for record in self.history[-limit:]:
            kind = "heartbeat" if record.heartbeat else f"recv {record.delivered}"
            change = "changed" if record.state_changed else "idle"
            lines.append(
                f"#{record.index:<4} {record.node!r:>8}  {kind:<10} "
                f"sent {record.sent:<3} {change}"
                + (f" (+{record.new_output} out)" if record.new_output else "")
            )
        return "\n".join(lines)

    def heartbeat(self, node: Hashable) -> TransitionRecord:
        """A transition that delivers nothing (m = ∅)."""
        return self.transition(node, deliver=None)

    # -- rounds and quiescence --------------------------------------------

    def round(self, order: Iterable[Hashable] | None = None) -> bool:
        """Activate every node once (delivering its whole buffer).

        Returns True when any state changed or any *novel* message content
        (never before delivered to its target) was sent.
        """
        changed = False
        nodes = list(order) if order is not None else self.nodes()
        for node in nodes:
            before_buffers = {
                n: set(self._buffers[n]) - self._delivered_ever[n]
                for n in self._buffers
            }
            record = self.transition(node, deliver="all")
            if record.state_changed:
                changed = True
            else:
                for n, pending_novel in (
                    (n, set(self._buffers[n]) - self._delivered_ever[n])
                    for n in self._buffers
                ):
                    if pending_novel - before_buffers[n]:
                        changed = True
                        break
        self.metrics.rounds += 1
        return changed

    def run_to_quiescence(
        self,
        *,
        max_rounds: int = 10_000,
        scheduler: "Scheduler | None" = None,
    ) -> Instance:
        """Execute fair rounds until quiescent; returns the global output.

        Quiescence: a full all-delivery round with no state change and no
        novel message content, with only already-delivered duplicates left
        buffered and nothing held in flight by the channel.  Any in-flight
        messages are force-flushed into the buffers before quiescence may be
        declared — this is what makes delay/drop channels *fair*: every
        message is eventually delivered, even on runs that would otherwise
        go quiet first.
        """
        scheduler = scheduler or FairScheduler()
        for _ in range(max_rounds):
            before = self.metrics.transitions
            scheduler.pre_round(self)
            self.metrics.pre_round_transitions += self.metrics.transitions - before
            order = scheduler.order(self)
            changed = self.round(order)
            if not changed and not self._novel_pending():
                if self._flush_channel():
                    continue
                return self.global_output()
        raise QuiescenceError(
            f"run did not quiesce within {max_rounds} rounds "
            f"({self.buffered_messages()} messages pending, "
            f"{self._channel.pending()} in flight)"
        )

    # -- streaming ingestion ---------------------------------------------

    def ingest(self, facts: Iterable[Fact]) -> int:
        """Extend the input instance with late-arriving *facts*.

        The paper's transducers are well-behaved and inflationary, so a
        fact added to a node's local input is simply reacted to at that
        node's next transition — no new machinery, only bookkeeping: the
        global instance grows, the owning nodes' fragments grow, and each
        touched node's input fingerprint is updated incrementally (the
        step-cache token changes, so memoized transitions cannot leak
        across the ingestion boundary).  Returns the number of facts that
        were genuinely new to the run.
        """
        delta = Instance(facts).restrict(
            self._network.transducer.schema.inputs
        ) - self._instance
        if not delta:
            return 0
        self._instance = self._instance | delta
        for node, fragment in self._network.policy.distribute(delta).items():
            added = fragment - self._fragments[node]
            if not added:
                continue
            self._fragments[node] = self._fragments[node] | added
            self._input_hash[node] = (
                self._input_hash[node] + _section_hash("in", added)
            ) % _HASH_MOD
        self.deltas_ingested += len(delta)
        return len(delta)

    def stream_to_quiescence(
        self,
        feed,
        *,
        max_rounds: int = 10_000,
        scheduler: "Scheduler | None" = None,
    ) -> Instance:
        """Run epoch-by-epoch under a :class:`~repro.streaming.DeltaFeed`.

        Each epoch runs to quiescence, its output is recorded in
        ``epoch_outputs``, and the next batch is ingested; the final
        output is also the last entry of ``epoch_outputs``.  The recorded
        trajectory is what the live delta-preservation oracle checks
        (``repro.conformance.streaming``).
        """
        scheduler = scheduler or FairScheduler()
        self.run_to_quiescence(max_rounds=max_rounds, scheduler=scheduler)
        self.epoch_outputs = [self.global_output()]
        for batch in feed.batches:
            self.ingest(batch.facts)
            self.run_to_quiescence(max_rounds=max_rounds, scheduler=scheduler)
            self.epoch_outputs.append(self.global_output())
        return self.global_output()

    def _flush_channel(self) -> bool:
        """Force every in-flight fact into its target buffer; True when any
        fact moved (the quiescence decision must then be re-examined)."""
        moved = False
        for node in self._buffers:
            released = self._channel.flush(node)
            if released:
                self._buffers[node].update(released)
                self._note_buffer(node)
                moved = True
        return moved

    def _novel_pending(self) -> bool:
        return any(
            set(self._buffers[node]) - self._delivered_ever[node]
            for node in self._buffers
        )


class Scheduler:
    """Chooses node activation orders for rounds; subclasses add policy.

    ``pre_round`` runs before each fair round inside
    :meth:`Run.run_to_quiescence` and may perform extra adversarial
    transitions (partial deliveries, heartbeats, starvation bursts).  The
    runtime accounts those separately as
    ``RunMetrics.pre_round_transitions``, so round-based metrics stay
    comparable across schedulers.  The fair round that always follows keeps
    every schedule fair regardless of what ``pre_round`` does.
    """

    name = "roundrobin"

    def order(self, run: Run) -> list[Hashable]:
        return run.nodes()

    def pre_round(self, run: Run) -> None:
        """Adversarial transitions before the fair round (default: none)."""


class FairScheduler(Scheduler):
    """A seeded random permutation per round — fair because every node runs
    once per round and every buffered message is delivered when its node
    activates."""

    name = "fair"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        return nodes


class TrickleScheduler(Scheduler):
    """An adversarial-ish scheduler: before each round, every node performs
    extra transitions that deliver roughly half of its buffered messages one
    at a time in random order, maximizing interleavings (used to probe
    confluence of the protocols).

    The prefix is ``ceil(len/2)`` — an earlier version used ``len // 2``,
    which delivers *nothing* when exactly one message is buffered, so
    singleton buffers never trickled and the scheduler degenerated to
    :class:`FairScheduler` on sparse traffic.
    """

    name = "trickle"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pre_round(self, run: Run) -> None:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        for node in nodes:
            pending = list(run.buffer(node).elements())
            self._rng.shuffle(pending)
            for message in pending[: (len(pending) + 1) // 2]:
                run.transition(node, deliver=[message])

    def order(self, run: Run) -> list[Hashable]:
        nodes = run.nodes()
        self._rng.shuffle(nodes)
        return nodes
