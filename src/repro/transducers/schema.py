"""Transducer schemas and model variants (Sections 4.1.2 and 4.3).

A policy-aware transducer schema is a tuple
``(in, out, msg, mem, sys)`` of disjoint database schemas where the system
schema is fixed by the model:

* ``Id/1`` — the active node's identifier;
* ``All/1`` — all node identifiers (absent in the no-All variants A1/A2);
* ``MyAdom/1`` — the active domain known at the node;
* ``policy_R/k`` — for each input relation R/k, the facts over the known
  active domain the node is responsible for.

The *original* model of [13] has only ``Id`` and ``All``; *oblivious*
transducers have neither.  :class:`ModelVariant` captures which system
relations a transducer may see.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.schema import Schema, SchemaError

__all__ = [
    "ModelVariant",
    "ORIGINAL",
    "POLICY_AWARE",
    "POLICY_AWARE_NO_ALL",
    "OBLIVIOUS",
    "TransducerSchema",
    "policy_relation_name",
    "ID_RELATION",
    "ALL_RELATION",
    "MYADOM_RELATION",
]

ID_RELATION = "Id"
ALL_RELATION = "All"
MYADOM_RELATION = "MyAdom"
POLICY_PREFIX = "policy_"


def policy_relation_name(relation: str) -> str:
    """The system relation exposing the policy for input relation *relation*
    (the paper writes ``policy_R``; previously called ``local_R`` in [32])."""
    return POLICY_PREFIX + relation


@dataclass(frozen=True)
class ModelVariant:
    """Which system relations the transducer model exposes.

    ``has_policy`` covers both ``MyAdom`` and the ``policy_R`` relations —
    the extension of [32] over the original model of [13].
    """

    name: str
    has_id: bool = True
    has_all: bool = True
    has_policy: bool = True

    def __repr__(self) -> str:
        return f"<model {self.name}>"


#: The original transducer model of [13]: Id and All, no policy relations.
ORIGINAL = ModelVariant("original", has_policy=False)

#: The policy-aware model of [32] / Section 4.1.2.
POLICY_AWARE = ModelVariant("policy-aware")

#: The Section 4.3 variant without All (classes A1 / A2).
POLICY_AWARE_NO_ALL = ModelVariant("policy-aware-no-all", has_all=False)

#: Oblivious transducers: neither Id nor All (Corollary 4.6).
OBLIVIOUS = ModelVariant("oblivious", has_id=False, has_all=False, has_policy=False)


@dataclass(frozen=True)
class TransducerSchema:
    """The five-part schema Upsilon = (in, out, msg, mem, sys).

    The system part is derived from the input schema and the model variant;
    construction checks the four explicit parts are pairwise disjoint and
    none collides with a system relation name.
    """

    inputs: Schema
    outputs: Schema
    messages: Schema
    memory: Schema
    variant: ModelVariant = POLICY_AWARE

    def __post_init__(self) -> None:
        parts = {
            "input": self.inputs,
            "output": self.outputs,
            "message": self.messages,
            "memory": self.memory,
        }
        names: dict[str, str] = {}
        for part_name, schema in parts.items():
            for relation in schema:
                if relation in names:
                    raise SchemaError(
                        f"relation {relation} appears in both the "
                        f"{names[relation]} and {part_name} schemas"
                    )
                names[relation] = part_name
        reserved = set(self.system_schema())
        clash = reserved & set(names)
        if clash:
            raise SchemaError(
                f"relation(s) {sorted(clash)} collide with system relations"
            )

    def system_schema(self) -> Schema:
        """The system schema Upsilon_sys implied by the variant."""
        relations: dict[str, int] = {MYADOM_RELATION: 1}
        if self.variant.has_id:
            relations[ID_RELATION] = 1
        if self.variant.has_all:
            relations[ALL_RELATION] = 1
        if self.variant.has_policy:
            for relation in self.inputs:
                relations[policy_relation_name(relation)] = self.inputs.arity(relation)
        else:
            # MyAdom is part of the [32] extension; the original model
            # exposes only Id / All.
            del relations[MYADOM_RELATION]
        return Schema(relations, allow_nullary=True)

    def full_schema(self) -> Schema:
        """Everything the transducer queries may read."""
        return (
            self.inputs
            | self.outputs
            | self.messages
            | self.memory
            | self.system_schema()
        )

    def with_variant(self, variant: ModelVariant) -> "TransducerSchema":
        return TransducerSchema(
            inputs=self.inputs,
            outputs=self.outputs,
            messages=self.messages,
            memory=self.memory,
            variant=variant,
        )
