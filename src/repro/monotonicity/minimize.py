"""Counterexample minimization: shrink a monotonicity violation (I, J) to a
locally minimal one while preserving its addition kind.

The Theorem 3.1 witnesses are hand-crafted minimal pairs;
:func:`minimize_violation` produces comparable pairs automatically from any
violation the random searches find, which makes failures readable and feeds
the witness-size observations in EXPERIMENTS.md (e.g. the bounded classes
are separated at exactly the sizes the paper claims).

Shrinking is greedy single-fact removal to a fixed point:

* dropping a fact from J keeps J of its kind (fewer facts, same base), so
  only the violation needs rechecking;
* dropping a fact from I can only shrink adom(I), so J stays domain
  distinct / disjoint; again only the violation needs rechecking.

The result is locally minimal: removing any single remaining fact destroys
the violation.
"""

from __future__ import annotations

from ..datalog.instance import Instance
from ..queries.base import Query
from .classes import AdditionKind, MonotonicityViolation, addition_matches, violation_on

__all__ = ["minimize_violation", "is_locally_minimal"]


def _shrink_side(
    query: Query,
    base: Instance,
    addition: Instance,
    *,
    shrink_addition: bool,
) -> tuple[Instance, Instance, bool]:
    """Try to drop one fact from one side; returns (base, addition, changed)."""
    side = addition if shrink_addition else base
    for fact in side.sorted_facts():
        smaller = side - Instance([fact])
        if shrink_addition:
            if not smaller:
                continue  # an empty J can never violate
            candidate = (base, smaller)
        else:
            candidate = (smaller, addition)
        if violation_on(query, *candidate) is not None:
            return candidate[0], candidate[1], True
    return base, addition, False


def minimize_violation(
    query: Query,
    violation: MonotonicityViolation,
    *,
    kind: AdditionKind = AdditionKind.ANY,
) -> MonotonicityViolation:
    """Greedily shrink both sides of a violation to a local minimum.

    The input pair must be admissible for *kind*; the result is guaranteed
    admissible too (removal never breaks domain-distinctness/disjointness)
    and still violating.
    """
    base, addition = violation.base, violation.addition
    if not addition_matches(kind, base, addition):
        raise ValueError("the violation's addition is not of the stated kind")
    changed = True
    while changed:
        base, addition, changed_addition = _shrink_side(
            query, base, addition, shrink_addition=True
        )
        base, addition, changed_base = _shrink_side(
            query, base, addition, shrink_addition=False
        )
        changed = changed_addition or changed_base
    result = violation_on(query, base, addition)
    assert result is not None, "minimization lost the violation"
    assert addition_matches(kind, base, addition), "minimization broke the kind"
    return result


def is_locally_minimal(query: Query, violation: MonotonicityViolation) -> bool:
    """True when removing any single fact from I or J kills the violation."""
    base, addition = violation.base, violation.addition
    for fact in addition.sorted_facts():
        smaller = addition - Instance([fact])
        if smaller and violation_on(query, base, smaller) is not None:
            return False
    for fact in base.sorted_facts():
        if violation_on(query, base - Instance([fact]), addition) is not None:
            return False
    return True
