"""The explicit separating witnesses from the proof of Theorem 3.1.

Each :class:`SeparationWitness` packages a query Q, a base instance I, an
addition J, and the claim being refuted: "Q is (kind, bound)-monotone".
``verify()`` checks that J is admissible for the claim (right kind, within
the bound) and that Q(I) ⊄ Q(I ∪ J) — i.e. that the witness genuinely
refutes the claim, exactly as in the paper's proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.instance import Instance
from ..datalog.terms import Fact
from ..queries.base import Query
from ..queries.graph import (
    clique_query,
    complement_tc_query,
    star_query,
    triangle_unless_two_disjoint_query,
)
from ..queries.relational import duplicate_query, duplicate_relation_names
from .classes import AdditionKind, addition_matches, violation_on

__all__ = [
    "SeparationWitness",
    "witness_cotc_not_distinct",
    "witness_triangles_not_disjoint",
    "witness_clique_bounded_distinct",
    "witness_star_bounded_disjoint",
    "witness_clique_distinct_vs_disjoint",
    "witness_star_disjoint_not_distinct",
    "witness_duplicate_not_disjoint",
    "theorem31_witnesses",
]


@dataclass(frozen=True)
class SeparationWitness:
    """A refutation of "query is (kind, bound)-monotone" by a pair (I, J)."""

    name: str
    query: Query
    base: Instance
    addition: Instance
    kind: AdditionKind
    bound: int | None = None

    def admissible(self) -> bool:
        """J is of the right kind and within the size bound."""
        return addition_matches(self.kind, self.base, self.addition, self.bound)

    def refutes(self) -> bool:
        """Q(I) ⊄ Q(I ∪ J)."""
        return violation_on(self.query, self.base, self.addition) is not None

    def verify(self) -> bool:
        """The witness is both admissible and refuting."""
        return self.admissible() and self.refutes()

    def describe(self) -> str:
        scope = self.kind.value + (f", |J| <= {self.bound}" if self.bound else "")
        status = "refutes" if self.verify() else "FAILS TO REFUTE"
        return f"{self.name}: ({scope}) {status} with |I|={len(self.base)}, |J|={len(self.addition)}"


def _edges(*pairs: tuple) -> Instance:
    return Instance(Fact("E", pair) for pair in pairs)


def witness_cotc_not_distinct() -> SeparationWitness:
    """Theorem 3.1(1): Q_TC ∉ Mdistinct.

    I has no path a -> b, so O(a, b) is output; the domain-distinct addition
    {E(a,c), E(c,b)} creates the path through the new vertex c.
    """
    return SeparationWitness(
        name="coTC ∉ Mdistinct",
        query=complement_tc_query(),
        base=_edges(("a", "a"), ("b", "b")),
        addition=_edges(("a", "c"), ("c", "b")),
        kind=AdditionKind.DOMAIN_DISTINCT,
    )


def witness_triangles_not_disjoint() -> SeparationWitness:
    """Theorem 3.1(1): the triangles-unless-two-disjoint query ∉ Mdisjoint.

    I is one triangle (output nonempty); J is a second, domain-disjoint
    triangle, after which two disjoint triangles exist and the output empties.
    """
    return SeparationWitness(
        name="triangles-unless-2-disjoint ∉ Mdisjoint",
        query=triangle_unless_two_disjoint_query(),
        base=_edges(("a", "b"), ("b", "c"), ("c", "a")),
        addition=_edges(("d", "e"), ("e", "f"), ("f", "d")),
        kind=AdditionKind.DOMAIN_DISJOINT,
    )


def witness_clique_bounded_distinct(i: int) -> SeparationWitness:
    """Theorem 3.1(3): Q^{i+2}_clique ∉ M^{i+1}_distinct.

    I is an (i+1)-clique; J is a star of i+1 edges from one new centre to
    the old clique vertices, completing an (i+2)-clique.
    """
    if i < 1:
        raise ValueError("i must be at least 1")
    vertices = [f"v{n}" for n in range(i + 1)]
    base = Instance(
        Fact("E", (a, b)) for a in vertices for b in vertices if a < b
    )
    addition = Instance(Fact("E", ("w_new", v)) for v in vertices)
    return SeparationWitness(
        name=f"clique[{i + 2}] ∉ M^{i + 1}_distinct",
        query=clique_query(i + 2),
        base=base,
        addition=addition,
        kind=AdditionKind.DOMAIN_DISTINCT,
        bound=i + 1,
    )


def witness_star_bounded_disjoint(i: int) -> SeparationWitness:
    """Theorem 3.1(4): Q^{i+1}_star ∉ M^{i+1}_disjoint.

    I is a single edge (no (i+1)-spoke star for i >= 1); J is a fresh star
    with i+1 spokes, built from i+1 domain-disjoint edges.
    """
    if i < 1:
        raise ValueError("i must be at least 1")
    base = _edges(("a", "b"))
    addition = Instance(Fact("E", ("hub", f"t{n}")) for n in range(i + 1))
    return SeparationWitness(
        name=f"star[{i + 1}] ∉ M^{i + 1}_disjoint",
        query=star_query(i + 1),
        base=base,
        addition=addition,
        kind=AdditionKind.DOMAIN_DISJOINT,
        bound=i + 1,
    )


def witness_clique_distinct_vs_disjoint(i: int) -> SeparationWitness:
    """Theorem 3.1(5): Q^{i+1}_clique ∉ M^i_distinct.

    I is an i-clique; J attaches one new vertex to all of it with i
    domain-distinct edges, completing an (i+1)-clique.
    """
    if i < 1:
        raise ValueError("i must be at least 1")
    if i == 1:
        base = _edges(("v0", "v0"))  # one vertex present, no 2-clique
        addition = _edges(("v0", "w_new"))
    else:
        vertices = [f"v{n}" for n in range(i)]
        base = Instance(Fact("E", (a, b)) for a in vertices for b in vertices if a < b)
        addition = Instance(Fact("E", ("w_new", v)) for v in vertices)
    return SeparationWitness(
        name=f"clique[{i + 1}] ∉ M^{i}_distinct",
        query=clique_query(i + 1),
        base=base,
        addition=addition,
        kind=AdditionKind.DOMAIN_DISTINCT,
        bound=i,
    )


def witness_star_disjoint_not_distinct(j: int, i: int) -> SeparationWitness:
    """Theorem 3.1(6): Q^{j+1}_star ∉ M^i_distinct (any i >= 1).

    I is a star with j spokes; a single domain-distinct edge from the old
    centre to a new value raises the spoke count to j+1.
    """
    if j < 1 or i < 1:
        raise ValueError("j and i must be at least 1")
    base = Instance(Fact("E", ("hub", f"t{n}")) for n in range(j))
    addition = _edges(("hub", "t_new"))
    return SeparationWitness(
        name=f"star[{j + 1}] ∉ M^{i}_distinct",
        query=star_query(j + 1),
        base=base,
        addition=addition,
        kind=AdditionKind.DOMAIN_DISTINCT,
        bound=i,
    )


def witness_duplicate_not_disjoint(j: int) -> SeparationWitness:
    """Theorem 3.1(7): Q^j_duplicate ∉ M^j_disjoint.

    I holds a single R1 tuple (global intersection empty, R1 is output);
    J replicates one fresh tuple across all j relations with j
    domain-disjoint facts, making the intersection nonempty.
    """
    if j < 2:
        raise ValueError("j must be at least 2")
    base = Instance([Fact("R1", ("a", "b"))])
    addition = Instance(
        Fact(name, ("c", "d")) for name in duplicate_relation_names(j)
    )
    return SeparationWitness(
        name=f"duplicate[{j}] ∉ M^{j}_disjoint",
        query=duplicate_query(j),
        base=base,
        addition=addition,
        kind=AdditionKind.DOMAIN_DISJOINT,
        bound=j,
    )


def theorem31_witnesses(*, max_i: int = 3) -> list[SeparationWitness]:
    """All named witnesses for Theorem 3.1, with bounded indices up to max_i."""
    witnesses: list[SeparationWitness] = [
        witness_cotc_not_distinct(),
        witness_triangles_not_disjoint(),
    ]
    for i in range(1, max_i + 1):
        witnesses.append(witness_clique_bounded_distinct(i))
        witnesses.append(witness_star_bounded_disjoint(i))
        witnesses.append(witness_clique_distinct_vs_disjoint(i))
        witnesses.append(witness_star_disjoint_not_distinct(i + 1, i))
    for j in range(2, max_i + 2):
        witnesses.append(witness_duplicate_not_disjoint(j))
    return witnesses
