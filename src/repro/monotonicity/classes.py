"""The monotonicity classes of Definition 1 (Section 3.1).

A query Q is

* **monotone** (class M) when Q(I) ⊆ Q(I ∪ J) for all I, J;
* **domain-distinct-monotone** (Mdistinct) when the condition holds for all
  J that are *domain distinct* from I (every fact of J contains at least one
  value outside adom(I));
* **domain-disjoint-monotone** (Mdisjoint) when the condition holds for all
  J that are *domain disjoint* from I (no fact of J shares a value with
  adom(I)).

The bounded variants M^i, M^i_distinct, M^i_disjoint additionally restrict
|J| <= i.  By definition M ⊆ Mdistinct ⊆ Mdisjoint and the bounded classes
relax with growing i inside each family.

Membership in these classes is undecidable for black-box queries, so this
module provides the *pointwise* conditions; :mod:`repro.monotonicity.checker`
turns them into counterexample searches over instance families.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from ..datalog.instance import Instance
from ..datalog.terms import Fact
from ..queries.base import Query

__all__ = [
    "AdditionKind",
    "MonotonicityClass",
    "fact_is_domain_distinct",
    "fact_is_domain_disjoint",
    "is_domain_distinct",
    "is_domain_disjoint",
    "addition_matches",
    "monotone_on",
    "MonotonicityViolation",
    "violation_on",
]


class AdditionKind(Enum):
    """Which additions J the monotonicity condition quantifies over."""

    ANY = "any"
    DOMAIN_DISTINCT = "domain-distinct"
    DOMAIN_DISJOINT = "domain-disjoint"

    def admits(self, base: Instance, addition: Instance) -> bool:
        """True when *addition* is of this kind with respect to *base*."""
        if self is AdditionKind.ANY:
            return True
        if self is AdditionKind.DOMAIN_DISTINCT:
            return addition.is_domain_distinct_from(base)
        return addition.is_domain_disjoint_from(base)


class MonotonicityClass(Enum):
    """The unbounded classes of Figure 1, ordered by inclusion."""

    M = "M"
    MDISTINCT = "Mdistinct"
    MDISJOINT = "Mdisjoint"
    C = "C"  # all computable queries; every query trivially "belongs"

    @property
    def addition_kind(self) -> AdditionKind | None:
        """The addition kind whose monotonicity condition defines the class
        (None for C, which imposes no condition)."""
        return {
            MonotonicityClass.M: AdditionKind.ANY,
            MonotonicityClass.MDISTINCT: AdditionKind.DOMAIN_DISTINCT,
            MonotonicityClass.MDISJOINT: AdditionKind.DOMAIN_DISJOINT,
            MonotonicityClass.C: None,
        }[self]

    def __le__(self, other: "MonotonicityClass") -> bool:
        """Class inclusion: M ⊆ Mdistinct ⊆ Mdisjoint ⊆ C."""
        order = [
            MonotonicityClass.M,
            MonotonicityClass.MDISTINCT,
            MonotonicityClass.MDISJOINT,
            MonotonicityClass.C,
        ]
        return order.index(self) <= order.index(other)


def fact_is_domain_distinct(fact: Fact, base: Instance) -> bool:
    """Section 3.1: f is domain distinct from I when adom(f) \\ adom(I) != ∅."""
    return base.fact_is_domain_distinct(fact)


def fact_is_domain_disjoint(fact: Fact, base: Instance) -> bool:
    """Section 3.1: f is domain disjoint from I when adom(f) ∩ adom(I) = ∅."""
    return base.fact_is_domain_disjoint(fact)


def is_domain_distinct(addition: Instance, base: Instance) -> bool:
    """J is domain distinct from I when every fact of J is."""
    return addition.is_domain_distinct_from(base)


def is_domain_disjoint(addition: Instance, base: Instance) -> bool:
    """J is domain disjoint from I when every fact of J is."""
    return addition.is_domain_disjoint_from(base)


def addition_matches(
    kind: AdditionKind, base: Instance, addition: Instance, bound: int | None = None
) -> bool:
    """True when (I=base, J=addition) is a pair the class quantifies over."""
    if bound is not None and len(addition) > bound:
        return False
    return kind.admits(base, addition)


def monotone_on(query: Query, base: Instance, addition: Instance) -> bool:
    """The pointwise condition: Q(I) ⊆ Q(I ∪ J)."""
    return query(base) <= query(base | addition)


@dataclass(frozen=True)
class MonotonicityViolation:
    """A concrete counterexample: a fact lost when J is added to I."""

    base: Instance
    addition: Instance
    lost_facts: Instance

    def __post_init__(self) -> None:
        if not self.lost_facts:
            raise ValueError("a violation must lose at least one output fact")

    def describe(self) -> str:
        lost = ", ".join(repr(f) for f in self.lost_facts.sorted_facts())
        return (
            f"adding J={self.addition!r} to I={self.base!r} "
            f"retracts output fact(s): {lost}"
        )


def violation_on(
    query: Query, base: Instance, addition: Instance
) -> MonotonicityViolation | None:
    """The violation witnessed by (I, J), or None when Q(I) ⊆ Q(I ∪ J)."""
    before = query(base)
    after = query(base | addition)
    lost = before - after
    if not lost:
        return None
    return MonotonicityViolation(base=base, addition=addition, lost_facts=lost)
