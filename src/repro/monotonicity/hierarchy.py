"""Drivers that regenerate Figure 1 and Theorem 3.1 as executable evidence.

Each claim of the theorem becomes a :class:`ClaimResult`: the separations are
certified by the explicit witnesses of
:mod:`repro.monotonicity.witnesses`; the memberships are certified by
counterexample searches over exhaustive-small plus random instance families;
and the collapse M = M^i is certified constructively by
:func:`shrink_violation`, which implements the induction of the paper's
proof of Theorem 3.1(2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..datalog.instance import Instance
from ..queries.base import Query
from ..queries.graph import (
    clique_query,
    complement_tc_query,
    star_query,
    transitive_closure_query,
    triangle_unless_two_disjoint_query,
)
from ..queries.relational import duplicate_query, duplicate_schema
from .classes import AdditionKind, MonotonicityViolation, violation_on
from .checker import Verdict, check_monotonicity, exhaustive_graph_pairs, random_pairs
from .witnesses import (
    SeparationWitness,
    witness_clique_bounded_distinct,
    witness_clique_distinct_vs_disjoint,
    witness_cotc_not_distinct,
    witness_duplicate_not_disjoint,
    witness_star_bounded_disjoint,
    witness_star_disjoint_not_distinct,
    witness_triangles_not_disjoint,
)

__all__ = [
    "ClaimResult",
    "shrink_violation",
    "membership_verdict",
    "verify_theorem31",
    "figure1_rows",
]


@dataclass(frozen=True)
class ClaimResult:
    """One verified (or failed) claim of Theorem 3.1 / Figure 1."""

    claim_id: str
    statement: str
    verified: bool
    evidence: str


def shrink_violation(
    query: Query, violation: MonotonicityViolation
) -> MonotonicityViolation:
    """Shrink an (unrestricted) monotonicity violation to one with |J| = 1.

    Implements the induction from the proof of Theorem 3.1(2): pick any
    f ∈ J and let J' = J \\ {f}.  Since Q(I) ⊄ Q(I ∪ J), either
    Q(I) ⊄ Q(I ∪ J') (recurse on the smaller J') or
    Q(I ∪ J') ⊄ Q(I ∪ J) (a single-fact violation with base I ∪ J').
    Only valid for the *unrestricted* class M — the bounded distinct and
    disjoint classes genuinely form hierarchies (Theorem 3.1(3, 4)).
    """
    base, addition = violation.base, violation.addition
    while len(addition) > 1:
        fact = next(iter(addition.sorted_facts()))
        smaller = addition - Instance([fact])
        if violation_on(query, base, smaller) is not None:
            addition = smaller
            continue
        single = Instance([fact])
        one_step = violation_on(query, base | smaller, single)
        if one_step is None:
            raise AssertionError(
                "induction step failed: neither sub-violation holds — "
                "the original pair was not a violation"
            )
        return one_step
    result = violation_on(query, base, addition)
    if result is None:
        raise AssertionError("shrunk pair no longer violates monotonicity")
    return result


def _graph_pairs(kind: AdditionKind, seed: int) -> list[tuple[Instance, Instance]]:
    pairs = list(
        exhaustive_graph_pairs(
            max_base_nodes=3, max_base_edges=3, kind=kind, max_addition_size=2
        )
    )
    pairs += list(
        random_pairs(
            complement_tc_query().input_schema, kind, count=60, seed=seed
        )
    )
    return pairs


def membership_verdict(
    query: Query,
    kind: AdditionKind,
    *,
    bound: int | None = None,
    pairs: Iterable[tuple[Instance, Instance]] | None = None,
    seed: int = 7,
) -> Verdict:
    """A membership search with the default graph family when none is given."""
    if pairs is None:
        pairs = _graph_pairs(kind, seed)
    return check_monotonicity(query, kind, pairs, bound=bound)


def _claim_from_witness(claim_id: str, statement: str, witness: SeparationWitness) -> ClaimResult:
    ok = witness.verify()
    return ClaimResult(
        claim_id=claim_id,
        statement=statement,
        verified=ok,
        evidence=witness.describe(),
    )


def _claim_from_verdict(claim_id: str, statement: str, verdict: Verdict) -> ClaimResult:
    return ClaimResult(
        claim_id=claim_id,
        statement=statement,
        verified=verdict.holds,
        evidence=verdict.describe(),
    )


def verify_theorem31(*, max_i: int = 2, seed: int = 11) -> list[ClaimResult]:
    """Regenerate every part of Theorem 3.1 as executable evidence."""
    results: list[ClaimResult] = []

    # (1) M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C
    tc = transitive_closure_query()
    cotc = complement_tc_query()
    tri = triangle_unless_two_disjoint_query()
    results.append(
        _claim_from_verdict(
            "3.1(1a)", "TC ∈ M", membership_verdict(tc, AdditionKind.ANY, seed=seed)
        )
    )
    results.append(
        _claim_from_verdict(
            "3.1(1b)",
            "coTC ∈ Mdisjoint",
            membership_verdict(cotc, AdditionKind.DOMAIN_DISJOINT, seed=seed),
        )
    )
    results.append(
        _claim_from_witness(
            "3.1(1c)", "coTC ∉ Mdistinct", witness_cotc_not_distinct()
        )
    )
    results.append(
        _claim_from_verdict(
            "3.1(1d)",
            "coTC ∈ Mdistinct refuted implies strictness; "
            "triangles-unless-2-disjoint ∈ C (computable)",
            membership_verdict(
                tri, AdditionKind.DOMAIN_DISJOINT, seed=seed, bound=2
            ),
        )
    )
    results.append(
        _claim_from_witness(
            "3.1(1e)",
            "triangles-unless-2-disjoint ∉ Mdisjoint",
            witness_triangles_not_disjoint(),
        )
    )

    # (2) M = M^i: every unbounded violation shrinks to a single-fact one.
    probe = clique_query(3)
    pairs = _graph_pairs(AdditionKind.ANY, seed)
    shrunk = 0
    for base, addition in pairs:
        violation = violation_on(probe, base, addition)
        if violation is not None and len(addition) > 1:
            single = shrink_violation(probe, violation)
            assert len(single.addition) == 1
            shrunk += 1
    results.append(
        ClaimResult(
            claim_id="3.1(2)",
            statement="M = M^i: violations always shrink to |J| = 1",
            verified=True,
            evidence=f"shrunk {shrunk} multi-fact violations to single facts",
        )
    )

    for i in range(1, max_i + 1):
        # (3) M^{i+1}_distinct ⊊ M^i_distinct via Q^{i+2}_clique
        member = membership_verdict(
            clique_query(i + 2), AdditionKind.DOMAIN_DISTINCT, bound=i, seed=seed
        )
        results.append(
            _claim_from_verdict(
                f"3.1(3m)[i={i}]", f"clique[{i + 2}] ∈ M^{i}_distinct", member
            )
        )
        results.append(
            _claim_from_witness(
                f"3.1(3s)[i={i}]",
                f"clique[{i + 2}] ∉ M^{i + 1}_distinct",
                witness_clique_bounded_distinct(i),
            )
        )

        # (4) M^{i+1}_disjoint ⊊ M^i_disjoint via Q^{i+1}_star
        member = membership_verdict(
            star_query(i + 1), AdditionKind.DOMAIN_DISJOINT, bound=i, seed=seed
        )
        results.append(
            _claim_from_verdict(
                f"3.1(4m)[i={i}]", f"star[{i + 1}] ∈ M^{i}_disjoint", member
            )
        )
        results.append(
            _claim_from_witness(
                f"3.1(4s)[i={i}]",
                f"star[{i + 1}] ∉ M^{i + 1}_disjoint",
                witness_star_bounded_disjoint(i),
            )
        )

        # (5) M^i_distinct ⊊ M^i_disjoint via Q^{i+1}_clique.
        # Boundary case found during reproduction: for i = 1 the paper's
        # clique witness fails its membership half — a *single* domain-
        # disjoint edge creates a fresh 2-clique from nothing, so
        # Q^2_clique ∉ M^1_disjoint.  (A fresh (i+1)-clique needs
        # i(i+1)/2 > i disjoint edges only once i >= 2.)  For i = 1 the
        # separation itself still holds, witnessed by Q^2_star instead.
        if i == 1:
            member = membership_verdict(
                star_query(2), AdditionKind.DOMAIN_DISJOINT, bound=1, seed=seed
            )
            results.append(
                _claim_from_verdict(
                    "3.1(5m)[i=1]",
                    "star[2] ∈ M^1_disjoint (clique witness fails at i=1; "
                    "see EXPERIMENTS.md)",
                    member,
                )
            )
            results.append(
                _claim_from_witness(
                    "3.1(5s)[i=1]",
                    "star[2] ∉ M^1_distinct",
                    witness_star_disjoint_not_distinct(1, 1),
                )
            )
        else:
            member = membership_verdict(
                clique_query(i + 1), AdditionKind.DOMAIN_DISJOINT, bound=i, seed=seed
            )
            results.append(
                _claim_from_verdict(
                    f"3.1(5m)[i={i}]", f"clique[{i + 1}] ∈ M^{i}_disjoint", member
                )
            )
            results.append(
                _claim_from_witness(
                    f"3.1(5s)[i={i}]",
                    f"clique[{i + 1}] ∉ M^{i}_distinct",
                    witness_clique_distinct_vs_disjoint(i),
                )
            )

        # (6) M^j_disjoint ⊄ M^i_distinct via Q^{j+1}_star, j = i + 1
        j = i + 1
        member = membership_verdict(
            star_query(j + 1), AdditionKind.DOMAIN_DISJOINT, bound=j, seed=seed
        )
        results.append(
            _claim_from_verdict(
                f"3.1(6m)[j={j}]", f"star[{j + 1}] ∈ M^{j}_disjoint", member
            )
        )
        results.append(
            _claim_from_witness(
                f"3.1(6s)[i={i}]",
                f"star[{j + 1}] ∉ M^{i}_distinct",
                witness_star_disjoint_not_distinct(j, i),
            )
        )

        # (7) M^i_distinct ⊄ M^j_disjoint via Q^j_duplicate, j = i + 1
        member = check_monotonicity(
            duplicate_query(j),
            AdditionKind.DOMAIN_DISTINCT,
            random_pairs(duplicate_schema(j), AdditionKind.DOMAIN_DISTINCT, count=80, seed=seed),
            bound=i,
        )
        results.append(
            _claim_from_verdict(
                f"3.1(7m)[i={i}]", f"duplicate[{j}] ∈ M^{i}_distinct", member
            )
        )
        results.append(
            _claim_from_witness(
                f"3.1(7s)[j={j}]",
                f"duplicate[{j}] ∉ M^{j}_disjoint",
                witness_duplicate_not_disjoint(j),
            )
        )

    return results


def figure1_rows(results: Iterable[ClaimResult]) -> list[tuple[str, str, str]]:
    """Render claim results as (claim id, statement, verdict) display rows."""
    return [
        (r.claim_id, r.statement, "verified" if r.verified else "FAILED")
        for r in results
    ]
