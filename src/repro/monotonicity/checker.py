"""Empirical membership checking for the monotonicity classes.

Deciding membership in M / Mdistinct / Mdisjoint is undecidable, so the
checker mirrors what the paper's proofs do: *non*-membership is certified by
an explicit counterexample pair (I, J); membership is asserted relative to a
searched family of pairs.  Built-in pair families cover

* exhaustive enumeration of small directed graphs with small additions
  (complete up to a size budget), and
* seeded random instances over arbitrary schemas with random additions of
  the requested kind (domain-distinct / domain-disjoint by construction).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..datalog.instance import Instance
from ..datalog.schema import Schema
from ..datalog.terms import Fact
from ..queries.base import Query
from ..queries.generators import (
    random_domain_disjoint_addition,
    random_domain_distinct_addition,
    random_instance,
)
from .classes import (
    AdditionKind,
    MonotonicityClass,
    MonotonicityViolation,
    addition_matches,
    violation_on,
)

__all__ = [
    "Verdict",
    "check_monotonicity",
    "classify_query",
    "exhaustive_graph_pairs",
    "random_pairs",
    "graph_additions",
]


@dataclass(frozen=True)
class Verdict:
    """The outcome of a counterexample search.

    ``holds`` is True when no counterexample was found among
    ``pairs_checked`` candidate pairs; otherwise ``violation`` carries the
    witness.  A True verdict is evidence relative to the searched family,
    exactly like the paper's positive claims are proofs over all pairs.
    """

    query_name: str
    kind: AdditionKind
    bound: int | None
    holds: bool
    pairs_checked: int
    violation: MonotonicityViolation | None = None

    def describe(self) -> str:
        scope = self.kind.value + (f", |J| <= {self.bound}" if self.bound else "")
        if self.holds:
            return (
                f"{self.query_name}: no violation ({scope}) in "
                f"{self.pairs_checked} pairs"
            )
        assert self.violation is not None
        return f"{self.query_name}: VIOLATION ({scope}) — {self.violation.describe()}"


def check_monotonicity(
    query: Query,
    kind: AdditionKind,
    pairs: Iterable[tuple[Instance, Instance]],
    *,
    bound: int | None = None,
    max_pairs: int | None = None,
) -> Verdict:
    """Search *pairs* for a counterexample to the (bounded) condition.

    Pairs not matching *kind* / *bound* are skipped (they do not count
    towards ``pairs_checked``), so generic pair sources can be reused for
    every class.
    """
    checked = 0
    for base, addition in pairs:
        if max_pairs is not None and checked >= max_pairs:
            break
        if not addition_matches(kind, base, addition, bound):
            continue
        checked += 1
        violation = violation_on(query, base, addition)
        if violation is not None:
            return Verdict(
                query_name=query.name,
                kind=kind,
                bound=bound,
                holds=False,
                pairs_checked=checked,
                violation=violation,
            )
    return Verdict(
        query_name=query.name, kind=kind, bound=bound, holds=True, pairs_checked=checked
    )


def classify_query(
    query: Query,
    pairs: Sequence[tuple[Instance, Instance]],
    *,
    max_pairs: int | None = None,
) -> MonotonicityClass:
    """The weakest (smallest) class of Figure 1 consistent with *pairs*.

    Checks M, then Mdistinct, then Mdisjoint; a query violating all three
    conditions is classified as C.
    """
    for klass in (
        MonotonicityClass.M,
        MonotonicityClass.MDISTINCT,
        MonotonicityClass.MDISJOINT,
    ):
        kind = klass.addition_kind
        assert kind is not None
        verdict = check_monotonicity(query, kind, pairs, max_pairs=max_pairs)
        if verdict.holds:
            return klass
    return MonotonicityClass.C


# ----------------------------------------------------------------------
# Pair families
# ----------------------------------------------------------------------


def _all_graphs(nodes: Sequence, max_edges: int | None = None) -> Iterator[Instance]:
    """Every directed graph over the given node names (as E-instances),
    optionally capped at *max_edges* edges."""
    pairs = [(a, b) for a in nodes for b in nodes]
    limit = len(pairs) if max_edges is None else min(max_edges, len(pairs))
    for count in range(limit + 1):
        for chosen in itertools.combinations(pairs, count):
            yield Instance(Fact("E", pair) for pair in chosen)


def graph_additions(
    base: Instance, kind: AdditionKind, *, new_values: int = 2, max_size: int = 2
) -> Iterator[Instance]:
    """All E-additions of size <= *max_size* of the requested kind, built
    from adom(base) plus *new_values* fresh values."""
    old = sorted(base.adom(), key=repr)
    fresh = [f"f{i}" for i in range(new_values)]
    values = old + fresh if kind is AdditionKind.ANY else (
        old + fresh if kind is AdditionKind.DOMAIN_DISTINCT else fresh
    )
    candidate_facts = [
        Fact("E", (a, b))
        for a in values
        for b in values
        if addition_matches(kind, base, Instance([Fact("E", (a, b))]))
    ]
    for count in range(1, max_size + 1):
        for chosen in itertools.combinations(candidate_facts, count):
            addition = Instance(chosen)
            if addition_matches(kind, base, addition):
                yield addition


def exhaustive_graph_pairs(
    *,
    max_base_nodes: int = 3,
    max_base_edges: int = 4,
    kind: AdditionKind = AdditionKind.ANY,
    new_values: int = 2,
    max_addition_size: int = 2,
) -> Iterator[tuple[Instance, Instance]]:
    """Exhaustively enumerate (I, J) pairs of small graph instances.

    Complete for the given budgets: every base graph over at most
    *max_base_nodes* named nodes with at most *max_base_edges* edges is
    paired with every addition of the requested *kind* up to
    *max_addition_size* facts over adom(I) plus *new_values* fresh values.
    """
    nodes = [f"v{i}" for i in range(max_base_nodes)]
    for base in _all_graphs(nodes, max_base_edges):
        for addition in graph_additions(
            base, kind, new_values=new_values, max_size=max_addition_size
        ):
            yield base, addition


def random_pairs(
    schema: Schema,
    kind: AdditionKind,
    *,
    count: int = 100,
    base_facts: int = 6,
    addition_facts: int = 3,
    domain_size: int = 6,
    seed: int = 0,
) -> Iterator[tuple[Instance, Instance]]:
    """Seeded random (I, J) pairs over an arbitrary schema.

    The addition is generated domain-distinct / domain-disjoint *by
    construction* so no candidates are wasted on filtering.
    """
    rng = random.Random(seed)
    domain = [f"a{i}" for i in range(domain_size)]
    for index in range(count):
        base = random_instance(
            schema, domain, rng.randrange(base_facts + 1), seed=rng.randrange(1 << 30)
        )
        size = rng.randrange(1, addition_facts + 1)
        sub_seed = rng.randrange(1 << 30)
        if kind is AdditionKind.DOMAIN_DISJOINT:
            addition = random_domain_disjoint_addition(
                base, schema, size, seed=sub_seed, prefix=f"j{index}_"
            )
        elif kind is AdditionKind.DOMAIN_DISTINCT:
            addition = random_domain_distinct_addition(
                base, schema, size, seed=sub_seed, prefix=f"j{index}_"
            )
        else:
            addition = random_instance(schema, domain, size, seed=sub_seed)
        if addition:
            yield base, addition
