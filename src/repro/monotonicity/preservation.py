"""Preservation classes and Lemma 3.2: H ⊊ Hinj = M ⊊ E = Mdistinct.

Definition 2 of the paper:

* Q is *preserved under homomorphisms* (class H) when every homomorphism
  h : adom(I) -> adom(J) between instances (with h(I) ⊆ J) maps output
  facts of Q(I) into Q(J);
* Q is *preserved under injective homomorphisms* (Hinj) when the same holds
  for injective h — and Hinj = M;
* Q is *preserved under extensions* (E) when for every induced subinstance
  J of I, Q(J) ⊆ Q(I) — and E = Mdistinct (Lemma 3.2).

These conditions quantify over all pairs of instances and all (exponentially
many) homomorphisms, so the checkers here enumerate homomorphisms explicitly
for small instances and are used with the same family-search strategy as the
monotonicity checkers.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from ..datalog.instance import Instance
from ..queries.base import Query

__all__ = [
    "homomorphisms",
    "is_homomorphism",
    "preserved_under_homomorphism_on",
    "preserved_under_injective_homomorphism_on",
    "preserved_under_extensions_on",
    "extension_pairs_from_monotone_pairs",
]


def is_homomorphism(
    mapping: Mapping[Hashable, Hashable], source: Instance, target: Instance
) -> bool:
    """True when *mapping* (total on adom(source)) maps every fact of
    *source* to a fact of *target*."""
    if not set(source.adom()) <= set(mapping):
        return False
    return all(fact.rename(mapping) in target for fact in source)


def homomorphisms(
    source: Instance, target: Instance, *, injective: bool = False
) -> Iterator[dict[Hashable, Hashable]]:
    """Enumerate all (injective) homomorphisms from *source* to *target*.

    Brute force over adom(target)^adom(source) with per-assignment pruning
    via a backtracking search on facts — adequate for the small instances
    used in preservation experiments.
    """
    source_values = sorted(source.adom(), key=repr)
    target_values = sorted(target.adom(), key=repr)
    if not source_values:
        yield {}
        return

    facts_by_value: dict[Hashable, list] = {value: [] for value in source_values}
    for fact in source:
        for value in set(fact.values):
            facts_by_value[value].append(fact)

    def consistent(partial: dict[Hashable, Hashable], value: Hashable) -> bool:
        """Check every source fact whose values are now fully assigned."""
        for fact in facts_by_value[value]:
            if all(v in partial for v in fact.values):
                if fact.rename(partial) not in target:
                    return False
        return True

    def search(index: int, partial: dict[Hashable, Hashable]) -> Iterator[dict]:
        if index == len(source_values):
            yield dict(partial)
            return
        value = source_values[index]
        for candidate in target_values:
            if injective and candidate in partial.values():
                continue
            partial[value] = candidate
            if consistent(partial, value):
                yield from search(index + 1, partial)
            del partial[value]

    yield from search(0, {})


def preserved_under_homomorphism_on(
    query: Query, source: Instance, target: Instance, *, injective: bool = False
) -> tuple[bool, dict | None]:
    """Check Definition 2 on one instance pair.

    Returns ``(True, None)`` when every (injective) homomorphism h from
    *source* to *target* satisfies h(Q(source)) ⊆ Q(target), else
    ``(False, h)`` for a violating h.
    """
    output_source = query(source)
    output_target = query(target)
    for mapping in homomorphisms(source, target, injective=injective):
        for fact in output_source:
            # The definition quantifies over facts with values in adom(I);
            # output values outside the mapping's domain (e.g. from an empty
            # input) are left fixed by rename().
            if fact.rename(mapping) not in output_target:
                return False, mapping
    return True, None


def preserved_under_injective_homomorphism_on(
    query: Query, source: Instance, target: Instance
) -> tuple[bool, dict | None]:
    """The Hinj condition on one instance pair."""
    return preserved_under_homomorphism_on(query, source, target, injective=True)


def preserved_under_extensions_on(
    query: Query, whole: Instance, part: Instance
) -> bool:
    """The E condition on one pair: when *part* is an induced subinstance of
    *whole*, Q(part) ⊆ Q(whole).  Vacuously true otherwise."""
    if not part.is_induced_subinstance_of(whole):
        return True
    return query(part) <= query(whole)


def extension_pairs_from_monotone_pairs(
    pairs: Iterable[tuple[Instance, Instance]]
) -> Iterator[tuple[Instance, Instance]]:
    """Turn (I, J) monotonicity pairs into (whole, part) extension pairs.

    Lemma 3.2's proof observes J is an induced subinstance of I iff I \\ J is
    domain distinct from J; we simply emit ``(I ∪ J, induced part)`` pairs
    for every sub-adom of the union, which covers all induced subinstances
    of the generated instances.
    """
    for base, addition in pairs:
        whole = base | addition
        values = sorted(whole.adom(), key=repr)
        # Emit the induced subinstances obtained by dropping each single
        # value and by keeping only the base's adom — a useful, cheap cover.
        for dropped in values:
            part = whole.induced_subinstance([v for v in values if v != dropped])
            yield whole, part
        yield whole, whole.induced_subinstance(base.adom())
