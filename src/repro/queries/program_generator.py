"""Seeded random Datalog¬ (and wILOG¬) program generation.

Programs are generated stratum by stratum, so they are syntactically
stratifiable *by construction*: a rule's positive atoms may use edb
relations, earlier idb relations or same-stratum idb relations; its negated
atoms only edb or strictly earlier idb relations.  Safety is guaranteed by
drawing head and negated-atom variables from the positive body's variables.

Used by the property-based tests to exercise the analyzer, the fragment
checkers and the Lemma 5.2 component semantics on inputs nobody hand-picked,
and by :mod:`repro.conformance.generator` to sample per-fragment workloads
for the differential fuzzer (``connect_last_stratum=False`` leaves only the
top stratum disconnected, which lands in semicon-Datalog¬ by construction
since top-stratum heads are never negated).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.schema import Schema
from ..datalog.terms import Atom, Inequality, Variable

__all__ = ["GeneratorConfig", "random_program", "random_ilog_program"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape of the generated programs."""

    edb_relations: tuple[tuple[str, int], ...] = (("E", 2), ("V", 1))
    strata: int = 2
    relations_per_stratum: int = 2
    rules_per_relation: int = 2
    max_body_atoms: int = 3
    negation_probability: float = 0.4
    inequality_probability: float = 0.2
    connect_rules: bool = False
    #: With ``connect_rules`` on, also connect the rules of the *last*
    #: stratum.  Turning this off while keeping ``connect_rules`` on yields
    #: semicon-Datalog¬ samples: every potentially-disconnected rule sits in
    #: the top stratum, whose heads no rule negates.
    connect_last_stratum: bool = True
    variable_pool: tuple[str, ...] = ("x", "y", "z", "u", "v")


def _random_atom(rng: random.Random, relation: str, arity: int, variables) -> Atom:
    return Atom(relation, tuple(rng.choice(variables) for _ in range(arity)))


def _connect_atoms(
    rng: random.Random, atoms: list[Atom], variables: list[Variable]
) -> list[Atom]:
    """Rewrite atom arguments so the positive body's variable graph is
    connected (a chain through a shared variable)."""
    if len(atoms) <= 1:
        return atoms
    connected: list[Atom] = [atoms[0]]
    used = set(atoms[0].variables()) or {variables[0]}
    for atom in atoms[1:]:
        terms = list(atom.terms)
        # Force the first position to reuse an already-seen variable.
        terms[0] = rng.choice(sorted(used, key=lambda v: v.name))
        new_atom = Atom(atom.relation, terms)
        connected.append(new_atom)
        used |= new_atom.variables()
    return connected


def random_program(seed: int = 0, config: GeneratorConfig | None = None) -> Program:
    """Generate a syntactically stratifiable Datalog¬ program."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    variables = [Variable(name) for name in config.variable_pool]

    available: list[tuple[str, int]] = list(config.edb_relations)
    negatable: list[tuple[str, int]] = list(config.edb_relations)
    rules: list[Rule] = []
    last_heads: list[str] = []

    for stratum in range(1, config.strata + 1):
        stratum_relations = [
            (f"S{stratum}_{i}", rng.choice((1, 2)))
            for i in range(config.relations_per_stratum)
        ]
        # Same-stratum positive recursion is allowed.
        positive_pool = available + stratum_relations
        for relation, arity in stratum_relations:
            for _ in range(config.rules_per_relation):
                body_size = rng.randint(1, config.max_body_atoms)
                pos = [
                    _random_atom(rng, *rng.choice(positive_pool), variables)
                    for _ in range(body_size)
                ]
                if config.connect_rules and (
                    config.connect_last_stratum or stratum < config.strata
                ):
                    pos = _connect_atoms(rng, pos, variables)
                pos_vars = sorted(
                    {v for atom in pos for v in atom.variables()},
                    key=lambda v: v.name,
                )
                if not pos_vars:
                    continue
                head = Atom(
                    relation, tuple(rng.choice(pos_vars) for _ in range(arity))
                )
                neg: list[Atom] = []
                if negatable and rng.random() < config.negation_probability:
                    neg_relation, neg_arity = rng.choice(negatable)
                    neg.append(
                        Atom(
                            neg_relation,
                            tuple(rng.choice(pos_vars) for _ in range(neg_arity)),
                        )
                    )
                ineq: list[Inequality] = []
                if len(pos_vars) >= 2 and rng.random() < config.inequality_probability:
                    left, right = rng.sample(pos_vars, 2)
                    ineq.append(Inequality(left, right))
                rules.append(Rule(head, pos, neg, ineq))
        available += stratum_relations
        negatable += stratum_relations
        last_heads = [name for name, _ in stratum_relations]

    if not rules:
        # Degenerate configs can produce no rules; fall back to a trivial one.
        x = variables[0]
        rules = [Rule(Atom("S1_0", (x,)), [Atom("V", (x,))])]
        last_heads = ["S1_0"]

    defined = {rule.head.relation for rule in rules}
    outputs = [name for name in last_heads if name in defined] or sorted(defined)
    extra_edb = Schema(dict(config.edb_relations))
    return Program(rules, output_relations=outputs[:1], extra_edb=extra_edb)


def random_ilog_program(
    seed: int = 0,
    config: GeneratorConfig | None = None,
    *,
    invention_rules: int = 2,
):
    """Generate a weakly-safe wILOG¬ program (value invention via ``*`` heads).

    Reuses :func:`random_program` for the plain Datalog¬ backbone, then adds
    *invention_rules* inventing rules over fresh relations whose bodies read
    the edb.  The designated outputs stay on the backbone, so invented
    values never reach an output position — weak safety by construction.
    """
    from ..ilog.program import ILOGProgram, ILOGRule

    config = config or GeneratorConfig()
    rng = random.Random(seed)
    base = random_program(rng.randrange(1 << 30), config)
    rules = [ILOGRule(rule, invents=False) for rule in base.rules]
    variables = [Variable(name) for name in config.variable_pool]
    for index in range(invention_rules):
        body_size = rng.randint(1, max(1, config.max_body_atoms - 1))
        pos = [
            _random_atom(rng, *rng.choice(config.edb_relations), variables)
            for _ in range(body_size)
        ]
        pos_vars = sorted(
            {v for atom in pos for v in atom.variables()}, key=lambda v: v.name
        )
        if not pos_vars:
            continue
        # The stored head excludes the invention slot; evaluation prepends
        # the Skolem term, so the declared arity is len(terms) + 1.
        head = Atom(
            f"N{index}",
            tuple(rng.choice(pos_vars) for _ in range(rng.choice((1, 2)))),
        )
        rules.append(ILOGRule(Rule(head, pos), invents=True))
    return ILOGProgram(
        rules,
        output_relations=base.output_relations,
        extra_edb=Schema(dict(config.edb_relations)),
    )
