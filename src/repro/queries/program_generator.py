"""Seeded random Datalog¬ program generation.

Programs are generated stratum by stratum, so they are syntactically
stratifiable *by construction*: a rule's positive atoms may use edb
relations, earlier idb relations or same-stratum idb relations; its negated
atoms only edb or strictly earlier idb relations.  Safety is guaranteed by
drawing head and negated-atom variables from the positive body's variables.

Used by the property-based tests to exercise the analyzer, the fragment
checkers and the Lemma 5.2 component semantics on inputs nobody hand-picked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.schema import Schema
from ..datalog.terms import Atom, Inequality, Variable

__all__ = ["GeneratorConfig", "random_program"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape of the generated programs."""

    edb_relations: tuple[tuple[str, int], ...] = (("E", 2), ("V", 1))
    strata: int = 2
    relations_per_stratum: int = 2
    rules_per_relation: int = 2
    max_body_atoms: int = 3
    negation_probability: float = 0.4
    inequality_probability: float = 0.2
    connect_rules: bool = False
    variable_pool: tuple[str, ...] = ("x", "y", "z", "u", "v")


def _random_atom(rng: random.Random, relation: str, arity: int, variables) -> Atom:
    return Atom(relation, tuple(rng.choice(variables) for _ in range(arity)))


def _connect_atoms(
    rng: random.Random, atoms: list[Atom], variables: list[Variable]
) -> list[Atom]:
    """Rewrite atom arguments so the positive body's variable graph is
    connected (a chain through a shared variable)."""
    if len(atoms) <= 1:
        return atoms
    connected: list[Atom] = [atoms[0]]
    used = set(atoms[0].variables()) or {variables[0]}
    for atom in atoms[1:]:
        terms = list(atom.terms)
        # Force the first position to reuse an already-seen variable.
        terms[0] = rng.choice(sorted(used, key=lambda v: v.name))
        new_atom = Atom(atom.relation, terms)
        connected.append(new_atom)
        used |= new_atom.variables()
    return connected


def random_program(seed: int = 0, config: GeneratorConfig | None = None) -> Program:
    """Generate a syntactically stratifiable Datalog¬ program."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    variables = [Variable(name) for name in config.variable_pool]

    available: list[tuple[str, int]] = list(config.edb_relations)
    negatable: list[tuple[str, int]] = list(config.edb_relations)
    rules: list[Rule] = []
    last_heads: list[str] = []

    for stratum in range(1, config.strata + 1):
        stratum_relations = [
            (f"S{stratum}_{i}", rng.choice((1, 2)))
            for i in range(config.relations_per_stratum)
        ]
        # Same-stratum positive recursion is allowed.
        positive_pool = available + stratum_relations
        for relation, arity in stratum_relations:
            for _ in range(config.rules_per_relation):
                body_size = rng.randint(1, config.max_body_atoms)
                pos = [
                    _random_atom(rng, *rng.choice(positive_pool), variables)
                    for _ in range(body_size)
                ]
                if config.connect_rules:
                    pos = _connect_atoms(rng, pos, variables)
                pos_vars = sorted(
                    {v for atom in pos for v in atom.variables()},
                    key=lambda v: v.name,
                )
                if not pos_vars:
                    continue
                head = Atom(
                    relation, tuple(rng.choice(pos_vars) for _ in range(arity))
                )
                neg: list[Atom] = []
                if negatable and rng.random() < config.negation_probability:
                    neg_relation, neg_arity = rng.choice(negatable)
                    neg.append(
                        Atom(
                            neg_relation,
                            tuple(rng.choice(pos_vars) for _ in range(neg_arity)),
                        )
                    )
                ineq: list[Inequality] = []
                if len(pos_vars) >= 2 and rng.random() < config.inequality_probability:
                    left, right = rng.sample(pos_vars, 2)
                    ineq.append(Inequality(left, right))
                rules.append(Rule(head, pos, neg, ineq))
        available += stratum_relations
        negatable += stratum_relations
        last_heads = [name for name, _ in stratum_relations]

    if not rules:
        # Degenerate configs can produce no rules; fall back to a trivial one.
        x = variables[0]
        rules = [Rule(Atom("S1_0", (x,)), [Atom("V", (x,))])]
        last_heads = ["S1_0"]

    defined = {rule.head.relation for rule in rules}
    outputs = [name for name in last_heads if name in defined] or sorted(defined)
    extra_edb = Schema(dict(config.edb_relations))
    return Program(rules, output_relations=outputs[:1], extra_edb=extra_edb)
