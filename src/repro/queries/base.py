"""The query abstraction: generic mappings between instances (Section 2).

A query in the paper is a *generic* mapping Q from instances over an input
schema to instances over an output schema: for every permutation pi of dom,
``Q(pi(I)) = pi(Q(I))``.  Genericity is not decidable for black-box callables
so :func:`check_genericity` verifies it on concrete inputs by random domain
permutations; the query classes in this package are generic by construction.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Hashable, Iterable

from ..datalog.instance import Instance
from ..datalog.program import Program
from ..datalog.schema import Schema
from ..datalog.stratified import StratifiedEvaluator
from ..datalog.wellfounded import evaluate_well_founded

__all__ = [
    "Query",
    "FunctionQuery",
    "DatalogQuery",
    "WellFoundedQuery",
    "check_genericity",
]


class Query(ABC):
    """A query from an input schema to an output schema.

    Subclasses implement :meth:`evaluate`; calling the query object applies
    it to an instance (which is first restricted to the input schema, so
    stray facts cannot leak into the computation).
    """

    def __init__(self, name: str, input_schema: Schema, output_schema: Schema) -> None:
        self._name = name
        self._input_schema = input_schema
        self._output_schema = output_schema

    @property
    def name(self) -> str:
        return self._name

    @property
    def input_schema(self) -> Schema:
        return self._input_schema

    @property
    def output_schema(self) -> Schema:
        return self._output_schema

    @abstractmethod
    def evaluate(self, instance: Instance) -> Instance:
        """Compute the query on an instance over the input schema."""

    def __call__(self, instance: Instance | Iterable) -> Instance:
        instance = Instance(instance)
        restricted = instance.restrict(self._input_schema)
        result = self.evaluate(restricted)
        return result.restrict(self._output_schema)

    def __repr__(self) -> str:
        return f"<Query {self._name}: {self._input_schema!r} -> {self._output_schema!r}>"


class FunctionQuery(Query):
    """A query backed by a plain Python function ``Instance -> Instance``.

    The function must be generic; :func:`check_genericity` can spot-check.
    """

    def __init__(
        self,
        name: str,
        input_schema: Schema,
        output_schema: Schema,
        function: Callable[[Instance], Instance],
    ) -> None:
        super().__init__(name, input_schema, output_schema)
        self._function = function

    def evaluate(self, instance: Instance) -> Instance:
        return Instance(self._function(instance))


class DatalogQuery(Query):
    """The query computed by a stratified Datalog¬ program.

    ``Q(I) = P(I)|_{sigma_out}`` per Section 2.  The input schema defaults
    to ``edb(P)`` (minus the auto-generated ``Adom`` inputs when the Adom
    convention was materialized).
    """

    def __init__(
        self,
        program: Program,
        name: str | None = None,
        input_schema: Schema | None = None,
    ) -> None:
        if input_schema is None:
            input_schema = program.edb()
        super().__init__(
            name or f"datalog[{','.join(sorted(program.output_relations))}]",
            input_schema,
            program.output_schema(),
        )
        self._program = program
        self._evaluator = StratifiedEvaluator(program)

    @property
    def program(self) -> Program:
        return self._program

    def evaluate(self, instance: Instance) -> Instance:
        return self._evaluator.output(instance)


class WellFoundedQuery(Query):
    """The query computed by a Datalog¬ program under well-founded semantics.

    The output consists of the *true* facts of the output relations (drawn /
    undefined facts are not output) — the reading under which win-move is a
    well-defined query [32].
    """

    def __init__(
        self,
        program: Program,
        name: str | None = None,
        input_schema: Schema | None = None,
    ) -> None:
        if input_schema is None:
            input_schema = program.edb()
        super().__init__(
            name or f"wfs[{','.join(sorted(program.output_relations))}]",
            input_schema,
            program.output_schema(),
        )
        self._program = program

    @property
    def program(self) -> Program:
        return self._program

    def evaluate(self, instance: Instance) -> Instance:
        model = evaluate_well_founded(self._program, instance)
        return model.true.restrict(self.output_schema)


def check_genericity(
    query: Query,
    instance: Instance,
    *,
    trials: int = 5,
    seed: int = 0,
) -> bool:
    """Spot-check genericity: Q(pi(I)) == pi(Q(I)) for random permutations pi.

    Permutations move the active domain of *instance* (plus the output's
    active domain) to fresh values, which is the discriminating case.
    """
    rng = random.Random(seed)
    baseline = query(instance)
    domain: list[Hashable] = sorted(
        instance.adom() | baseline.adom(), key=lambda v: (type(v).__name__, repr(v))
    )
    if not domain:
        return True
    for trial in range(trials):
        fresh = [f"g{trial}_{i}" for i in range(len(domain))]
        rng.shuffle(fresh)
        mapping = dict(zip(domain, fresh))
        permuted_input = instance.rename(mapping)
        if query(permuted_input) != baseline.rename(mapping):
            return False
    return True
