"""Seeded instance generators for tests, property checks and benchmarks.

All generators are deterministic given their ``seed`` so that experiment
outputs are reproducible run to run.  The central trick shared by the
monotonicity checkers is :func:`fresh_values` /
:func:`disjoint_union`: building additions J that are domain-distinct or
domain-disjoint from a base instance I by construction.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Sequence

from ..datalog.instance import Instance
from ..datalog.schema import Schema
from ..datalog.terms import Fact

__all__ = [
    "fresh_values",
    "random_graph",
    "random_instance",
    "path_graph",
    "cycle_graph",
    "clique_graph",
    "star_graph",
    "disjoint_union",
    "random_domain_distinct_addition",
    "random_domain_disjoint_addition",
    "random_game_graph",
    "multi_component_instance",
]


def fresh_values(base: Instance | Iterable[Hashable], count: int, prefix: str = "n") -> list[str]:
    """*count* values guaranteed to be outside the active domain of *base*."""
    if isinstance(base, Instance):
        taken = set(base.adom())
    else:
        taken = set(base)
    produced: list[str] = []
    index = 0
    while len(produced) < count:
        candidate = f"{prefix}{index}"
        index += 1
        if candidate not in taken:
            produced.append(candidate)
            taken.add(candidate)
    return produced


def random_graph(
    nodes: int, edges: int, *, seed: int = 0, relation: str = "E", labels: Sequence | None = None
) -> Instance:
    """A random directed graph with the given node count and edge count
    (without duplicate edges; self-loops allowed)."""
    rng = random.Random(seed)
    names = list(labels) if labels is not None else list(range(nodes))
    possible = nodes * nodes
    edges = min(edges, possible)
    chosen: set[tuple] = set()
    while len(chosen) < edges:
        chosen.add((rng.choice(names), rng.choice(names)))
    return Instance(Fact(relation, pair) for pair in chosen)


def random_instance(
    schema: Schema, domain: Sequence[Hashable], facts_per_relation: int, *, seed: int = 0
) -> Instance:
    """A random instance over *schema* with values drawn from *domain*."""
    rng = random.Random(seed)
    facts: set[Fact] = set()
    for relation in schema:
        arity = schema.arity(relation)
        for _ in range(facts_per_relation):
            facts.add(Fact(relation, tuple(rng.choice(domain) for _ in range(arity))))
    return Instance(facts)


def path_graph(length: int, *, relation: str = "E", prefix: str = "p") -> Instance:
    """A directed path with *length* edges: p0 -> p1 -> ... -> p{length}."""
    return Instance(
        Fact(relation, (f"{prefix}{i}", f"{prefix}{i + 1}")) for i in range(length)
    )


def cycle_graph(size: int, *, relation: str = "E", prefix: str = "c") -> Instance:
    """A directed cycle on *size* nodes."""
    return Instance(
        Fact(relation, (f"{prefix}{i}", f"{prefix}{(i + 1) % size}"))
        for i in range(size)
    )


def clique_graph(size: int, *, relation: str = "E", prefix: str = "k") -> Instance:
    """An undirected clique on *size* nodes, encoded with both directions."""
    names = [f"{prefix}{i}" for i in range(size)]
    return Instance(
        Fact(relation, (a, b)) for a in names for b in names if a != b
    )


def star_graph(spokes: int, *, relation: str = "E", prefix: str = "s") -> Instance:
    """A star with *spokes* out-edges from a fresh centre."""
    centre = f"{prefix}_centre"
    return Instance(
        Fact(relation, (centre, f"{prefix}{i}")) for i in range(spokes)
    )


def disjoint_union(base: Instance, addition: Instance, *, prefix: str = "d") -> Instance:
    """*addition* with its domain renamed away from *base*'s active domain.

    The result is domain-disjoint from *base* by construction; callers union
    it with *base* themselves so they can keep both pieces.
    """
    values = sorted(addition.adom(), key=lambda v: (type(v).__name__, repr(v)))
    fresh = fresh_values(Instance(base.facts | addition.facts), len(values), prefix)
    return addition.rename(dict(zip(values, fresh)))


def random_domain_distinct_addition(
    base: Instance, schema: Schema, size: int, *, seed: int = 0, prefix: str = "x"
) -> Instance:
    """A random instance J of *size* facts, domain-distinct from *base*:
    every fact mixes old values (when available) with at least one new one."""
    rng = random.Random(seed)
    old = sorted(base.adom(), key=lambda v: (type(v).__name__, repr(v)))
    new = fresh_values(base, size * 3, prefix)
    relations = sorted(schema)
    facts: set[Fact] = set()
    attempts = 0
    while len(facts) < size and attempts < size * 50:
        attempts += 1
        relation = rng.choice(relations)
        arity = schema.arity(relation)
        values = [
            rng.choice(old) if old and rng.random() < 0.5 else rng.choice(new)
            for _ in range(arity)
        ]
        if not any(v in new for v in values):
            values[rng.randrange(arity)] = rng.choice(new)
        fact = Fact(relation, tuple(values))
        if base.fact_is_domain_distinct(fact):
            facts.add(fact)
    return Instance(facts)


def random_domain_disjoint_addition(
    base: Instance, schema: Schema, size: int, *, seed: int = 0, prefix: str = "y"
) -> Instance:
    """A random instance J of *size* facts, domain-disjoint from *base*."""
    rng = random.Random(seed)
    new = fresh_values(base, max(size, 2) * 2, prefix)
    relations = sorted(schema)
    facts: set[Fact] = set()
    attempts = 0
    while len(facts) < size and attempts < size * 50:
        attempts += 1
        relation = rng.choice(relations)
        arity = schema.arity(relation)
        facts.add(Fact(relation, tuple(rng.choice(new) for _ in range(arity))))
    return Instance(facts)


def random_game_graph(positions: int, moves: int, *, seed: int = 0) -> Instance:
    """A random win-move game graph over ``Move``."""
    return random_graph(positions, moves, seed=seed, relation="Move")


def multi_component_instance(
    component_sizes: Sequence[int], *, seed: int = 0, relation: str = "E"
) -> Instance:
    """An instance whose ``co(I)`` has one component per entry: component i
    is a random weakly-connected graph on ``component_sizes[i]`` nodes."""
    rng = random.Random(seed)
    facts: set[Fact] = set()
    for index, size in enumerate(component_sizes):
        names = [f"c{index}_{i}" for i in range(size)]
        # A random spanning arborescence keeps the component connected.
        for position in range(1, size):
            parent = names[rng.randrange(position)]
            facts.add(Fact(relation, (parent, names[position])))
        extras = rng.randrange(size + 1)
        for _ in range(extras):
            facts.add(Fact(relation, (rng.choice(names), rng.choice(names))))
        if size == 1:
            facts.add(Fact(relation, (names[0], names[0])))
    return Instance(facts)
