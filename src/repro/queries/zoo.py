"""A zoo of named Datalog¬ programs: every program the paper mentions plus
companions used by the Figure 2 reproduction and the analyzer tests.

Each entry records the program source, which fragment the paper places it
in, and the weakest monotonicity class it is guaranteed to inhabit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.parser import parse_program
from ..datalog.program import Program

__all__ = ["ZooEntry", "PROGRAM_ZOO", "zoo_program", "zoo_entries"]


@dataclass(frozen=True)
class ZooEntry:
    """A named program with its expected classifications.

    ``fragment`` is the tightest syntactic fragment of Figure 2 the program
    belongs to: one of ``datalog``, ``datalog-neq``, ``sp-datalog``,
    ``con-datalog``, ``semicon-datalog``, ``stratified``, or the
    well-founded-semantics labels ``wfs-connected`` / ``wfs`` for programs
    outside stratified Datalog.
    ``monotonicity`` is the weakest guaranteed class: one of ``M``,
    ``Mdistinct``, ``Mdisjoint``, ``none``.
    """

    name: str
    source: str
    fragment: str
    monotonicity: str
    description: str

    def program(self) -> Program:
        return parse_program(self.source)


PROGRAM_ZOO: tuple[ZooEntry, ...] = (
    ZooEntry(
        name="tc",
        source="""
            T(x, y) :- E(x, y).
            T(x, z) :- T(x, y), E(y, z).
            O(x, y) :- T(x, y).
        """,
        fragment="datalog",
        monotonicity="M",
        description="Transitive closure: positive Datalog, hence monotone.",
    ),
    ZooEntry(
        name="neq-pairs",
        source="""
            O(x, y) :- E(x, y), x != y.
        """,
        fragment="datalog-neq",
        monotonicity="M",
        description="Datalog(neq): edges between distinct endpoints; still monotone.",
    ),
    ZooEntry(
        name="non-loop-sources",
        source="""
            Loop(x) :- E(x, x).
            O(x, y) :- E(x, y), not Loop(x).
        """,
        fragment="con-datalog",
        monotonicity="Mdisjoint",
        description=(
            "Stratified with connected lower stratum; negation of a derived "
            "relation drops it from SP-Datalog but keeps it semi-connected."
        ),
    ),
    ZooEntry(
        name="sp-missing-targets",
        source="""
            O(x, y) :- E(x, y), not Mark(y).
        """,
        fragment="sp-datalog",
        monotonicity="Mdistinct",
        description="Semi-positive: negation on the edb relation Mark only.",
    ),
    ZooEntry(
        name="example51-p1",
        source="""
            T(x) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.
            O(x) :- Adom(x), not T(x).
        """,
        fragment="con-datalog",
        monotonicity="Mdisjoint",
        description=(
            "Example 5.1 P1: vertices not on a triangle. Connected stratified "
            "Datalog but not domain-distinct-monotone, hence not SP-definable."
        ),
    ),
    ZooEntry(
        name="example51-p2",
        source="""
            T(x, y, z) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.
            D(x1) :- T(x1, x2, x3), T(y1, y2, y3),
                     x1 != y1, x1 != y2, x1 != y3,
                     x2 != y1, x2 != y2, x2 != y3,
                     x3 != y1, x3 != y2, x3 != y3.
            O(x) :- Adom(x), not D(x).
        """,
        fragment="stratified",
        monotonicity="none",
        description=(
            "Example 5.1 P2: the D rule is disconnected and D is negated, so "
            "the program is not semicon-Datalog; its query leaves Mdisjoint."
        ),
    ),
    ZooEntry(
        name="co-tc",
        source="""
            T(x, y) :- E(x, y).
            T(x, z) :- T(x, y), E(y, z).
            O(x, y) :- Adom(x), Adom(y), not T(x, y).
        """,
        fragment="semicon-datalog",
        monotonicity="Mdisjoint",
        description=(
            "Complement of transitive closure: connected recursion below a "
            "disconnected final stratum. In Mdisjoint but not Mdistinct."
        ),
    ),
    ZooEntry(
        name="isolated-vertices",
        source="""
            Touched(x) :- E(x, y).
            Touched(y) :- E(x, y).
            O(x) :- V(x), not Touched(x).
        """,
        fragment="con-datalog",
        monotonicity="Mdisjoint",
        description="Vertices (unary edb V) without incident edges.",
    ),
    ZooEntry(
        name="two-relation-join",
        source="""
            O(x, z) :- R(x, y), S(y, z).
        """,
        fragment="datalog",
        monotonicity="M",
        description="A plain join; monotone and connected.",
    ),
    ZooEntry(
        name="win-move",
        source="""
            Win(x) :- Move(x, y), not Win(y).
        """,
        fragment="wfs-connected",
        monotonicity="Mdisjoint",
        description=(
            "The win-move program: not stratifiable; under the well-founded "
            "semantics its (connected) rules keep it in Mdisjoint via the "
            "Section 7 doubled-program remark."
        ),
    ),
    ZooEntry(
        name="tagged-edges",
        source="""
            Tag(x, y) :- S(x), L(y).
            O(x, y) :- E(x, y), not Tag(x, y).
        """,
        fragment="stratified",
        monotonicity="none",
        description=(
            "Edges not tagged by the S x L product: the Tag rule is "
            "disconnected and Tag is negated, so no Figure-2 fragment "
            "guarantees anything — yet the Tag rule is head-dominant "
            "(its head keeps every body variable), so the per-stratum "
            "optimizer certifies the query as Mdistinct and routes it "
            "coordination-free (the optimizer showcase)."
        ),
    ),
    ZooEntry(
        name="disconnected-product",
        source="""
            O(x, y) :- S(x), T(y).
        """,
        fragment="datalog",
        monotonicity="M",
        description=(
            "Cartesian product: a positive but *disconnected* rule. "
            "Positive Datalog is monotone regardless of connectivity, so "
            "disconnectedness only matters once negation enters."
        ),
    ),
)


def zoo_program(name: str) -> Program:
    """Look up and parse a zoo program by name."""
    for entry in PROGRAM_ZOO:
        if entry.name == name:
            return entry.program()
    raise KeyError(f"no zoo program named {name!r}")


def zoo_entries() -> tuple[ZooEntry, ...]:
    return PROGRAM_ZOO
