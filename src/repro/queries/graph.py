"""The paper's witness queries over directed graphs (binary relation ``E``).

These are exactly the separating examples used in the proof of Theorem 3.1
plus the standard graph queries referenced throughout:

* :func:`transitive_closure_query` — TC (monotone, in Datalog);
* :func:`complement_tc_query` — Q_TC, the complement of the transitive
  closure (in Mdisjoint \\ Mdistinct);
* :func:`clique_query` — Q^k_clique: the edge relation unless an undirected
  k-clique exists (separates the bounded distinct classes);
* :func:`star_query` — Q^k_star: the edge relation unless a star with k
  spokes exists (separates the bounded disjoint classes);
* :func:`triangle_unless_two_disjoint_query` — all triangles unless two
  vertex-disjoint triangles exist (in C \\ Mdisjoint);
* :func:`win_move_query` — the win-move query under well-founded semantics
  (non-monotone, in Mdisjoint — the headline example of [32]).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable

from ..datalog.instance import Instance
from ..datalog.schema import Schema
from ..datalog.terms import Fact
from ..datalog.wellfounded import winmove_truths
from .base import FunctionQuery, Query

__all__ = [
    "EDGE_SCHEMA",
    "OUTPUT_EDGE_SCHEMA",
    "edges_of",
    "undirected_adjacency",
    "has_clique",
    "max_star_spokes",
    "triangles",
    "transitive_closure_query",
    "complement_tc_query",
    "clique_query",
    "star_query",
    "triangle_unless_two_disjoint_query",
    "win_move_query",
    "emptiness_flag_query",
]

EDGE_SCHEMA = Schema({"E": 2})
OUTPUT_EDGE_SCHEMA = Schema({"O": 2})


def edges_of(instance: Instance) -> set[tuple[Hashable, Hashable]]:
    """The directed edge set of the ``E`` relation of *instance*."""
    return {(f.values[0], f.values[1]) for f in instance if f.relation == "E"}


def undirected_adjacency(
    edges: Iterable[tuple[Hashable, Hashable]]
) -> dict[Hashable, set[Hashable]]:
    """Adjacency of the underlying undirected graph (self-loops dropped)."""
    adjacency: dict[Hashable, set[Hashable]] = {}
    for a, b in edges:
        if a == b:
            adjacency.setdefault(a, set())
            continue
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    return adjacency


def has_clique(instance: Instance, k: int) -> bool:
    """True when the undirected version of E contains a k-clique.

    Uses a pruned recursive search over neighbourhoods; adequate for the
    small separating instances and the benchmark graph sizes.
    """
    if k <= 1:
        return k == 1 and bool(instance.adom()) or k <= 0
    adjacency = undirected_adjacency(edges_of(instance))
    nodes = [n for n, nbrs in adjacency.items() if len(nbrs) >= k - 1]
    candidates = set(nodes)

    def extend(clique: list[Hashable], allowed: set[Hashable]) -> bool:
        if len(clique) == k:
            return True
        if len(clique) + len(allowed) < k:
            return False
        for node in list(allowed):
            remaining = allowed & adjacency[node]
            if extend(clique + [node], remaining):
                return True
            allowed = allowed - {node}
        return False

    return extend([], candidates)


def max_star_spokes(instance: Instance) -> int:
    """The largest number of spokes of any (out-)star in E.

    A star with k spokes is a centre c with k distinct out-neighbours
    different from c.
    """
    spokes: dict[Hashable, set[Hashable]] = {}
    for a, b in edges_of(instance):
        if a != b:
            spokes.setdefault(a, set()).add(b)
    return max((len(targets) for targets in spokes.values()), default=0)


def triangles(instance: Instance) -> list[tuple[Hashable, Hashable, Hashable]]:
    """All directed triangles (x, y, z) with E(x,y), E(y,z), E(z,x) and
    x, y, z pairwise distinct — the pattern of Example 5.1."""
    edges = edges_of(instance)
    successors: dict[Hashable, set[Hashable]] = {}
    for a, b in edges:
        successors.setdefault(a, set()).add(b)
    found: list[tuple[Hashable, Hashable, Hashable]] = []
    for x, ys in successors.items():
        for y in ys:
            if y == x:
                continue
            for z in successors.get(y, ()):
                if z == x or z == y:
                    continue
                if (z, x) in edges:
                    found.append((x, y, z))
    return found


def _exists_two_disjoint_triangles(instance: Instance) -> bool:
    """True when two vertex-disjoint (directed) triangles exist."""
    all_triangles = triangles(instance)
    for first, second in combinations(all_triangles, 2):
        if not (set(first) & set(second)):
            return True
    return False


def transitive_closure_query() -> Query:
    """TC: O(a, b) whenever there is a nonempty E-path from a to b.

    Monotone — the canonical member of M.
    """

    def compute(instance: Instance) -> Instance:
        edges = edges_of(instance)
        successors: dict[Hashable, set[Hashable]] = {}
        for a, b in edges:
            successors.setdefault(a, set()).add(b)
        closure: set[tuple[Hashable, Hashable]] = set(edges)
        frontier = set(edges)
        while frontier:
            fresh: set[tuple[Hashable, Hashable]] = set()
            for a, b in frontier:
                for c in successors.get(b, ()):
                    if (a, c) not in closure:
                        fresh.add((a, c))
            closure |= fresh
            frontier = fresh
        return Instance(Fact("O", pair) for pair in closure)

    return FunctionQuery("TC", EDGE_SCHEMA, OUTPUT_EDGE_SCHEMA, compute)


def complement_tc_query() -> Query:
    """Q_TC: O(a, b) for all pairs of the active domain with *no* E-path
    from a to b.

    The paper's witness for Mdisjoint \\ Mdistinct (Theorem 3.1(1)).
    """
    closure = transitive_closure_query()

    def compute(instance: Instance) -> Instance:
        reachable = {(f.values[0], f.values[1]) for f in closure(instance)}
        domain = instance.adom()
        return Instance(
            Fact("O", (a, b))
            for a in domain
            for b in domain
            if (a, b) not in reachable
        )

    return FunctionQuery("coTC", EDGE_SCHEMA, OUTPUT_EDGE_SCHEMA, compute)


def clique_query(k: int) -> Query:
    """Q^k_clique: the edge relation when no undirected k-clique exists,
    the empty relation otherwise (Theorem 3.1(3))."""
    if k < 2:
        raise ValueError("clique size must be at least 2")

    def compute(instance: Instance) -> Instance:
        if has_clique(instance, k):
            return Instance()
        return Instance(Fact("O", f.values) for f in instance if f.relation == "E")

    return FunctionQuery(f"clique[{k}]", EDGE_SCHEMA, OUTPUT_EDGE_SCHEMA, compute)


def star_query(k: int) -> Query:
    """Q^k_star: the edge relation when no star with k spokes exists,
    the empty relation otherwise (Theorem 3.1(4) and (6))."""
    if k < 1:
        raise ValueError("a star needs at least one spoke")

    def compute(instance: Instance) -> Instance:
        if max_star_spokes(instance) >= k:
            return Instance()
        return Instance(Fact("O", f.values) for f in instance if f.relation == "E")

    return FunctionQuery(f"star[{k}]", EDGE_SCHEMA, OUTPUT_EDGE_SCHEMA, compute)


def triangle_unless_two_disjoint_query() -> Query:
    """All triangles, on condition that no two disjoint triangles exist —
    the paper's witness for Mdisjoint ⊊ C (Theorem 3.1(1), third part).

    Output schema: ternary ``O(x, y, z)`` per directed triangle.
    """

    def compute(instance: Instance) -> Instance:
        if _exists_two_disjoint_triangles(instance):
            return Instance()
        return Instance(Fact("O", triple) for triple in triangles(instance))

    return FunctionQuery(
        "triangles-unless-2-disjoint", EDGE_SCHEMA, Schema({"O": 3}), compute
    )


def win_move_query() -> Query:
    """The win-move query: Win(x) for the positions *won* under the
    well-founded semantics of ``Win(x) <- Move(x, y), not Win(y)``.

    Non-monotone, yet in Mdisjoint (Section 7 / [32]).
    """

    def compute(instance: Instance) -> Instance:
        won, _, _ = winmove_truths(instance)
        return won

    return FunctionQuery(
        "win-move", Schema({"Move": 2}), Schema({"Win": 1}), compute
    )


def emptiness_flag_query() -> Query:
    """A deliberately non-generic-feeling but still generic query used in
    tests: outputs every edge reversed when the graph has at least one edge.

    Monotone; exercises output schemas that differ from the input.
    """

    def compute(instance: Instance) -> Instance:
        return Instance(Fact("O", (b, a)) for a, b in edges_of(instance))

    return FunctionQuery("reverse-edges", EDGE_SCHEMA, OUTPUT_EDGE_SCHEMA, compute)
