"""Scenario workloads: realistic declarative-networking programs with
seeded input generators, spanning all three levels of the hierarchy.

Each :class:`Scenario` bundles the Datalog¬ program (or the win-move query),
a description, the expected analyzer placement, and a generator producing
inputs of a requested size.  The examples tell these stories interactively;
``benchmarks/bench_scenarios.py`` runs each scenario end to end (analyze →
distribute → verify) across sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..datalog.instance import Instance
from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..datalog.terms import Fact

__all__ = ["Scenario", "SCENARIOS", "scenario", "routing_scenario", "gc_scenario", "deadlock_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named workload: program + input generator + expected placement."""

    name: str
    description: str
    program: Program
    expected_fragment: str
    expected_class: str | None
    generate: Callable[[int, int], Instance]  # (size, seed) -> instance


def _routing_inputs(size: int, seed: int) -> Instance:
    """A router topology: a few clusters with sparse cross-links."""
    rng = random.Random(seed)
    facts: set[Fact] = set()
    clusters = max(2, size // 5)
    for cluster in range(clusters):
        members = [f"r{cluster}_{i}" for i in range(max(2, size // clusters))]
        for position in range(1, len(members)):
            facts.add(Fact("Link", (members[position - 1], members[position])))
        facts.add(Fact("Link", (members[-1], members[0])))
    for _ in range(clusters):
        a = rng.randrange(clusters)
        b = rng.randrange(clusters)
        if a != b:
            facts.add(Fact("Link", (f"r{a}_0", f"r{b}_0")))
    return Instance(facts)


def routing_scenario() -> Scenario:
    """Route discovery: which routers can reach which — plain TC over
    ``Link``.  Monotone: every node announces routes as it learns them (the
    original CALM story; BGP-style gossip)."""
    program = parse_program(
        """
        Route(x, y) :- Link(x, y).
        Route(x, z) :- Route(x, y), Link(y, z).
        O(x, y) :- Route(x, y).
        """
    )
    return Scenario(
        name="routing",
        description="route discovery = transitive closure over Link",
        program=program,
        expected_fragment="datalog",
        expected_class="M",
        generate=_routing_inputs,
    )


def _gc_inputs(size: int, seed: int) -> Instance:
    """A sharded heap: root-anchored chains plus unreachable cycles."""
    rng = random.Random(seed)
    facts: set[Fact] = set()
    object_id = 0

    def fresh() -> int:
        nonlocal object_id
        object_id += 1
        return 1000 + object_id

    for _ in range(max(1, size // 6)):
        root = fresh()
        facts.add(Fact("Root", (root,)))
        facts.add(Fact("Obj", (root,)))
        current = root
        for _ in range(rng.randint(1, 4)):
            following = fresh()
            facts.add(Fact("Obj", (following,)))
            facts.add(Fact("Ref", (current, following)))
            current = following
    for _ in range(max(1, size // 6)):
        cycle = [fresh() for _ in range(rng.randint(1, 3))]
        for member in cycle:
            facts.add(Fact("Obj", (member,)))
        for position, member in enumerate(cycle):
            facts.add(Fact("Ref", (member, cycle[(position + 1) % len(cycle)])))
    return Instance(facts)


def gc_scenario() -> Scenario:
    """Distributed garbage collection: collectible = not reachable from any
    root.  Non-monotone but connected, hence F2 under domain guidance."""
    program = parse_program(
        """
        Reachable(x) :- Root(x).
        Reachable(y) :- Reachable(x), Ref(x, y).
        O(x) :- Obj(x), not Reachable(x).
        """
    )
    return Scenario(
        name="gc",
        description="collectible heap objects (complement of root-reachability)",
        program=program,
        expected_fragment="con-datalog",
        expected_class="Mdisjoint",
        generate=_gc_inputs,
    )


def _deadlock_inputs(size: int, seed: int) -> Instance:
    """A wait-for graph: chains into sinks plus genuine deadlock cycles."""
    rng = random.Random(seed)
    facts: set[Fact] = set()
    process = 0

    def fresh() -> str:
        nonlocal process
        process += 1
        return f"p{process}"

    for _ in range(max(1, size // 5)):
        chain = [fresh() for _ in range(rng.randint(2, 4))]
        for position in range(1, len(chain)):
            facts.add(Fact("Move", (chain[position - 1], chain[position])))
    for _ in range(max(1, size // 8)):
        cycle = [fresh() for _ in range(rng.randint(2, 3))]
        for position, member in enumerate(cycle):
            facts.add(Fact("Move", (member, cycle[(position + 1) % len(cycle)])))
    return Instance(facts)


def deadlock_scenario() -> Scenario:
    """Deadlock detection as win-move over the wait-for graph: not
    stratifiable, solved under the well-founded semantics; connected, hence
    still F2 (Section 7)."""
    program = parse_program(
        "Win(x) :- Move(x, y), not Win(y).",
        output_relations=["Win"],
        add_adom_rules=False,
    )
    return Scenario(
        name="deadlock",
        description="processes that eventually unblock (win-move on waits)",
        program=program,
        expected_fragment="wfs-connected",
        expected_class="Mdisjoint",
        generate=_deadlock_inputs,
    )


SCENARIOS: tuple[Scenario, ...] = (
    routing_scenario(),
    gc_scenario(),
    deadlock_scenario(),
)


def scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    for entry in SCENARIOS:
        if entry.name == name:
            return entry
    raise KeyError(f"no scenario named {name!r}")
