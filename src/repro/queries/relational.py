"""Multi-relation witness queries (Theorem 3.1(7)) and generic helpers.

The main export is :func:`duplicate_query` — Q^j_duplicate over binary
relations R1..Rj: output R1 when the global intersection of all the
relations is empty, and the empty set otherwise.  The paper uses it to show
``M^i_distinct ⊄ M^j_disjoint`` for i < j.
"""

from __future__ import annotations

from ..datalog.instance import Instance
from ..datalog.schema import Schema
from ..datalog.terms import Fact
from .base import FunctionQuery, Query

__all__ = [
    "duplicate_relation_names",
    "duplicate_schema",
    "duplicate_query",
    "intersection_query",
    "cartesian_product_query",
    "same_generation_schema",
]


def duplicate_relation_names(j: int) -> list[str]:
    """The relation names R1..Rj of Q^j_duplicate's input schema."""
    if j < 1:
        raise ValueError("need at least one relation")
    return [f"R{i}" for i in range(1, j + 1)]


def duplicate_schema(j: int) -> Schema:
    """The input schema of Q^j_duplicate: j binary relations."""
    return Schema({name: 2 for name in duplicate_relation_names(j)})


def duplicate_query(j: int) -> Query:
    """Q^j_duplicate: outputs relation R1 when the intersection of all of
    R1..Rj is empty, and the empty set otherwise (Theorem 3.1(7))."""
    names = duplicate_relation_names(j)

    def compute(instance: Instance) -> Instance:
        shared: set[tuple] | None = None
        for name in names:
            tuples = set(instance.tuples(name))
            shared = tuples if shared is None else shared & tuples
            if not shared:
                break
        if shared:
            return Instance()
        return Instance(Fact("O", values) for values in instance.tuples("R1"))

    return FunctionQuery(
        f"duplicate[{j}]", duplicate_schema(j), Schema({"O": 2}), compute
    )


def intersection_query(j: int) -> Query:
    """The monotone companion of Q^j_duplicate: O = R1 ∩ ... ∩ Rj.

    Adding facts can only grow each Ri and hence the intersection, so this
    query is monotone; it serves as an M-member over the same schema.
    """
    names = duplicate_relation_names(j)

    def compute(instance: Instance) -> Instance:
        shared: set[tuple] | None = None
        for name in names:
            tuples = set(instance.tuples(name))
            shared = tuples if shared is None else shared & tuples
        return Instance(Fact("O", values) for values in (shared or ()))

    return FunctionQuery(
        f"intersect[{j}]", duplicate_schema(j), Schema({"O": 2}), compute
    )


def cartesian_product_query() -> Query:
    """O(a, b) for a in unary S, b in unary T — the classic query showing
    that data exchange (not coordination) may be unavoidable.

    Monotone; requires communication on any distribution splitting S from T.
    """

    def compute(instance: Instance) -> Instance:
        left = [values[0] for values in instance.tuples("S")]
        right = [values[0] for values in instance.tuples("T")]
        return Instance(Fact("O", (a, b)) for a in left for b in right)

    return FunctionQuery(
        "product", Schema({"S": 1, "T": 1}), Schema({"O": 2}), compute
    )


def same_generation_schema() -> Schema:
    """Schema of the classic same-generation query (used in engine tests)."""
    return Schema({"Flat": 2, "Up": 2, "Down": 2})


def emptiness_complement_query(relation: str = "R", arity: int = 1) -> Query:
    """Outputs the full input relation when a sibling relation ``Probe`` is
    empty — a tiny non-monotone query handy for negative tests."""

    def compute(instance: Instance) -> Instance:
        if instance.tuples("Probe"):
            return Instance()
        return Instance(Fact("O", values) for values in instance.tuples(relation))

    return FunctionQuery(
        f"unless-probe[{relation}]",
        Schema({relation: arity, "Probe": 1}),
        Schema({"O": arity}),
        compute,
    )
