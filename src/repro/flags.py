"""Runtime feature flags, read from the environment at *call time*.

Every performance layer of the engine has an environment kill switch:

* ``REPRO_DISABLE_PLANS=1`` — fall back from compiled join plans (and the
  kernel, which builds on the same dispatch point) to the legacy recursive
  join, the oracle engine;
* ``REPRO_DISABLE_KERNEL=1`` — keep compiled plans but disable the interned
  columnar kernel (:mod:`repro.kernel`);
* ``REPRO_KERNEL=0|1`` — explicit opt-out/opt-in for the kernel when no
  stronger override applies;
* ``REPRO_DISABLE_QUERY_CACHE=1`` — disable the incremental transducer
  memos (step cache, policy and protocol memos).

Historically each module parsed its own variable, some at import time and
some at call time, so flipping a switch mid-process worked for some layers
and silently did nothing for others.  This module is the single source of
truth: every predicate re-reads the environment on each call, so setting or
clearing a switch mid-process takes effect immediately (subprocess-tested
in ``tests/test_flags.py``).  Module-level overrides used by tests and the
conformance stacks (``evaluation.PLANS_ENABLED``,
``kernel.engine.KERNEL_ENABLED``) are still honored; for the kernel the
explicit override wins outright, while the plans attribute composes with
the environment (the env kill switch always wins there, because the legacy
join is the correctness oracle).
"""

from __future__ import annotations

import os

__all__ = [
    "env_flag",
    "plans_enabled",
    "kernel_enabled",
    "query_cache_enabled",
]

_TRUTHY = ("1", "true", "yes")


def env_flag(name: str) -> bool:
    """True when the environment variable *name* is set to a truthy value.

    Read at call time on purpose — see the module docstring.
    """
    return os.environ.get(name, "").lower() in _TRUTHY


def plans_enabled() -> bool:
    """Should the join engine run through compiled plans?

    False when either the ``REPRO_DISABLE_PLANS`` kill switch is set *or*
    the ``evaluation.PLANS_ENABLED`` module attribute was flipped off (the
    hook tests and the legacy conformance stack use).
    """
    from .datalog import evaluation

    if not evaluation.PLANS_ENABLED:
        return False
    return not env_flag("REPRO_DISABLE_PLANS")


def kernel_enabled() -> bool:
    """Should eligible evaluators run through the interned columnar kernel?

    Resolution order: the ``kernel.engine.KERNEL_ENABLED`` module override
    (``True``/``False``; ``None`` defers), then the ``REPRO_DISABLE_KERNEL``
    kill switch, then an explicit ``REPRO_KERNEL`` setting, then the
    default (on).  Note the kernel additionally rides behind
    :func:`plans_enabled` at the dispatch point, so ``REPRO_DISABLE_PLANS``
    restores the legacy oracle engine wholesale.
    """
    from .kernel import engine

    if engine.KERNEL_ENABLED is not None:
        return bool(engine.KERNEL_ENABLED)
    if env_flag("REPRO_DISABLE_KERNEL"):
        return False
    explicit = os.environ.get("REPRO_KERNEL")
    if explicit is not None:
        return explicit.lower() in _TRUTHY
    return True


def query_cache_enabled() -> bool:
    """Should the transducer runtime use its incremental memo layers?"""
    return not env_flag("REPRO_DISABLE_QUERY_CACHE")
