"""Streaming fact ingestion: delta feeds, scenario library, gate checks.

See ``docs/SCENARIOS.md`` for the feed format and oracle semantics.
"""

from .feed import DeltaBatch, DeltaFeed
from .scenario import (
    StreamScenario,
    StreamGateVerdict,
    check_stream_scenario,
    load_feed,
    load_scenario,
    scenario_dir,
    scenario_library,
)

__all__ = [
    "DeltaBatch",
    "DeltaFeed",
    "StreamScenario",
    "StreamGateVerdict",
    "check_stream_scenario",
    "load_feed",
    "load_scenario",
    "scenario_dir",
    "scenario_library",
]
