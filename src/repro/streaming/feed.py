"""Streaming fact arrival: epoch-indexed delta feeds.

The paper's transducer networks are *inflationary*: output only grows and
a late-arriving input fact is reacted to at the node's next transition, so
the model natively supports facts trickling in over time (Section 4.1.3).
A :class:`DeltaFeed` packages that trickle as a deterministic schedule of
**epochs**: batch ``k`` is injected only once the network has reached
global quiescence on everything up to batch ``k-1``, which makes "the
output so far" a well-defined object the delta-preservation oracle can
interrogate (``repro.conformance.streaming``).

Feeds are plain data — a tuple of fact batches — so the same feed can be
replayed against the synchronous simulator (:meth:`Run.stream_to_quiescence
<repro.transducers.runtime.Run.stream_to_quiescence>`), the asyncio cluster
(``ClusterRun(delta_feed=...)``) and the process cluster
(``ProcessCluster(delta_feed=...)``), and shipped over wire formats (hex
fact lists in worker specs, fact strings in YAML scenarios).

:meth:`DeltaFeed.generate` draws a feed from a seeded RNG such that every
batch is *kind-admissible* with respect to the accumulated base: for
``Mdistinct`` each batch carries fresh domain values, for ``Mdisjoint``
each batch is domain-disjoint from everything before it.  Admissibility
telescopes — if batch ``j`` is admissible against prefix ``j-1`` then the
whole tail beyond any prefix ``k`` is admissible against prefix ``k`` —
which is exactly the precondition of the paper's delta-preservation
guarantee ``Q(I_k) ⊆ Q(I_B)`` (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datalog.instance import Instance
from ..datalog.parser import parse_facts
from ..datalog.schema import Schema
from ..datalog.terms import Fact
from ..monotonicity.classes import AdditionKind

__all__ = ["DeltaBatch", "DeltaFeed"]


@dataclass(frozen=True)
class DeltaBatch:
    """One epoch's worth of late-arriving input facts."""

    epoch: int
    facts: tuple[Fact, ...]

    def instance(self) -> Instance:
        return Instance(self.facts)


class DeltaFeed:
    """An ordered, immutable schedule of delta batches (epochs ``0..B-1``)."""

    __slots__ = ("_batches",)

    def __init__(self, batches: Iterable[Iterable[Fact]] = ()) -> None:
        packaged: list[DeltaBatch] = []
        for epoch, facts in enumerate(batches):
            ordered = tuple(sorted(set(facts)))
            for fact in ordered:
                if not isinstance(fact, Fact):
                    raise TypeError(f"delta feeds contain Facts, got {fact!r}")
            packaged.append(DeltaBatch(epoch, ordered))
        self._batches: tuple[DeltaBatch, ...] = tuple(packaged)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def batches(self) -> tuple[DeltaBatch, ...]:
        return self._batches

    def __len__(self) -> int:
        return len(self._batches)

    def __bool__(self) -> bool:
        return bool(self._batches)

    def __iter__(self):
        return iter(self._batches)

    def batch(self, epoch: int) -> tuple[Fact, ...] | None:
        """The facts of epoch *epoch*, or ``None`` past the end of the
        feed — the shape runtime injection callbacks want ("is there more
        work, and what is it")."""
        if 0 <= epoch < len(self._batches):
            return self._batches[epoch].facts
        return None

    @property
    def total_facts(self) -> int:
        return sum(len(batch.facts) for batch in self._batches)

    def prefixes(self, base: Instance) -> list[Instance]:
        """The instance prefixes ``[I_0, I_1, ..., I_B]`` where ``I_0`` is
        *base* and ``I_k`` adds the first ``k`` batches.  Prefix ``k`` is
        what a centralized evaluator would have seen had the stream stopped
        before epoch ``k`` — the oracle's reference points."""
        prefixes = [base]
        accumulated = base
        for batch in self._batches:
            accumulated = accumulated | batch.facts
            prefixes.append(accumulated)
        return prefixes

    def admissible_for(self, kind: AdditionKind, base: Instance) -> bool:
        """Whether every batch is a *kind*-admissible addition to the
        accumulated base before it (the telescoping precondition)."""
        accumulated = base
        for batch in self._batches:
            if not kind.admits(accumulated, batch.instance()):
                return False
            accumulated = accumulated | batch.facts
        return True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        rng,
        base: Instance,
        schema: Schema,
        kind: AdditionKind,
        *,
        batches: int = 2,
        max_facts: int = 3,
    ) -> "DeltaFeed":
        """Draw a deterministic feed of *batches* kind-admissible batches.

        Each batch is sampled against the base accumulated so far, so
        admissibility telescopes across the whole feed.  Batches that the
        sampler leaves empty are dropped (an empty epoch exercises nothing).
        """
        from ..conformance.generator import sample_delta

        drawn: list[tuple[Fact, ...]] = []
        accumulated = base
        for _ in range(batches):
            delta = sample_delta(rng, accumulated, schema, kind, max_facts=max_facts)
            fresh = tuple(sorted(set(delta) - accumulated.facts))
            if not fresh:
                continue
            drawn.append(fresh)
            accumulated = accumulated | fresh
        return cls(drawn)

    @classmethod
    def from_texts(cls, texts: Sequence[str]) -> "DeltaFeed":
        """Build a feed from fact-syntax strings (one string per epoch) —
        the YAML scenario / CLI ``--stream`` format."""
        return cls([tuple(parse_facts(text)) for text in texts])

    def to_texts(self) -> list[str]:
        return [
            " ".join(f"{fact}." for fact in batch.facts) for batch in self._batches
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaFeed(batches={len(self._batches)}, facts={self.total_facts})"
