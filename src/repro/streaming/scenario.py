"""The YAML streaming-scenario library and its cross-runtime gate.

A scenario is one committed YAML file under ``scenarios/`` at the repo
top: a Datalog¬ program, a base instance, an epoch-ordered list of delta
batches, and an ``oracle`` declaration naming which addition kind the
feed respects (``any`` / ``distinct`` / ``disjoint`` / ``none``).  The
gate (:func:`check_stream_scenario`) replays the same feed through the
synchronous simulator, the asyncio cluster, and the process cluster
(clean and kill-and-recover), and demands:

* **byte-identical final fingerprints** across all runtimes, and
  identical per-epoch fingerprints — streamed evaluation is confluent;
* when ``oracle`` names a kind, the **live delta-preservation property**:
  every epoch's output is a subset of the final output *and* equals the
  centralized query answer on the corresponding input prefix (the
  operational reading of ``Q(I_k) ⊆ Q(I_B)`` from Section 3.1).

``oracle: none`` marks scenarios whose query carries no guarantee for the
feed's shape — they still gate cross-runtime confluence, and exist to
document *why* delta-preservation matters (a non-monotone query under
streaming accumulates derivations that the final instance refutes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..datalog.instance import Instance
from ..datalog.parser import parse_facts, parse_program
from ..datalog.program import Program
from ..monotonicity.classes import AdditionKind
from .feed import DeltaFeed

__all__ = [
    "StreamScenario",
    "StreamGateVerdict",
    "check_stream_scenario",
    "load_feed",
    "load_scenario",
    "scenario_dir",
    "scenario_library",
]

#: YAML ``oracle:`` values → the addition kind the feed claims to respect.
ORACLE_KINDS: dict[str, AdditionKind | None] = {
    "any": AdditionKind.ANY,
    "distinct": AdditionKind.DOMAIN_DISTINCT,
    "disjoint": AdditionKind.DOMAIN_DISJOINT,
    "none": None,
}


def scenario_dir() -> Path:
    """The committed scenario library (``scenarios/`` at the repo top)."""
    return Path(__file__).resolve().parents[3] / "scenarios"


@dataclass(frozen=True)
class StreamScenario:
    """One streaming workload: program + base + epoch-ordered deltas."""

    name: str
    description: str
    program_text: str
    base_text: str
    batch_texts: tuple[str, ...]
    oracle: str = "none"
    nodes: tuple[str, ...] = ("n1", "n2", "n3")
    seed: int = 0

    def program(self) -> Program:
        return parse_program(self.program_text)

    def base(self) -> Instance:
        return Instance(parse_facts(self.base_text))

    def feed(self) -> DeltaFeed:
        return DeltaFeed.from_texts(self.batch_texts)

    def oracle_kind(self) -> AdditionKind | None:
        return ORACLE_KINDS[self.oracle]


def _load_yaml(path: Path) -> dict:
    import yaml

    payload = yaml.safe_load(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a YAML mapping at top level")
    return payload


def load_feed(path: str | Path) -> DeltaFeed:
    """Load just the delta feed from a scenario or bare-feed YAML file.

    A bare feed file needs only ``batches: [fact-string, ...]`` — the form
    ``repro run --stream FILE`` accepts alongside full scenario files.
    """
    payload = _load_yaml(Path(path))
    batches = payload.get("batches")
    if not isinstance(batches, list) or not all(
        isinstance(text, str) for text in batches
    ):
        raise ValueError(f"{path}: 'batches' must be a list of fact strings")
    return DeltaFeed.from_texts(batches)


def load_scenario(path: str | Path) -> StreamScenario:
    path = Path(path)
    payload = _load_yaml(path)
    missing = {"name", "program", "base", "batches"} - payload.keys()
    if missing:
        raise ValueError(f"{path}: missing scenario keys {sorted(missing)}")
    oracle = payload.get("oracle", "none")
    if oracle not in ORACLE_KINDS:
        raise ValueError(
            f"{path}: oracle must be one of {sorted(ORACLE_KINDS)}, got {oracle!r}"
        )
    batches = payload["batches"]
    if not isinstance(batches, list) or not batches:
        raise ValueError(f"{path}: 'batches' must be a nonempty list")
    scenario = StreamScenario(
        name=str(payload["name"]),
        description=str(payload.get("description", "")).strip(),
        program_text=str(payload["program"]),
        base_text=str(payload["base"]),
        batch_texts=tuple(str(text) for text in batches),
        oracle=oracle,
        nodes=tuple(str(node) for node in payload.get("nodes", ("n1", "n2", "n3"))),
        seed=int(payload.get("seed", 0)),
    )
    # Fail fast on unparseable programs/facts and inadmissible feeds: a
    # committed scenario that breaks its own declaration is a bug.
    scenario.program()
    kind = scenario.oracle_kind()
    if kind is not None and not scenario.feed().admissible_for(kind, scenario.base()):
        raise ValueError(
            f"{path}: feed is not {oracle}-admissible against its own base"
        )
    return scenario


def scenario_library(directory: str | Path | None = None) -> list[StreamScenario]:
    root = Path(directory) if directory is not None else scenario_dir()
    return [
        load_scenario(path)
        for path in sorted(root.glob("*.yaml")) + sorted(root.glob("*.yml"))
    ]


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------


@dataclass
class StreamGateVerdict:
    """The cross-runtime verdict for one scenario."""

    scenario: str
    oracle: str
    epochs: int
    runtimes: dict[str, list[str]] = field(default_factory=dict)
    fingerprints_ok: bool = False
    oracle_ok: bool = True
    oracle_checked: bool = False
    preservation_failures: list[str] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    wal_replayed: int = 0
    passed: bool = False

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "oracle": self.oracle,
            "epochs": self.epochs,
            "runtimes": self.runtimes,
            "fingerprints_ok": self.fingerprints_ok,
            "oracle_checked": self.oracle_checked,
            "oracle_ok": self.oracle_ok,
            "preservation_failures": self.preservation_failures,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "wal_replayed": self.wal_replayed,
            "passed": self.passed,
        }


def _epoch_fingerprints(outputs: Sequence[Instance]) -> list[str]:
    from ..transducers.telemetry import output_fingerprint

    return [output_fingerprint(output) for output in outputs]


def _sync_stream(scenario: StreamScenario) -> list[Instance]:
    from ..core.analyzer import distributed_run
    from ..transducers.runtime import FairScheduler

    run = distributed_run(
        scenario.program(), scenario.base(), nodes=scenario.nodes
    )
    run.stream_to_quiescence(
        scenario.feed(), scheduler=FairScheduler(scenario.seed)
    )
    return run.epoch_outputs


def _cluster_stream(scenario: StreamScenario) -> list[Instance]:
    import asyncio

    from ..cluster.runtime import ClusterRun
    from ..core.analyzer import planned_network

    run = ClusterRun(
        planned_network(scenario.program(), scenario.nodes),
        scenario.base(),
        seed=scenario.seed,
        delta_feed=scenario.feed(),
    )
    asyncio.run(run.arun())
    return run.epoch_outputs


def _process_stream(
    scenario: StreamScenario, *, kill: bool, run_dir: str | None = None
) -> tuple[list[Instance], "object"]:
    from ..cluster.procs import ProcessCluster

    cluster = ProcessCluster(
        {"kind": "program", "text": scenario.program_text},
        scenario.base(),
        nodes=scenario.nodes,
        seed=scenario.seed,
        run_dir=run_dir,
        delta_feed=scenario.feed(),
        kill_node=scenario.nodes[1 % len(scenario.nodes)] if kill else None,
        kill_after=2 if kill else None,
    )
    cluster.run_to_quiescence()
    return cluster.epoch_outputs, cluster


def check_stream_scenario(
    scenario: StreamScenario,
    *,
    processes: bool = True,
    kill: bool = True,
) -> StreamGateVerdict:
    """Replay *scenario* across the runtimes and check the gate properties.

    ``processes=False`` restricts to sync + asyncio (the CI smoke shape);
    ``kill=False`` skips the kill-and-recover arm.
    """
    from ..core.analyzer import query_for

    verdict = StreamGateVerdict(
        scenario=scenario.name,
        oracle=scenario.oracle,
        epochs=len(scenario.feed()) + 1,
    )
    trajectories: dict[str, list[Instance]] = {"sync": _sync_stream(scenario)}
    trajectories["cluster"] = _cluster_stream(scenario)
    if processes:
        outputs, _ = _process_stream(scenario, kill=False)
        trajectories["process"] = outputs
        if kill:
            outputs, cluster = _process_stream(scenario, kill=True)
            trajectories["process-kill"] = outputs
            verdict.crashes = cluster.crashes
            verdict.recoveries = cluster.recoveries
            verdict.wal_replayed = cluster.wal_replayed

    verdict.runtimes = {
        name: _epoch_fingerprints(outputs) for name, outputs in trajectories.items()
    }
    reference = verdict.runtimes["sync"]
    verdict.fingerprints_ok = all(
        prints == reference for prints in verdict.runtimes.values()
    )

    kind = scenario.oracle_kind()
    if kind is not None:
        verdict.oracle_checked = True
        query = query_for(scenario.program())
        base = scenario.base().restrict(scenario.program().edb())
        prefixes = scenario.feed().prefixes(base)
        epochs = trajectories["sync"]
        final = epochs[-1]
        for k, output in enumerate(epochs):
            if not output <= final:
                verdict.preservation_failures.append(
                    f"epoch {k}: output is not a subset of the final output"
                )
            expected = query(prefixes[k]) if k < len(prefixes) else None
            if expected is not None and output != expected:
                verdict.preservation_failures.append(
                    f"epoch {k}: streamed output differs from centralized "
                    f"answer on prefix {k}"
                )
        verdict.oracle_ok = not verdict.preservation_failures

    verdict.passed = verdict.fingerprints_ok and verdict.oracle_ok
    if processes and kill and verdict.recoveries < 1:
        verdict.passed = False
    return verdict
