"""Greedy minimization of failing differential cases.

A raw divergence from the fuzzer carries a generated program and instance
with plenty of irrelevant structure.  The shrinker reduces it while the
failure predicate keeps holding, in three passes repeated to fixpoint:

1. **drop rules** — one at a time (candidates that leave the output
   relations undefined or the program empty are skipped);
2. **drop facts** — one at a time;
3. **canonicalize the domain** — rename the active domain to ``c0..cn``
   (sorted), which normalizes generator-specific value names away.

The predicate re-runs the differential engine each step, so a shrunk case
is failing *by construction* — exactly what gets persisted to the corpus.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from ..datalog.instance import Instance
from ..datalog.program import Program
from .differential import DifferentialCase, run_case

__all__ = ["shrink_case", "default_failure_predicate"]


def default_failure_predicate(
    stacks=None, mutate: dict[str, str] | None = None
) -> Callable[[DifferentialCase], bool]:
    """A predicate that re-runs the differential engine on a candidate."""

    def failing(case: DifferentialCase) -> bool:
        return not run_case(case, stacks=stacks, mutate=mutate).passed

    return failing


def _without_rule(program: Program, index: int) -> Program | None:
    rules = [rule for i, rule in enumerate(program.rules) if i != index]
    if not rules:
        return None
    defined = {rule.head.relation for rule in rules}
    outputs = program.output_relations & defined
    if not outputs:
        return None
    try:
        return Program(rules, output_relations=outputs, extra_edb=program.edb())
    except Exception:
        return None


def _without_fact(instance: Instance, fact) -> Instance:
    return Instance(f for f in instance if f != fact)


def _canonical_domain(case: DifferentialCase) -> DifferentialCase | None:
    values = sorted(
        case.instance.adom(), key=lambda v: (type(v).__name__, repr(v))
    )
    mapping = {value: f"c{i}" for i, value in enumerate(values)}
    if all(old == new for old, new in mapping.items()):
        return None
    return replace(case, instance=case.instance.rename(mapping))


def shrink_case(
    case: DifferentialCase,
    failing: Callable[[DifferentialCase], bool],
    *,
    max_passes: int = 5,
) -> DifferentialCase:
    """Minimize *case* while ``failing(case)`` stays true.

    Greedy and deterministic; the result is 1-minimal with respect to
    single rule/fact removals (dropping any one more element makes the
    failure disappear or the case invalid).
    """
    current = case
    for _ in range(max_passes):
        progressed = False

        # Pass 1: drop rules.
        index = 0
        while index < len(current.program.rules):
            candidate_program = _without_rule(current.program, index)
            if candidate_program is not None:
                candidate = replace(current, program=candidate_program)
                if failing(candidate):
                    current = candidate
                    progressed = True
                    continue  # same index now names the next rule
            index += 1

        # Pass 2: drop facts.
        for fact in current.instance.sorted_facts():
            candidate = replace(
                current, instance=_without_fact(current.instance, fact)
            )
            if failing(candidate):
                current = candidate
                progressed = True

        # Pass 3: canonicalize the domain (once it sticks, it is stable).
        renamed = _canonical_domain(current)
        if renamed is not None and failing(renamed):
            current = renamed
            progressed = True

        if not progressed:
            break
    return current
