"""Fragment-targeted sampling of programs, instances and deltas.

The fuzzer does not want one distribution of programs — it wants coverage
of the paper's fragment zoo (Figure 2 left column), because each fragment
exercises a different engine path: positive programs take the broadcast
protocol, SP-Datalog the absence protocol, semicon-Datalog¬ the
domain-guided handshake, and general stratified programs the coordinating
barrier fallback.  Each target below is a :class:`GeneratorConfig` biased
toward one fragment; sampling is best-effort (a "semicon" draw may come out
connected or even semi-positive), so callers that care about the *actual*
fragment classify the sample with :func:`repro.core.analyzer.analyze`.

Deltas reuse the monotonicity generators: domain-distinct and
domain-disjoint additions are built *by construction* (Section 3.1), which
is what makes the metamorphic oracles of Lemma 3.2 executable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datalog.instance import Instance
from ..datalog.program import Program
from ..datalog.schema import Schema
from ..monotonicity.classes import AdditionKind
from ..queries.generators import (
    random_domain_disjoint_addition,
    random_domain_distinct_addition,
    random_instance,
)
from ..queries.program_generator import (
    GeneratorConfig,
    random_ilog_program,
    random_program,
)

__all__ = [
    "FRAGMENT_TARGETS",
    "FragmentTarget",
    "sample_program",
    "sample_ilog_program",
    "sample_instance",
    "sample_delta",
]


@dataclass(frozen=True)
class FragmentTarget:
    """A named sampling target: the config biased toward one fragment."""

    name: str
    config: GeneratorConfig
    #: Fragments this target is *expected* to land in (a sanity check used
    #: by the generator tests; the fuzzer itself re-classifies samples).
    expected_fragments: tuple[str, ...]


#: The sampled fragment zoo.  Small shapes keep a single differential case
#: in the low milliseconds; the fuzzer's value is in the number of cases,
#: not their size.
FRAGMENT_TARGETS: tuple[FragmentTarget, ...] = (
    FragmentTarget(
        name="datalog",
        config=GeneratorConfig(
            strata=1,
            negation_probability=0.0,
            inequality_probability=0.0,
        ),
        expected_fragments=("datalog",),
    ),
    FragmentTarget(
        name="datalog-neq",
        config=GeneratorConfig(
            strata=1,
            negation_probability=0.0,
            inequality_probability=0.9,
        ),
        expected_fragments=("datalog", "datalog-neq"),
    ),
    FragmentTarget(
        name="sp-datalog",
        config=GeneratorConfig(
            strata=1,
            negation_probability=0.8,
            inequality_probability=0.2,
        ),
        expected_fragments=("datalog", "datalog-neq", "sp-datalog"),
    ),
    FragmentTarget(
        name="con-datalog",
        config=GeneratorConfig(
            strata=2,
            negation_probability=0.6,
            connect_rules=True,
        ),
        expected_fragments=(
            "datalog",
            "datalog-neq",
            "sp-datalog",
            "con-datalog",
        ),
    ),
    FragmentTarget(
        name="semicon-datalog",
        config=GeneratorConfig(
            strata=2,
            negation_probability=0.6,
            connect_rules=True,
            connect_last_stratum=False,
        ),
        expected_fragments=(
            "datalog",
            "datalog-neq",
            "sp-datalog",
            "con-datalog",
            "semicon-datalog",
        ),
    ),
    FragmentTarget(
        name="stratified",
        config=GeneratorConfig(
            strata=3,
            negation_probability=0.5,
            inequality_probability=0.3,
        ),
        expected_fragments=(
            "datalog",
            "datalog-neq",
            "sp-datalog",
            "con-datalog",
            "semicon-datalog",
            "stratified",
        ),
    ),
)

_TARGETS_BY_NAME = {target.name: target for target in FRAGMENT_TARGETS}


def sample_program(rng: random.Random, target: str | FragmentTarget) -> Program:
    """One program drawn from *target*'s configuration."""
    if isinstance(target, str):
        target = _TARGETS_BY_NAME[target]
    return random_program(rng.randrange(1 << 30), target.config)


def sample_ilog_program(rng: random.Random):
    """One weakly-safe wILOG¬ program (see :func:`random_ilog_program`)."""
    config = GeneratorConfig(strata=1, negation_probability=0.4)
    return random_ilog_program(rng.randrange(1 << 30), config)


def sample_instance(
    rng: random.Random,
    schema: Schema,
    *,
    max_facts_per_relation: int = 4,
    domain_size: int = 5,
) -> Instance:
    """A small random instance over *schema* (the program's edb)."""
    domain = [f"a{i}" for i in range(domain_size)]
    return random_instance(
        schema,
        domain,
        rng.randrange(1, max_facts_per_relation + 1),
        seed=rng.randrange(1 << 30),
    )


def sample_delta(
    rng: random.Random,
    base: Instance,
    schema: Schema,
    kind: AdditionKind,
    *,
    max_facts: int = 3,
) -> Instance:
    """A random addition J of the requested *kind* with respect to *base*."""
    size = rng.randrange(1, max_facts + 1)
    seed = rng.randrange(1 << 30)
    if kind is AdditionKind.DOMAIN_DISJOINT:
        return random_domain_disjoint_addition(base, schema, size, seed=seed)
    if kind is AdditionKind.DOMAIN_DISTINCT:
        return random_domain_distinct_addition(base, schema, size, seed=seed)
    domain = sorted(base.adom(), key=repr) + [f"x{i}" for i in range(2)]
    return random_instance(schema, domain, size, seed=seed)
