"""The differential engine: one case, six stacks, byte-identical outputs.

The paper's confluence results (Theorems 4.3–4.5, plus the barrier fallback
by construction) say every evaluation strategy must agree with the
centralized Q(I), so the engine has a sharp oracle: run one (program,
instance) through every stack and require identical output fingerprints.
The first divergence is reported with full provenance — program text,
facts, runtime knobs, and per-stack fingerprints — which the shrinker then
minimizes into a corpus entry.

Mutations are intentionally-planted evaluator bugs (used to validate that
the fuzzer actually catches real divergence classes): each one is a small
semantics-breaking program transform applied inside a single stack, e.g.
dropping inequality filters or capping the fixpoint at one iteration.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Callable, Sequence

from ..datalog.instance import Instance
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..transducers.telemetry import output_fingerprint
from .stacks import (
    DEFAULT_STACK_NAMES,
    EvaluationStack,
    StackContext,
    build_stacks,
)

__all__ = [
    "DifferentialCase",
    "StackOutcome",
    "CaseVerdict",
    "MUTATIONS",
    "MutatedStack",
    "run_case",
]


@dataclass(frozen=True)
class DifferentialCase:
    """One fuzz case: a program, an input instance, and runtime knobs."""

    program: Program
    instance: Instance
    context: StackContext

    def program_text(self) -> str:
        return "\n".join(repr(rule) for rule in self.program.rules)

    def facts_text(self) -> str:
        return " ".join(f"{fact!r}." for fact in self.instance.sorted_facts())


@dataclass(frozen=True)
class StackOutcome:
    """What one stack produced on a case."""

    stack: str
    fingerprint: str | None
    output_facts: int | None
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "stack": self.stack,
            "fingerprint": self.fingerprint,
            "output_facts": self.output_facts,
            "error": self.error,
        }


@dataclass(frozen=True)
class CaseVerdict:
    """The differential verdict: all stack outcomes plus the divergences."""

    case: DifferentialCase
    outcomes: tuple[StackOutcome, ...]

    @property
    def baseline(self) -> StackOutcome:
        return self.outcomes[0]

    @property
    def divergences(self) -> tuple[StackOutcome, ...]:
        expected = self.baseline.fingerprint
        return tuple(
            outcome
            for outcome in self.outcomes[1:]
            if outcome.error is not None or outcome.fingerprint != expected
        )

    @property
    def passed(self) -> bool:
        return self.baseline.error is None and not self.divergences

    def provenance(self) -> dict:
        """A JSON-ready record of the full divergence context."""
        return {
            "program": self.case.program_text(),
            "output_relations": sorted(self.case.program.output_relations),
            "edb": {
                name: self.case.program.edb().arity(name)
                for name in sorted(self.case.program.edb())
            },
            "facts": self.case.facts_text(),
            "context": self.case.context.to_dict(),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "passed": self.passed,
        }


# ----------------------------------------------------------------------
# Planted mutations
# ----------------------------------------------------------------------


def _strip_inequalities(program: Program) -> Program:
    """Drop every inequality filter — breaks Datalog(≠) programs."""
    rules = [Rule(r.head, r.pos, r.neg, ()) for r in program.rules]
    return Program(
        rules, output_relations=program.output_relations, extra_edb=program.edb()
    )


def _strip_negation(program: Program) -> Program:
    """Drop every negated body atom — breaks stratified programs."""
    rules = [Rule(r.head, r.pos, (), r.ineq) for r in program.rules]
    return Program(
        rules, output_relations=program.output_relations, extra_edb=program.edb()
    )


#: name -> program transform.  Each mimics a realistic evaluator bug class
#: (a filter silently skipped, a fixpoint cut short).
MUTATIONS: dict[str, Callable[[Program], Program]] = {
    "strip-inequalities": _strip_inequalities,
    "strip-negation": _strip_negation,
}


class MutatedStack(EvaluationStack):
    """A stack with a planted bug: evaluates a *transformed* program."""

    def __init__(self, base: EvaluationStack, mutation: str) -> None:
        self._base = base
        self._transform = MUTATIONS[mutation]
        self.name = base.name
        self.mutation = mutation

    def evaluate(self, program, instance, context):
        return self._base.evaluate(self._transform(program), instance, context)


# ----------------------------------------------------------------------
# Running a case
# ----------------------------------------------------------------------


def run_case(
    case: DifferentialCase,
    *,
    stacks: Sequence[EvaluationStack] | Sequence[str] | None = None,
    mutate: dict[str, str] | None = None,
) -> CaseVerdict:
    """Run *case* through every stack and compare output fingerprints.

    ``mutate`` maps stack names to mutation names; the named stacks run
    with the planted bug (fuzzer-validation runs only).  Stack errors are
    captured as outcomes, not raised — a crash in one engine is itself a
    divergence.
    """
    if stacks is None:
        stacks = build_stacks(DEFAULT_STACK_NAMES)
    elif stacks and isinstance(stacks[0], str):
        stacks = build_stacks(tuple(stacks))
    if mutate:
        stacks = tuple(
            MutatedStack(stack, mutate[stack.name])
            if stack.name in mutate
            else stack
            for stack in stacks
        )
    outcomes = []
    for stack in stacks:
        try:
            output = stack.evaluate(case.program, case.instance, case.context)
        except Exception:
            outcomes.append(
                StackOutcome(
                    stack=stack.name,
                    fingerprint=None,
                    output_facts=None,
                    error=traceback.format_exc(limit=3),
                )
            )
            continue
        outcomes.append(
            StackOutcome(
                stack=stack.name,
                fingerprint=output_fingerprint(output),
                output_facts=len(output),
            )
        )
    return CaseVerdict(case=case, outcomes=tuple(outcomes))
