"""The live delta-preservation oracle — the streaming conformance dimension.

The metamorphic layer (:mod:`repro.conformance.metamorphic`) checks the
paper's class guarantees *statically*: evaluate on ``I``, evaluate on
``I ∪ J``, compare.  This module checks them **live**: actually run a
runtime with facts trickling in over a :class:`~repro.streaming.DeltaFeed`
and interrogate the recorded epoch trajectory.  For a program whose
fragment carries a monotonicity guarantee, and a feed whose batches are
admissible for that class's addition kind, two properties must hold of
the streamed run:

* **delta preservation** — every epoch's output is a subset of the final
  output (``Q(I_k) ⊆ Q(I_B)``, Section 3.1, observed operationally: the
  runtime never has to retract);
* **prefix conformance** — every epoch's output *equals* the centralized
  answer on the corresponding input prefix (the streamed run is not just
  monotone but right).

Programs without a guarantee are skipped: for them the paper's point is
precisely that streamed accumulation and ``Q(I_final)`` come apart
without coordination, so neither property is promised.

The planted-bug mutation (``retract-on-delta``) models the failure the
oracle exists to catch: a runtime that, on delta arrival, "invalidates"
previously derived facts.  A naive in-place retraction would heal (the
facts re-derive from the grown input), so the mutant *suppresses* the
victim facts from every subsequently observed output, including the
final one — making an earlier epoch not a subset of the final output,
which the subset check flags.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from ..core.analyzer import analyze, distributed_run, query_for
from ..datalog.instance import Instance
from ..datalog.program import Program
from ..streaming.feed import DeltaFeed
from .metamorphic import KIND_FOR_CLASS, _facts_text
from .stacks import StackContext

__all__ = [
    "STREAM_MUTATIONS",
    "STREAM_RUNTIMES",
    "StreamingViolation",
    "check_streaming",
    "shrink_streaming",
]

#: Runtimes the streaming check can drive (fuzzing rotates through them).
STREAM_RUNTIMES = ("sync", "cluster", "procs")

#: Planted streaming bugs, by name (CLI: ``--mutate streaming=NAME``).
STREAM_MUTATIONS = ("retract-on-delta",)


@dataclass(frozen=True)
class StreamingViolation:
    """A broken live delta-preservation property, reproducibly."""

    program_text: str
    output_relations: tuple[str, ...]
    fragment: str
    monotonicity: str
    kind: str
    runtime: str
    base_text: str
    batch_texts: tuple[str, ...]
    epoch: int
    reason: str  # "retraction" | "prefix-mismatch"
    lost_text: str

    def to_dict(self) -> dict:
        return {
            "program": self.program_text,
            "output_relations": list(self.output_relations),
            "fragment": self.fragment,
            "monotonicity": self.monotonicity,
            "kind": self.kind,
            "runtime": self.runtime,
            "base": self.base_text,
            "batches": list(self.batch_texts),
            "epoch": self.epoch,
            "reason": self.reason,
            "lost": self.lost_text,
        }

    def describe(self) -> str:
        if self.reason == "retraction":
            return (
                f"streamed {self.runtime} run of a {self.fragment} program "
                f"({self.monotonicity} guaranteed) retracted {self.lost_text} "
                f"after epoch {self.epoch}"
            )
        return (
            f"streamed {self.runtime} run of a {self.fragment} program "
            f"diverged from the centralized prefix answer at epoch "
            f"{self.epoch} (difference: {self.lost_text})"
        )


@dataclass(frozen=True)
class _StreamCase:
    """The shrinkable unit: program + base + the feed's batches."""

    program: Program
    base: Instance
    batches: tuple[tuple, ...]

    def feed(self) -> DeltaFeed:
        return DeltaFeed(self.batches)


def _run_sync(
    case: _StreamCase, context: StackContext, mutate: str | None
) -> list[Instance]:
    from ..transducers.faults import make_scheduler

    run = distributed_run(case.program, case.base, nodes=context.nodes)
    scheduler = make_scheduler(context.scheduler, context.seed)
    run.run_to_quiescence(scheduler=scheduler)
    epochs = [run.global_output()]
    suppressed: set = set()
    for batch in case.feed().batches:
        if mutate == "retract-on-delta":
            # The planted bug: delta arrival "invalidates" a previously
            # derived fact.  The suppression is sticky — the fact stays
            # missing from every output observed from here on — which is
            # what distinguishes a real retraction bug from a transient
            # one that heals by re-derivation.
            visible = sorted(epochs[-1] - suppressed)
            if visible:
                suppressed.add(visible[0])
        run.ingest(batch.facts)
        run.run_to_quiescence(scheduler=scheduler)
        epochs.append(run.global_output() - suppressed)
    return epochs


def _run_cluster(case: _StreamCase, context: StackContext) -> list[Instance]:
    import asyncio

    from ..cluster.runtime import ClusterRun
    from ..core.analyzer import planned_network

    run = ClusterRun(
        planned_network(case.program, context.nodes),
        case.base,
        transport=context.transport,
        seed=context.seed,
        delta_feed=case.feed(),
    )
    asyncio.run(run.arun())
    return run.epoch_outputs


def _run_procs(case: _StreamCase, context: StackContext) -> list[Instance]:
    from ..cluster.procs import ProcessCluster

    program_text = "\n".join(repr(rule) for rule in case.program.rules)
    cluster = ProcessCluster(
        {
            "kind": "program",
            "text": program_text,
            # Rule text drops the designated-output restriction; carry it
            # explicitly so workers compute the same output schema the
            # centralized oracle queries.
            "outputs": sorted(case.program.output_relations),
        },
        case.base,
        nodes=tuple(context.nodes),
        seed=context.seed,
        delta_feed=case.feed(),
    )
    cluster.run_to_quiescence()
    return cluster.epoch_outputs


def _violation_for(
    case: _StreamCase,
    epochs: list[Instance],
    *,
    runtime: str,
    fragment: str,
    monotonicity: str,
    kind_name: str,
) -> StreamingViolation | None:
    query = query_for(case.program)
    prefixes = case.feed().prefixes(case.base.restrict(case.program.edb()))
    final = epochs[-1]
    make = lambda epoch, reason, lost: StreamingViolation(
        program_text="\n".join(repr(rule) for rule in case.program.rules),
        output_relations=tuple(sorted(case.program.output_relations)),
        fragment=fragment,
        monotonicity=monotonicity,
        kind=kind_name,
        runtime=runtime,
        base_text=_facts_text(case.base),
        batch_texts=tuple(
            _facts_text(Instance(batch)) for batch in case.batches
        ),
        epoch=epoch,
        reason=reason,
        lost_text=_facts_text(lost),
    )
    # Delta preservation first: a retraction is the property the paper
    # names, and the planted mutation's signature.
    for epoch, output in enumerate(epochs):
        if not output <= final:
            return make(epoch, "retraction", output - final)
    for epoch, output in enumerate(epochs):
        expected = query(prefixes[epoch])
        if output != expected:
            return make(
                epoch, "prefix-mismatch", (output - expected) | (expected - output)
            )
    return None


def check_streaming(
    program: Program,
    instance: Instance,
    rng: random.Random,
    context: StackContext,
    *,
    runtime: str = "sync",
    batches: int = 2,
    max_facts: int = 3,
    mutate: str | None = None,
) -> StreamingViolation | None:
    """Run *program* with a generated kind-admissible feed on *runtime* and
    check the live delta-preservation properties.

    Programs without a monotonicity guarantee pass trivially (no property
    is promised for them); so do draws where the delta sampler produces an
    empty feed.  ``mutate`` plants a streaming bug (sync runtime only) for
    the fuzzer's self-check.
    """
    if runtime not in STREAM_RUNTIMES:
        raise ValueError(f"unknown streaming runtime {runtime!r}")
    if mutate is not None and mutate not in STREAM_MUTATIONS:
        raise ValueError(f"unknown streaming mutation {mutate!r}")
    analysis = analyze(program)
    if analysis.monotonicity is None:
        return None
    kind = KIND_FOR_CLASS[analysis.monotonicity]
    base = instance.restrict(program.edb())
    feed = DeltaFeed.generate(
        rng, base, program.edb(), kind, batches=batches, max_facts=max_facts
    )
    if not feed:
        return None
    case = _StreamCase(
        program=program,
        base=base,
        batches=tuple(batch.facts for batch in feed.batches),
    )
    return _check_case(
        case,
        context,
        runtime=runtime,
        fragment=analysis.fragment,
        monotonicity=analysis.monotonicity,
        kind_name=kind.value,
        mutate=mutate,
    )


def _check_case(
    case: _StreamCase,
    context: StackContext,
    *,
    runtime: str,
    fragment: str,
    monotonicity: str,
    kind_name: str,
    mutate: str | None,
) -> StreamingViolation | None:
    if runtime == "sync" or mutate is not None:
        epochs = _run_sync(case, context, mutate)
    elif runtime == "cluster":
        epochs = _run_cluster(case, context)
    else:
        epochs = _run_procs(case, context)
    return _violation_for(
        case,
        epochs,
        runtime=runtime if mutate is None else "sync",
        fragment=fragment,
        monotonicity=monotonicity,
        kind_name=kind_name,
    )


def shrink_streaming(
    violation: StreamingViolation,
    context: StackContext,
    *,
    mutate: str | None = None,
    max_passes: int = 5,
) -> StreamingViolation:
    """Greedy minimization of a streaming violation, mirroring
    :func:`repro.conformance.shrinker.shrink_case`: drop rules, drop base
    facts, drop delta facts (dropping a whole batch when it empties),
    while the violation keeps reproducing on the sync runtime.
    """
    from ..datalog.parser import parse_facts, parse_program
    from .shrinker import _without_rule

    case = _StreamCase(
        program=parse_program(violation.program_text),
        base=Instance(parse_facts(violation.base_text)),
        batches=tuple(
            tuple(parse_facts(text)) for text in violation.batch_texts
        ),
    )

    def failing(candidate: _StreamCase) -> StreamingViolation | None:
        if not any(candidate.batches):
            return None
        try:
            return _check_case(
                candidate,
                context,
                runtime="sync",
                fragment=violation.fragment,
                monotonicity=violation.monotonicity,
                kind_name=violation.kind,
                mutate=mutate,
            )
        except Exception:
            return None

    best = violation
    for _ in range(max_passes):
        progressed = False

        index = 0
        while index < len(case.program.rules):
            program = _without_rule(case.program, index)
            if program is not None:
                candidate = replace(case, program=program)
                found = failing(candidate)
                if found is not None:
                    case, best, progressed = candidate, found, True
                    continue
            index += 1

        for fact in case.base.sorted_facts():
            candidate = replace(
                case, base=Instance(f for f in case.base if f != fact)
            )
            found = failing(candidate)
            if found is not None:
                case, best, progressed = candidate, found, True

        for batch_index, batch in enumerate(case.batches):
            for fact in batch:
                shrunk_batch = tuple(f for f in batch if f != fact)
                batches = tuple(
                    shrunk_batch if i == batch_index else other
                    for i, other in enumerate(case.batches)
                    if i != batch_index or shrunk_batch
                )
                candidate = replace(case, batches=batches)
                found = failing(candidate)
                if found is not None:
                    case, best, progressed = candidate, found, True
                    break

        if not progressed:
            break
    return best
