"""repro.conformance: differential + metamorphic fuzzing for every engine.

The repo evaluates the same query six ways — naive T_P iteration,
the legacy recursive-join semi-naive evaluator, the compiled-plan
evaluator, the interned columnar kernel, the incremental synchronous
transducer simulator, and the asynchronous ``repro.cluster`` runtime
(both transports, with chaos and crash schedules).  This package keeps
them honest:

* :mod:`generator` samples safe programs per paper fragment plus random
  instances and distinct-/disjoint-domain deltas;
* :mod:`stacks` puts the six evaluation stacks behind one interface;
* :mod:`differential` runs a (program, instance) through all stacks and
  reports the first divergence with full provenance;
* :mod:`metamorphic` turns the paper's monotonicity classes (Fig. 1,
  Lemma 3.2, Theorem 3.1) into executable oracles;
* :mod:`shrinker` minimizes failing cases (drop rules, drop facts,
  canonicalize the domain);
* :mod:`corpus` persists minimized cases under ``tests/corpus/`` so every
  past divergence becomes a permanent regression test;
* :mod:`fuzz` is the ``repro fuzz`` driver with seed/iteration/time
  budgets and JSON telemetry.

See ``docs/TESTING.md`` for the workflow.
"""

from .corpus import (
    CORPUS_VERSION,
    corpus_entries,
    default_corpus_dir,
    entry_from_verdict,
    load_entry,
    replay_entry,
    write_entry,
)
from .differential import (
    MUTATIONS,
    CaseVerdict,
    DifferentialCase,
    StackOutcome,
    run_case,
)
from .fuzz import FUZZ_REPORT_VERSION, FuzzConfig, run_fuzz, write_fuzz_report
from .generator import (
    FRAGMENT_TARGETS,
    sample_delta,
    sample_instance,
    sample_program,
)
from .metamorphic import MetamorphicViolation, check_metamorphic
from .shrinker import shrink_case
from .stacks import DEFAULT_STACK_NAMES, StackContext, build_stacks

__all__ = [
    "CORPUS_VERSION",
    "CaseVerdict",
    "DEFAULT_STACK_NAMES",
    "DifferentialCase",
    "FRAGMENT_TARGETS",
    "FUZZ_REPORT_VERSION",
    "FuzzConfig",
    "MUTATIONS",
    "MetamorphicViolation",
    "StackContext",
    "StackOutcome",
    "build_stacks",
    "check_metamorphic",
    "corpus_entries",
    "default_corpus_dir",
    "entry_from_verdict",
    "load_entry",
    "replay_entry",
    "run_case",
    "run_fuzz",
    "sample_delta",
    "sample_instance",
    "sample_program",
    "shrink_case",
    "write_entry",
    "write_fuzz_report",
]
