"""The six evaluation stacks behind one interface.

Every stack computes the same query ``Q(I) = P(I)|_{sigma_out}`` (Section
2), but through a different engine:

* ``naive`` — per-stratum naive iteration of the immediate-consequence
  operator T_P until fixpoint (the textbook semantics, and the slowest but
  most obviously correct engine);
* ``seminaive-legacy`` — the semi-naive evaluator running the pre-plan
  recursive join (``PLANS_ENABLED`` off);
* ``compiled`` — the semi-naive evaluator over compiled join plans, with
  the columnar kernel pinned off (the tuple-engine production path of
  PR 2–5);
* ``kernel`` — the interned columnar kernel with per-rule codegen
  (``repro.kernel``, the current production default);
* ``sync-run`` — the synchronous transducer simulator with the analyzer's
  protocol, under any named scheduler and optional channel chaos (the
  incremental step-cache path);
* ``cluster`` — the asynchronous ``repro.cluster`` runtime, on either
  transport, with optional message chaos and crash-recovery schedules.

The distributed stacks route through :func:`repro.core.analyzer.
plan_distribution`, so the fuzzer also covers protocol selection — the
broadcast / absence / domain-guided protocols *and* the coordinating
barrier fallback for programs without a monotonicity guarantee.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

from ..datalog import evaluation
from ..datalog.instance import Instance
from ..datalog.program import Program
from ..datalog.stratification import is_stratifiable, stratify

__all__ = [
    "DEFAULT_STACK_NAMES",
    "StackContext",
    "EvaluationStack",
    "build_stacks",
]

#: Stack execution order; the first entry is the differential baseline.
DEFAULT_STACK_NAMES = (
    "naive",
    "seminaive-legacy",
    "compiled",
    "kernel",
    "sync-run",
    "cluster",
)


@dataclass(frozen=True)
class StackContext:
    """Per-case knobs for the runtime stacks.

    The centralized stacks ignore everything but the program and instance;
    the distributed stacks read the scheduler / transport / fault fields.
    """

    seed: int = 0
    nodes: tuple[str, ...] = ("n1", "n2", "n3")
    scheduler: str = "fair"
    chaos: bool = False
    transport: str = "memory"
    crash: bool = False

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "nodes": list(self.nodes),
            "scheduler": self.scheduler,
            "chaos": self.chaos,
            "transport": self.transport,
            "crash": self.crash,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StackContext":
        return cls(
            seed=payload.get("seed", 0),
            nodes=tuple(payload.get("nodes", ("n1", "n2", "n3"))),
            scheduler=payload.get("scheduler", "fair"),
            chaos=payload.get("chaos", False),
            transport=payload.get("transport", "memory"),
            crash=payload.get("crash", False),
        )


@contextmanager
def _plans_disabled():
    """Temporarily run the join engine without compiled plans."""
    previous = evaluation.PLANS_ENABLED
    evaluation.PLANS_ENABLED = False
    try:
        yield
    finally:
        evaluation.PLANS_ENABLED = previous


@contextmanager
def _plans_enabled():
    previous = evaluation.PLANS_ENABLED
    evaluation.PLANS_ENABLED = True
    try:
        yield
    finally:
        evaluation.PLANS_ENABLED = previous


@contextmanager
def _kernel_override(enabled: bool):
    """Pin the columnar kernel on or off for one stack evaluation."""
    from ..kernel import engine as kernel_engine

    previous = kernel_engine.KERNEL_ENABLED
    kernel_engine.KERNEL_ENABLED = enabled
    try:
        yield
    finally:
        kernel_engine.KERNEL_ENABLED = previous


class EvaluationStack:
    """One way of computing Q(I); subclasses implement :meth:`evaluate`."""

    name = "stack"

    def evaluate(
        self, program: Program, instance: Instance, context: StackContext
    ) -> Instance:
        raise NotImplementedError


def _centralized_output(program: Program, full: Instance) -> Instance:
    """Project a full fixpoint P(I) to the designated output schema."""
    return full.restrict(program.output_schema())


class NaiveStack(EvaluationStack):
    """Naive T_P iteration per stratum, over the legacy recursive join."""

    name = "naive"

    def evaluate(self, program, instance, context):
        from ..core.analyzer import query_for
        from ..datalog.evaluation import immediate_consequence

        restricted = instance.restrict(program.edb())
        with _plans_disabled():
            if not is_stratifiable(program):
                # Outside stratified Datalog¬ there is no T_P fixpoint to
                # iterate; fall back to the program's natural semantics.
                return query_for(program)(restricted)
            current = restricted
            for stage in stratify(program).strata:
                while True:
                    step = immediate_consequence(stage, current)
                    if step == current:
                        break
                    current = step
            return _centralized_output(program, current)


class LegacySemiNaiveStack(EvaluationStack):
    """Semi-naive evaluation through the pre-plan recursive join oracle."""

    name = "seminaive-legacy"

    def evaluate(self, program, instance, context):
        from ..core.analyzer import query_for

        with _plans_disabled():
            return query_for(program)(instance)


class CompiledStack(EvaluationStack):
    """Semi-naive evaluation over compiled join plans, kernel pinned off —
    without the pin this stack would silently dispatch to the kernel and
    stop exercising the tuple-plan engine."""

    name = "compiled"

    def evaluate(self, program, instance, context):
        from ..core.analyzer import query_for

        with _plans_enabled(), _kernel_override(False):
            return query_for(program)(instance)


class KernelStack(EvaluationStack):
    """The interned columnar kernel with per-rule codegen (production)."""

    name = "kernel"

    def evaluate(self, program, instance, context):
        from ..core.analyzer import query_for

        with _plans_enabled(), _kernel_override(True):
            return query_for(program)(instance)


class SyncRunStack(EvaluationStack):
    """The synchronous simulator under a named scheduler, optionally with
    channel faults (duplication, delay, drop-with-redelivery)."""

    name = "sync-run"

    def evaluate(self, program, instance, context):
        from ..core.analyzer import distributed_run
        from ..transducers.faults import CHAOS_PLAN, FaultyChannel, make_scheduler

        channel = (
            FaultyChannel(CHAOS_PLAN, context.seed) if context.chaos else None
        )
        run = distributed_run(
            program, instance, nodes=context.nodes, channel=channel
        )
        return run.run_to_quiescence(
            scheduler=make_scheduler(context.scheduler, context.seed)
        )


class ClusterStack(EvaluationStack):
    """The asynchronous cluster runtime on the chosen transport, with
    optional message chaos and crash-recovery schedules."""

    name = "cluster"

    def evaluate(self, program, instance, context):
        from ..cluster.faults import CRASH_PLAN
        from ..cluster.runtime import ClusterRun
        from ..core.analyzer import planned_network
        from ..transducers.faults import CHAOS_PLAN

        if context.crash:
            fault_plan = CRASH_PLAN
        elif context.chaos:
            fault_plan = CHAOS_PLAN
        else:
            fault_plan = None
        run = ClusterRun(
            planned_network(program, context.nodes),
            instance,
            transport=context.transport,
            fault_plan=fault_plan,
            seed=context.seed,
        )
        return run.run_to_quiescence()


_STACK_CLASSES: dict[str, type[EvaluationStack]] = {
    stack.name: stack
    for stack in (
        NaiveStack,
        LegacySemiNaiveStack,
        CompiledStack,
        KernelStack,
        SyncRunStack,
        ClusterStack,
    )
}


def build_stacks(names=DEFAULT_STACK_NAMES) -> tuple[EvaluationStack, ...]:
    """Instantiate stacks by name, preserving order."""
    try:
        return tuple(_STACK_CLASSES[name]() for name in names)
    except KeyError as error:
        known = ", ".join(sorted(_STACK_CLASSES))
        raise KeyError(f"unknown stack {error.args[0]!r} (known: {known})")


def with_scheduler(context: StackContext, scheduler: str) -> StackContext:
    return replace(context, scheduler=scheduler)
