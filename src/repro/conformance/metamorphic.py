"""Metamorphic oracles from the paper's monotonicity classes.

Lemma 3.2 / Figure 2 give every syntactic fragment a *guaranteed*
monotonicity class; that guarantee is a metamorphic property no fixed test
file can exhaust:

* fragment guarantees **M** — extend the instance with *any* delta and
  every previously-derived output fact must be preserved;
* fragment guarantees **Mdistinct** — preservation under domain-*distinct*
  deltas (every delta fact carries a value outside adom(I));
* fragment guarantees **Mdisjoint** — preservation under domain-*disjoint*
  deltas (no delta fact shares a value with adom(I)).

A violation means either the classifier places the program in the wrong
fragment or an evaluator computes the wrong output — both are conformance
bugs.  Checks are cross-validated against the counterexample search in
:mod:`repro.monotonicity.checker` (the two must agree on every pair), and
the class *boundaries* of Theorem 3.1 are pinned by the explicit witnesses
in :mod:`repro.monotonicity.witnesses` (see ``tests/conformance/``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.analyzer import analyze, query_for
from ..datalog.instance import Instance
from ..datalog.program import Program
from ..monotonicity.checker import check_monotonicity
from ..monotonicity.classes import AdditionKind, violation_on
from .generator import sample_delta

__all__ = [
    "KIND_FOR_CLASS",
    "MetamorphicViolation",
    "check_metamorphic",
]

#: monotonicity class name -> the addition kind its condition quantifies over.
KIND_FOR_CLASS: dict[str, AdditionKind] = {
    "M": AdditionKind.ANY,
    "Mdistinct": AdditionKind.DOMAIN_DISTINCT,
    "Mdisjoint": AdditionKind.DOMAIN_DISJOINT,
}


@dataclass(frozen=True)
class MetamorphicViolation:
    """A broken class guarantee, with everything needed to reproduce it."""

    program_text: str
    output_relations: tuple[str, ...]
    fragment: str
    monotonicity: str
    kind: str
    base_text: str
    delta_text: str
    lost_text: str

    def to_dict(self) -> dict:
        return {
            "program": self.program_text,
            "output_relations": list(self.output_relations),
            "fragment": self.fragment,
            "monotonicity": self.monotonicity,
            "kind": self.kind,
            "base": self.base_text,
            "delta": self.delta_text,
            "lost": self.lost_text,
        }

    def describe(self) -> str:
        return (
            f"fragment {self.fragment} guarantees {self.monotonicity}, but a "
            f"{self.kind} delta retracted output fact(s) {self.lost_text}"
        )


def _facts_text(instance: Instance) -> str:
    return " ".join(f"{fact!r}." for fact in instance.sorted_facts())


def check_metamorphic(
    program: Program,
    instance: Instance,
    rng: random.Random,
    *,
    deltas: int = 2,
    cross_validate: bool = True,
) -> MetamorphicViolation | None:
    """Check the fragment's guaranteed class on random deltas.

    Returns the first violation found, or ``None``.  Programs without a
    guarantee (general stratified / WFS) have no oracle and pass trivially.
    With ``cross_validate`` on, every violation is re-derived through
    :func:`repro.monotonicity.checker.check_monotonicity` on the same pair,
    so the fuzzer and the checker can never silently disagree.
    """
    analysis = analyze(program)
    if analysis.monotonicity is None:
        return None
    kind = KIND_FOR_CLASS[analysis.monotonicity]
    query = query_for(program)
    base = instance.restrict(program.edb())
    for _ in range(deltas):
        delta = sample_delta(rng, base, program.edb(), kind)
        if not delta:
            continue
        violation = violation_on(query, base, delta)
        if violation is None:
            continue
        if cross_validate:
            verdict = check_monotonicity(query, kind, [(base, delta)])
            if verdict.holds:
                raise AssertionError(
                    "metamorphic layer and monotonicity checker disagree on "
                    f"pair (|I|={len(base)}, |J|={len(delta)}) for "
                    f"{query.name}"
                )
        return MetamorphicViolation(
            program_text="\n".join(repr(rule) for rule in program.rules),
            output_relations=tuple(sorted(program.output_relations)),
            fragment=analysis.fragment,
            monotonicity=analysis.monotonicity,
            kind=kind.value,
            base_text=_facts_text(base),
            delta_text=_facts_text(delta),
            lost_text=_facts_text(violation.lost_facts),
        )
    return None
