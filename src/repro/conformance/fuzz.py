"""The ``repro fuzz`` driver: budgeted differential + metamorphic fuzzing.

Each iteration derives its own RNG stream from ``(seed, iteration)``, draws
a fragment-targeted program and a random instance, picks runtime knobs
(scheduler, transport, chaos / crash schedules) round-robin so the whole
matrix is exercised at every budget, then

1. runs the case through all six stacks (differential oracle),
2. checks the fragment's guaranteed monotonicity class on random deltas
   (metamorphic oracle), and
3. streams a kind-admissible delta feed through a live runtime and checks
   delta preservation mid-run (streaming oracle; the runtime rotates
   sync → asyncio cluster → process cluster on a deterministic cadence),
   and
4. holds the per-stratum optimizer's routing decision to its soundness
   obligations — evidence-audited certificate, downward-consistent
   strata, empirical non-refutation, and byte-identity of the optimized
   execution against the All-barrier baseline (optimizer oracle).

Failures are shrunk and persisted to the corpus (when a corpus directory
is given) and always surface in the JSON telemetry report.  Everything is
deterministic given ``--seed`` — two runs with the same seed produce the
same report minus the ``timing`` section.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field, replace

from ..datalog.evaluation import clear_default_plan_cache
from ..transducers.faults import SCHEDULER_NAMES
from .differential import DifferentialCase, run_case
from .generator import FRAGMENT_TARGETS, sample_instance, sample_program
from .metamorphic import check_metamorphic
from .shrinker import default_failure_predicate, shrink_case
from .stacks import DEFAULT_STACK_NAMES, StackContext, build_stacks
from .optimizer import check_optimizer, shrink_optimizer
from .streaming import check_streaming, shrink_streaming

__all__ = ["FUZZ_REPORT_VERSION", "FuzzConfig", "run_fuzz", "write_fuzz_report"]

#: Bumped whenever the fuzz report JSON layout changes incompatibly.
FUZZ_REPORT_VERSION = 3

_SCHEDULERS = tuple(sorted(SCHEDULER_NAMES))


@dataclass(frozen=True)
class FuzzConfig:
    """Budgets and knobs for one fuzz run."""

    seed: int = 0
    iterations: int = 100
    #: Wall-clock budget in seconds; ``None`` means iterations-only.
    time_budget: float | None = None
    stacks: tuple[str, ...] = DEFAULT_STACK_NAMES
    corpus_dir: str | None = None
    #: stack name -> mutation name (planted-bug validation runs only).
    mutate: dict[str, str] = field(default_factory=dict)
    nodes: tuple[str, ...] = ("n1", "n2", "n3")
    metamorphic: bool = True
    streaming: bool = True
    optimizer: bool = True
    shrink: bool = True
    #: Run the slower cluster knobs (tcp transport / crash schedule) every
    #: Nth iteration; 0 disables them entirely.
    tcp_every: int = 5
    crash_every: int = 7
    #: Streaming-oracle runtime rotation: stream through the asyncio
    #: cluster every Nth iteration and the process cluster every Mth
    #: (procs wins ties); other iterations use the sync simulator.
    #: 0 disables that runtime.
    stream_cluster_every: int = 6
    stream_procs_every: int = 25


def _iteration_context(config: FuzzConfig, iteration: int) -> StackContext:
    """Round-robin over the runtime matrix, deterministically."""
    chaos = iteration % 2 == 1
    transport = (
        "tcp"
        if config.tcp_every and iteration % config.tcp_every == config.tcp_every - 1
        else "memory"
    )
    crash = bool(
        config.crash_every
        and iteration % config.crash_every == config.crash_every - 1
    )
    return StackContext(
        seed=config.seed * 1_000_003 + iteration,
        nodes=config.nodes,
        scheduler=_SCHEDULERS[iteration % len(_SCHEDULERS)],
        chaos=chaos or crash,
        transport=transport,
        crash=crash,
    )


def _stream_runtime(config: FuzzConfig, iteration: int) -> str:
    if (
        config.stream_procs_every
        and iteration % config.stream_procs_every == config.stream_procs_every - 1
    ):
        return "procs"
    if (
        config.stream_cluster_every
        and iteration % config.stream_cluster_every == config.stream_cluster_every - 1
    ):
        return "cluster"
    return "sync"


def _derived_rng(seed: int, iteration: int) -> random.Random:
    # Hash-derived integer seed: stable across processes and PYTHONHASHSEED
    # (tuple seeds would go through hash() and break byte-reproducibility).
    digest = hashlib.sha256(f"repro-fuzz:{seed}:{iteration}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def run_fuzz(config: FuzzConfig, *, log=None) -> dict:
    """Run the fuzz loop; returns the JSON-ready telemetry report."""
    from .corpus import entry_from_verdict, write_entry

    stacks = build_stacks(config.stacks)
    started = time.monotonic()
    divergences: list[dict] = []
    metamorphic_violations: list[dict] = []
    streaming_violations: list[dict] = []
    optimizer_violations: list[dict] = []
    streaming_runtimes: dict[str, int] = {}
    corpus_paths: list[str] = []
    cases_by_fragment: dict[str, int] = {}
    iterations_run = 0
    stop_reason = "iterations"

    for iteration in range(config.iterations):
        if (
            config.time_budget is not None
            and time.monotonic() - started > config.time_budget
        ):
            stop_reason = "time-budget"
            break
        iterations_run += 1
        # Every iteration evaluates a freshly generated program, so plans
        # parked in the module-level cache by bare match_rule callers (the
        # well-founded engine above all) would never be hit again — drop
        # them so a long fuzz session's cache footprint stays flat.
        clear_default_plan_cache()
        rng = _derived_rng(config.seed, iteration)
        target = FRAGMENT_TARGETS[iteration % len(FRAGMENT_TARGETS)]
        cases_by_fragment[target.name] = cases_by_fragment.get(target.name, 0) + 1
        program = sample_program(rng, target)
        instance = sample_instance(rng, program.edb())
        context = _iteration_context(config, iteration)
        case = DifferentialCase(
            program=program, instance=instance, context=context
        )

        verdict = run_case(case, stacks=stacks, mutate=config.mutate or None)
        if not verdict.passed:
            if config.shrink:
                predicate = default_failure_predicate(
                    stacks=config.stacks, mutate=config.mutate or None
                )
                minimized = shrink_case(case, predicate)
                verdict = run_case(
                    minimized, stacks=config.stacks, mutate=config.mutate or None
                )
            record = verdict.provenance()
            record["iteration"] = iteration
            record["fragment_target"] = target.name
            divergences.append(record)
            if config.corpus_dir is not None:
                entry = entry_from_verdict(verdict)
                path = write_entry(config.corpus_dir, entry)
                corpus_paths.append(str(path))
            if log is not None:
                log(
                    f"iteration {iteration}: DIVERGENCE "
                    f"({len(verdict.divergences)} stack(s) disagree)"
                )

        if config.metamorphic:
            violation = check_metamorphic(program, instance, rng)
            if violation is not None:
                record = violation.to_dict()
                record["iteration"] = iteration
                record["fragment_target"] = target.name
                metamorphic_violations.append(record)
                if log is not None:
                    log(f"iteration {iteration}: METAMORPHIC {violation.describe()}")

        if config.streaming:
            runtime = _stream_runtime(config, iteration)
            stream_mutate = config.mutate.get("streaming")
            violation = check_streaming(
                program,
                instance,
                rng,
                context,
                runtime=runtime,
                mutate=stream_mutate,
            )
            streaming_runtimes[runtime] = streaming_runtimes.get(runtime, 0) + 1
            if violation is not None:
                if config.shrink:
                    violation = shrink_streaming(
                        violation, context, mutate=stream_mutate
                    )
                record = violation.to_dict()
                record["iteration"] = iteration
                record["fragment_target"] = target.name
                streaming_violations.append(record)
                if log is not None:
                    log(f"iteration {iteration}: STREAMING {violation.describe()}")

        if config.optimizer:
            optimizer_mutate = config.mutate.get("optimizer")
            violation = check_optimizer(
                program,
                instance,
                rng,
                context,
                mutate=optimizer_mutate,
            )
            if violation is not None:
                if config.shrink:
                    violation = shrink_optimizer(
                        violation, context, mutate=optimizer_mutate
                    )
                record = violation.to_dict()
                record["iteration"] = iteration
                record["fragment_target"] = target.name
                optimizer_violations.append(record)
                if log is not None:
                    log(f"iteration {iteration}: OPTIMIZER {violation.describe()}")

    elapsed = time.monotonic() - started
    report = {
        "version": FUZZ_REPORT_VERSION,
        "seed": config.seed,
        "stacks": list(config.stacks),
        "mutations": dict(config.mutate),
        "iterations_requested": config.iterations,
        "iterations_run": iterations_run,
        "stop_reason": stop_reason,
        "cases_by_fragment": cases_by_fragment,
        "divergences": divergences,
        "metamorphic_violations": metamorphic_violations,
        "streaming_violations": streaming_violations,
        "optimizer_violations": optimizer_violations,
        "streaming_runtimes": streaming_runtimes,
        "corpus_entries": corpus_paths,
        "passed": not divergences
        and not metamorphic_violations
        and not streaming_violations
        and not optimizer_violations,
        "timing": {
            "elapsed_seconds": round(elapsed, 3),
            "seconds_per_iteration": round(elapsed / max(1, iterations_run), 4),
        },
    }
    return report


def write_fuzz_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
