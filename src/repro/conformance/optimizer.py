"""The optimizer soundness oracle — the eighth conformance dimension.

The per-stratum optimizer (:mod:`repro.optimizer`) routes programs to
coordination-free protocols on the strength of a criterion *finer* than
the paper's three syntactic fragments.  A finer criterion is exactly the
kind of code that can be wrong in a way no unit test notices, so every
generator-sampled program is held to three obligations:

* **evidence audit** — a claimed class must be *entailed by the
  certificate's own per-stratum evidence*: an upgrade past the
  analyzer's guarantee is only ever justified by every stratum of the
  negation cone being head-dominant, and those per-stratum booleans are
  recomputed independently of the classification ladder.  A certificate
  that asserts more than its evidence supports is unsound on its face,
  no counterexample required;
* **downward consistency** — each stratum's standalone classification is
  at least as strong as the whole-program effective class (the Figure-2
  inclusions, read per stratum);
* **certificate soundness** — the claimed monotonicity class survives
  empirical refutation, both on deltas anchored at the fuzz iteration's
  actual instance and on seeded random (I, J) pairs of the class's
  defining addition kind;
* **execution byte-identity** — the optimized plan's output fingerprint
  equals the All-barrier baseline's on the same input and seed.  Sound
  routing may change *cost*, never *content*.

The planted mutation (``misclassify-stratum``) certifies every
stratified negation cone as distinct-safe without running the
head-dominance test — precisely the unsound shortcut a refactor could
introduce — and the self-check demands the oracle catch it within a
fixed iteration budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datalog.instance import Instance
from ..datalog.program import Program
from ..monotonicity.checker import check_monotonicity, random_pairs
from ..monotonicity.classes import violation_on
from ..optimizer.plan import (
    OPTIMIZER_MUTATIONS,
    downward_consistent,
    plan_optimized,
)
from ..optimizer.executor import run_comparison
from .generator import sample_delta
from .metamorphic import KIND_FOR_CLASS, _facts_text
from .stacks import StackContext

__all__ = [
    "OPTIMIZER_MUTATIONS",
    "OptimizerViolation",
    "check_optimizer",
    "shrink_optimizer",
]


@dataclass(frozen=True)
class OptimizerViolation:
    """An unsound optimizer decision, reproducibly."""

    program_text: str
    output_relations: tuple[str, ...]
    fragment: str
    baseline_monotonicity: str | None
    claimed_monotonicity: str | None
    reason: str  # "unsupported-claim" | "downward-inconsistent" | "certificate-refuted" | "execution-divergence"
    detail: str
    base_text: str
    delta_text: str

    def to_dict(self) -> dict:
        return {
            "program": self.program_text,
            "output_relations": list(self.output_relations),
            "fragment": self.fragment,
            "baseline_monotonicity": self.baseline_monotonicity,
            "claimed_monotonicity": self.claimed_monotonicity,
            "reason": self.reason,
            "detail": self.detail,
            "base": self.base_text,
            "delta": self.delta_text,
        }

    def describe(self) -> str:
        claimed = self.claimed_monotonicity or "barrier"
        if self.reason == "unsupported-claim":
            return (
                f"optimizer claimed {claimed} for a {self.fragment} program "
                f"(analyzer guarantees "
                f"{self.baseline_monotonicity or 'nothing'}) without "
                f"supporting per-stratum evidence: {self.detail}"
            )
        if self.reason == "downward-inconsistent":
            return (
                f"optimizer certified a {self.fragment} program as {claimed} "
                f"but a stratum carries a weaker standalone class: {self.detail}"
            )
        if self.reason == "certificate-refuted":
            return (
                f"optimizer claimed {claimed} for a {self.fragment} program "
                f"but the class was refuted empirically: {self.detail}"
            )
        return (
            f"optimized plan for a {self.fragment} program (claimed "
            f"{claimed}) diverged from its All-barrier baseline: {self.detail}"
        )


def _violation(
    program: Program,
    optimized,
    *,
    reason: str,
    detail: str,
    base: Instance | None = None,
    delta: Instance | None = None,
) -> OptimizerViolation:
    return OptimizerViolation(
        program_text="\n".join(repr(rule) for rule in program.rules),
        output_relations=tuple(sorted(program.output_relations)),
        fragment=optimized.baseline.analysis.fragment,
        baseline_monotonicity=optimized.baseline.analysis.monotonicity,
        claimed_monotonicity=optimized.effective_monotonicity,
        reason=reason,
        detail=detail,
        base_text=_facts_text(base) if base is not None else "",
        delta_text=_facts_text(delta) if delta is not None else "",
    )


def _unsupported_claim(optimized) -> str | None:
    """The evidence audit: why the claimed class is not entailed by the
    plan's own recorded evidence, or None when it is.

    The analyzer's whole-program guarantee supports any claim up to its
    own strength.  The only upgrade path past it is the distinct-safe
    criterion, whose proof obligation — head-dominance of the negation
    cone — is recorded per stratum by
    :func:`repro.optimizer.strata.stratum_breakdown` *independently* of
    the classification ladder, so a classifier bug cannot fabricate it.
    """
    from ..optimizer.strata import CLASS_STRENGTH

    claimed = optimized.effective_monotonicity
    baseline = optimized.baseline.analysis.monotonicity
    if claimed is None or CLASS_STRENGTH[claimed] <= CLASS_STRENGTH[baseline]:
        return None
    if claimed == "Mdistinct":
        if not optimized.strata:
            return "claimed Mdistinct for an unstratifiable program"
        bad = [
            f"stratum {s.index} ({', '.join(s.heads)})"
            for s in optimized.strata
            if not s.head_dominant
        ]
        if bad:
            return (
                "negation cone is not head-dominant in "
                + "; ".join(bad)
            )
        return None
    return (
        f"no criterion upgrades {baseline or 'an unguaranteed program'} "
        f"to {claimed}"
    )


def check_optimizer(
    program: Program,
    instance: Instance,
    rng: random.Random,
    context: StackContext,
    *,
    pairs: int = 12,
    deltas: int = 3,
    mutate: str | None = None,
) -> OptimizerViolation | None:
    """Hold the optimizer's decision for *program* to its three
    obligations on this fuzz iteration's *instance*.

    ``mutate`` plants one of :data:`OPTIMIZER_MUTATIONS` into the
    classification (the baseline arm stays honest) for the self-check.
    """
    if mutate is not None and mutate not in OPTIMIZER_MUTATIONS:
        raise ValueError(f"unknown optimizer mutation {mutate!r}")
    optimized = plan_optimized(program, mutate=mutate)

    unsupported = _unsupported_claim(optimized)
    if unsupported is not None:
        return _violation(
            program, optimized, reason="unsupported-claim", detail=unsupported
        )

    if not downward_consistent(optimized):
        weak = [
            f"stratum {s.index} ({', '.join(s.heads)}): {s.monotonicity}"
            for s in optimized.strata
        ]
        return _violation(
            program,
            optimized,
            reason="downward-inconsistent",
            detail="; ".join(weak),
        )

    claimed = optimized.effective_monotonicity
    if claimed is not None:
        kind = KIND_FOR_CLASS[claimed]
        query = optimized.plan.query
        base = instance.restrict(program.edb())
        for _ in range(deltas):
            delta = sample_delta(rng, base, program.edb(), kind)
            if not delta:
                continue
            witness = violation_on(query, base, delta)
            if witness is not None:
                return _violation(
                    program,
                    optimized,
                    reason="certificate-refuted",
                    detail=witness.describe(),
                    base=base,
                    delta=delta,
                )
        verdict = check_monotonicity(
            query,
            kind,
            random_pairs(
                query.input_schema, kind, count=pairs, seed=context.seed
            ),
        )
        if not verdict.holds:
            return _violation(
                program,
                optimized,
                reason="certificate-refuted",
                detail=verdict.violation.describe(),
                base=verdict.violation.base,
                delta=verdict.violation.addition,
            )

    comparison = run_comparison(
        program,
        instance,
        nodes=len(context.nodes),
        seed=context.seed,
        mutate=mutate,
    )
    if not comparison.byte_identical:
        return _violation(
            program,
            optimized,
            reason="execution-divergence",
            detail=(
                f"{comparison.optimized.protocol} produced "
                f"{len(comparison.optimized.output)} output facts "
                f"({comparison.optimized.fingerprint[:12]}) vs barrier "
                f"{len(comparison.barrier.output)} "
                f"({comparison.barrier.fingerprint[:12]})"
            ),
            base=instance.restrict(program.edb()),
        )
    return None


def shrink_optimizer(
    violation: OptimizerViolation,
    context: StackContext,
    *,
    mutate: str | None = None,
    max_passes: int = 5,
) -> OptimizerViolation:
    """Greedy minimization: drop rules, then base facts, then delta facts,
    while the violation keeps reproducing (mirrors
    :func:`repro.conformance.streaming.shrink_streaming`)."""
    from ..datalog.parser import parse_facts, parse_program
    from .shrinker import _without_rule

    program = parse_program(violation.program_text)
    base = Instance(parse_facts(violation.base_text))
    delta = Instance(parse_facts(violation.delta_text))

    def failing(
        candidate: Program, cand_base: Instance, cand_delta: Instance
    ) -> OptimizerViolation | None:
        try:
            return check_optimizer(
                candidate,
                cand_base | cand_delta,
                random.Random(context.seed),
                context,
                mutate=mutate,
            )
        except Exception:
            return None

    best = violation
    for _ in range(max_passes):
        progressed = False

        index = 0
        while index < len(program.rules):
            candidate = _without_rule(program, index)
            if candidate is not None:
                found = failing(candidate, base, delta)
                if found is not None:
                    program, best, progressed = candidate, found, True
                    continue
            index += 1

        for fact in base.sorted_facts():
            shrunk = Instance(f for f in base if f != fact)
            found = failing(program, shrunk, delta)
            if found is not None:
                base, best, progressed = shrunk, found, True

        for fact in delta.sorted_facts():
            shrunk = Instance(f for f in delta if f != fact)
            found = failing(program, base, shrunk)
            if found is not None:
                delta, best, progressed = shrunk, found, True

        if not progressed:
            break
    return best
