"""The persistent divergence corpus under ``tests/corpus/``.

Every minimized failing case the fuzzer ever found is stored as one JSON
file and replayed by ``tests/conformance/test_corpus_replay.py`` on every
run — past divergences become permanent regression tests.  Entries are
self-contained (program text, output relations, edb arities, facts, runtime
knobs, provenance) and named by a content hash, so re-finding the same
minimized case is idempotent and no timestamps are involved.

Triage workflow (see ``docs/TESTING.md``): a red corpus replay means the
stored case diverges again — fix the engine, keep the entry.  Only delete
an entry when the *expected* output legitimately changed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..datalog.instance import Instance
from ..datalog.parser import parse_facts, parse_program
from ..datalog.program import Program
from ..datalog.schema import Schema
from .differential import CaseVerdict, DifferentialCase, run_case
from .stacks import StackContext

__all__ = [
    "CORPUS_VERSION",
    "default_corpus_dir",
    "entry_from_verdict",
    "write_entry",
    "load_entry",
    "corpus_entries",
    "case_from_entry",
    "replay_entry",
]

#: Bumped whenever the entry JSON layout changes incompatibly.
CORPUS_VERSION = 1


def default_corpus_dir() -> Path:
    """``tests/corpus/`` relative to the repository root (best effort)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "corpus"
        if candidate.is_dir():
            return candidate
    return Path("tests") / "corpus"


def _entry_name(entry: dict) -> str:
    canonical = json.dumps(
        {
            "program": entry["program"],
            "facts": entry["facts"],
            "context": entry["context"],
            "kind": entry["kind"],
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    return f"{entry['kind']}-{digest}.json"


def entry_from_verdict(verdict: CaseVerdict, *, kind: str = "differential") -> dict:
    """A JSON-ready corpus entry for a (minimized) failing verdict."""
    case = verdict.case
    return {
        "version": CORPUS_VERSION,
        "kind": kind,
        "program": case.program_text(),
        "output_relations": sorted(case.program.output_relations),
        "edb": {
            name: case.program.edb().arity(name)
            for name in sorted(case.program.edb())
        },
        "facts": case.facts_text(),
        "context": case.context.to_dict(),
        "provenance": verdict.provenance(),
    }


def write_entry(directory: str | Path, entry: dict) -> Path:
    """Persist *entry* under its content-hash name; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / _entry_name(entry)
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str | Path) -> dict:
    with open(path) as handle:
        entry = json.load(handle)
    version = entry.get("version")
    if version != CORPUS_VERSION:
        raise ValueError(
            f"corpus entry {path} has version {version!r}, "
            f"expected {CORPUS_VERSION}"
        )
    return entry


def corpus_entries(directory: str | Path | None = None) -> list[Path]:
    """All entry paths in *directory* (default: ``tests/corpus/``), sorted."""
    directory = Path(directory) if directory is not None else default_corpus_dir()
    if not directory.is_dir():
        return []
    return sorted(
        path for path in directory.iterdir() if path.suffix == ".json"
    )


def case_from_entry(entry: dict) -> DifferentialCase:
    """Rebuild the executable case from a stored entry."""
    parsed = parse_program(entry["program"])
    program = Program(
        parsed.rules,
        output_relations=entry["output_relations"],
        extra_edb=Schema({name: arity for name, arity in entry["edb"].items()}),
    )
    instance = Instance(parse_facts(entry["facts"]))
    context = StackContext.from_dict(entry["context"])
    return DifferentialCase(program=program, instance=instance, context=context)


def replay_entry(entry: dict, *, stacks=None) -> CaseVerdict:
    """Re-run a stored case through the differential engine (no mutations —
    replay checks that the *fixed* engines still agree)."""
    return run_case(case_from_entry(entry), stacks=stacks)
