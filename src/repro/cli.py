"""Command-line interface: analyze, evaluate and distribute Datalog¬
programs from files.

Usage (also via ``python -m repro``):

    repro analyze PROGRAM.dl [--json] [--check-pairs N]
        Classify the program: fragment, monotonicity class, transducer
        model, coordination-free class, chosen protocol.  ``--json``
        prints the machine-readable classification certificate instead
        (docs/SERVICE.md); ``--check-pairs N`` adds an empirical
        cross-check of the guarantee on seeded random (I, J) pairs.

    repro serve [--port P] [--store DB] [--workers N]
        Run the multi-tenant query/analysis HTTP service: POST programs
        + instances to /v1/runs, the service classifies, routes to the
        cheapest applicable protocol, executes, and persists certificate
        + decision + fingerprint + run report per tenant in a sqlite
        store (see docs/SERVICE.md).

    repro eval PROGRAM.dl FACTS.dl
        Centralized evaluation under the program's natural semantics
        (stratified, or well-founded when unstratifiable).

    repro run PROGRAM.dl FACTS.dl [--nodes N] [--seed S]
               [--chaos] [--scheduler NAME] [--stream FEED.yaml]
               [--report OUT.json] [--trace]
        Distributed evaluation on a simulated N-node network using the
        analyzer's strategy; prints the output and the run metrics.
        ``--chaos`` injects channel faults (duplication, delay,
        drop-with-eventual-redelivery) and defaults to the chaos
        scheduler; ``--scheduler`` picks any of fair / trickle /
        singleton / storm / starve / chaos; ``--stream`` trickles in a
        delta feed (``batches: [...]`` YAML or a full scenario file,
        docs/SCENARIOS.md), injecting each batch at quiescence and
        checking live delta preservation for classified programs;
        ``--report`` writes the structured JSON run report (see
        docs/CHAOS.md).

    repro cluster PROGRAM.dl FACTS.dl [--nodes N] [--seed S]
               [--transport memory|tcp] [--chaos] [--crash]
               [--max-crashes N] [--stream FEED.yaml] [--report OUT.json]
        Distributed evaluation on the *asynchronous* cluster runtime:
        one asyncio task per node, wire-encoded envelopes over the chosen
        transport, quiescence detected decentrally by Safra's token ring
        (see docs/CLUSTER.md).  ``--chaos`` wraps every endpoint in the
        fault layer (duplication, delay, drop-with-redelivery); ``--crash``
        additionally kills and checkpoint-recovers node tasks mid-round
        (crash-recovery protocol in docs/CLUSTER.md); ``--stream`` feeds
        delta batches as wire envelopes injected at detected quiescence
        (the token ring re-arms per epoch, docs/SCENARIOS.md).

    repro cluster PROGRAM.dl FACTS.dl --processes N [--seed S]
               [--run-dir DIR] [--kill-node NODE --kill-after K]
               [--report OUT.json]
        The same evaluation, but with each node in its *own OS process*
        (true parallelism: per-process GIL, interner, plan cache) talking
        worker-to-worker over real TCP, inputs sharded by the planner's
        distribution policy.  ``--kill-node``/``--kill-after`` SIGKILL a
        worker mid-run; the coordinator respawns it over its on-disk
        checkpoint directory and it recovers by snapshot + WAL replay.

    repro solve-game FACTS.dl
        Solve the win-move game in FACTS.dl (Move facts) by retrograde
        analysis: won / drawn / lost positions and winning moves.

    repro optimize PROGRAM.dl [FACTS.dl] [--json] [--nodes N]
                   [--seed S] [--check-pairs N] [--calibrate]
        Per-stratum coordination-cost optimizer: classify each stratum,
        choose the cheapest sound Section-4 protocol bundle (monotone
        strata run coordination-free; only the non-monotone residue pays
        the All-barrier), and emit the PlanCertificate with predicted
        (rounds, messages, transitions) from the fitted cost model.
        With FACTS, executes the optimized plan *and* the All-barrier
        baseline on the same seeded scheduler and reports byte-identity
        plus measured costs.  ``--calibrate`` refits the cost model from
        fresh protocol sweeps instead of the committed coefficients.

    repro fuzz [--seed S] [--iterations N] [--time-budget SECONDS]
               [--stacks a,b,...] [--corpus DIR] [--mutate STACK=NAME]
               [--no-metamorphic] [--no-streaming] [--no-optimizer]
               [--report OUT.json]
        Differential + metamorphic + streaming + optimizer conformance
        fuzzing:
        random programs per paper fragment run through every evaluation
        stack (naive, semi-naive legacy join, compiled plans, columnar
        kernel, synchronous simulator, async cluster on both transports
        with chaos and crash schedules),
        asserting byte-identical outputs plus the fragment's guaranteed
        monotonicity class — both statically on random deltas and live
        mid-stream (a kind-admissible delta feed trickled through a
        rotating runtime; ``--mutate streaming=retract-on-delta`` plants
        the streaming self-check bug).  The optimizer oracle additionally
        holds every routing decision of ``repro optimize`` to its
        soundness obligations (``--mutate optimizer=misclassify-stratum``
        plants its self-check bug).  Failures are minimized and, with
        --corpus, persisted as permanent regression entries (see
        docs/TESTING.md).

Program files use the conventional syntax (``O(x) :- E(x, y), not S(y).``);
fact files are plain facts (``E(1, 2).``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.analyzer import analyze, distributed_run, plan_distribution, query_for
from .datalog.games import solve_game
from .datalog.instance import Instance
from .datalog.parser import parse_facts, parse_program

__all__ = ["main", "build_parser"]


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _load_program(path: str):
    return parse_program(_read(path))


def _load_facts(path: str) -> Instance:
    return Instance(parse_facts(_read(path)))


def _print_instance(instance: Instance, out) -> None:
    for fact in instance.sorted_facts():
        print(f"  {fact!r}", file=out)
    if not instance:
        print("  (empty)", file=out)


def _cmd_analyze(args, out) -> int:
    if args.json:
        return _cmd_analyze_json(args, out)
    if args.ilog:
        return _cmd_analyze_ilog(args, out)
    program = _load_program(args.program)
    analysis = analyze(program)
    plan = plan_distribution(program)
    print(f"rules:        {len(program)}", file=out)
    print(f"edb:          {', '.join(sorted(program.edb())) or '-'}", file=out)
    print(f"output:       {', '.join(sorted(program.output_relations))}", file=out)
    print(f"fragment:     {analysis.fragment}", file=out)
    print(f"class:        {analysis.monotonicity or 'no guarantee'}", file=out)
    print(f"model:        {analysis.model or 'requires global barrier'}", file=out)
    print(f"cf-class:     {analysis.coordination_class or '-'}", file=out)
    print(f"strategy:     {plan.transducer.name}", file=out)
    if plan.requires_domain_guided:
        print("policy:       requires a domain-guided distribution", file=out)
    if plan.requires_barrier:
        print("warning:      strategy coordinates (waits on every node)", file=out)
    if args.explain:
        from .core.explain import explain

        print("", file=out)
        print(explain(program).describe(), file=out)
    return 0


def _cmd_analyze_json(args, out) -> int:
    """``repro analyze --json``: the machine-readable certificate.

    Prints exactly one JSON document (the classification certificate of
    :mod:`repro.core.certificate`) so scripts and the service smoke tests
    can consume the analysis without screen-scraping; ``--check-pairs N``
    adds the empirical cross-check over N seeded random (I, J) pairs.
    """
    from .core.certificate import (
        certificate,
        certificate_to_json,
        ilog_certificate_for_plan,
    )

    if args.ilog:
        from .core.analyzer import plan_ilog_distribution
        from .ilog.program import parse_ilog_program

        program = parse_ilog_program(_read(args.program))
        payload = ilog_certificate_for_plan(program, plan_ilog_distribution(program))
    else:
        payload = certificate(
            _load_program(args.program),
            check_pairs=args.check_pairs,
            seed=args.seed,
        )
    print(certificate_to_json(payload), file=out)
    return 0


def _cmd_analyze_ilog(args, out) -> int:
    from .core.analyzer import plan_ilog_distribution
    from .ilog.program import parse_ilog_program

    program = parse_ilog_program(_read(args.program))
    plan = plan_ilog_distribution(program)
    analysis = plan.analysis
    print(f"rules:        {len(program)}", file=out)
    print(f"invention:    {', '.join(sorted(program.invention_relations)) or '-'}", file=out)
    print(f"fragment:     {analysis.fragment}", file=out)
    print(f"class:        {analysis.monotonicity or 'no guarantee'}", file=out)
    print(f"model:        {analysis.model or 'requires global barrier'}", file=out)
    print(f"cf-class:     {analysis.coordination_class or '-'}", file=out)
    print(f"strategy:     {plan.transducer.name}", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    """``repro serve``: run the multi-tenant query/analysis service.

    Blocks on the main thread until SIGINT/SIGTERM, then drains the
    worker pool and closes the store (docs/SERVICE.md).
    """
    import signal
    import threading

    from .service import ReproService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store_path=args.store,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        rate_limit=args.rate_limit,
        rate_window=args.rate_window,
        quiet=not args.verbose,
    )
    service = ReproService(config).start_in_thread()
    print(
        f"repro-service v{_service_version()} listening on "
        f"http://{config.host}:{service.port} (store: {config.store_path}, "
        f"{config.workers} workers)",
        file=out,
        flush=True,
    )

    # The serve loop runs on a thread; the main thread just waits for a
    # signal.  Setting an event is async-signal-safe, and the shutdown
    # path itself can no longer be interrupted by the handler.
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        service.shutdown()
        print("repro-service stopped", file=out, flush=True)
    return 0


def _service_version() -> int:
    from .service import SERVICE_VERSION

    return SERVICE_VERSION


def _load_stream(args):
    if not getattr(args, "stream", None):
        return None
    from .streaming import load_feed

    return load_feed(args.stream)


def _stream_instance(instance: Instance, feed) -> Instance:
    """The full input: base facts plus every fact the feed will deliver."""
    return instance | [
        fact for batch in feed.batches for fact in batch.facts
    ]


def _print_stream(program, feed, epoch_outputs, out) -> bool:
    """Print the epoch trajectory and the live delta-preservation verdict.

    Returns ``False`` when the program carries a monotonicity guarantee
    and some epoch's output is not a subset of the final output.
    """
    sizes = ", ".join(str(len(output)) for output in epoch_outputs)
    print(
        f"stream:       {len(feed)} batch(es), {feed.total_facts} fact(s)",
        file=out,
    )
    print(f"epoch sizes:  {sizes}", file=out)
    analysis = analyze(program)
    if analysis.monotonicity is None:
        print("delta check:  skipped (no monotonicity guarantee)", file=out)
        return True
    final = epoch_outputs[-1]
    violated = [
        epoch
        for epoch, output in enumerate(epoch_outputs)
        if not output <= final
    ]
    if violated:
        print(
            f"delta check:  VIOLATED at epoch(s) {violated} "
            f"(output was retracted)",
            file=out,
        )
        return False
    print(
        f"delta check:  OK ({analysis.monotonicity}: every epoch ⊆ final)",
        file=out,
    )
    return True


def _cmd_eval(args, out) -> int:
    program = _load_program(args.program)
    instance = _load_facts(args.facts)
    result = query_for(program)(instance)
    print(f"{len(result)} output fact(s):", file=out)
    _print_instance(result, out)
    return 0


def _cmd_run(args, out) -> int:
    if getattr(args, "kernel", None) is not None:
        # Pin the columnar kernel for the whole command (evaluators are
        # created lazily below, so setting the override up front is safe).
        from .kernel import engine as kernel_engine

        kernel_engine.KERNEL_ENABLED = args.kernel
    from .transducers.faults import CHAOS_PLAN, FaultyChannel, make_scheduler
    from .transducers.runtime import QuiescenceError
    from .transducers.telemetry import build_run_report, write_report

    program = _load_program(args.program)
    instance = _load_facts(args.facts)
    feed = _load_stream(args)
    plan = plan_distribution(program)
    nodes = tuple(f"n{i + 1}" for i in range(args.nodes))
    channel = FaultyChannel(CHAOS_PLAN, args.seed) if args.chaos else None
    scheduler_name = args.scheduler or ("chaos" if args.chaos else "fair")
    scheduler = make_scheduler(scheduler_name, args.seed)
    run = distributed_run(program, instance, nodes=nodes, channel=channel)
    quiesced = True
    try:
        if feed is not None:
            result = run.stream_to_quiescence(feed, scheduler=scheduler)
        else:
            result = run.run_to_quiescence(scheduler=scheduler)
    except QuiescenceError as error:
        quiesced = False
        result = run.global_output()
        print(f"warning:      {error}", file=out)
    expected = plan.query(
        instance if feed is None else _stream_instance(instance, feed)
    )
    print(f"strategy:     {plan.transducer.name}", file=out)
    print(f"network:      {', '.join(nodes)}", file=out)
    print(f"scheduler:    {scheduler_name}", file=out)
    if args.chaos:
        print(f"channel:      faulty ({CHAOS_PLAN.describe()})", file=out)
    preserved = True
    if feed is not None and quiesced:
        preserved = _print_stream(program, feed, run.epoch_outputs, out)
    print(f"{len(result)} output fact(s):", file=out)
    _print_instance(result, out)
    status = "OK" if result == expected else "MISMATCH"
    print(f"matches centralized evaluation: {status}", file=out)
    if args.report:
        report = build_run_report(
            run, scheduler=scheduler, quiesced=quiesced, include_trace=args.trace
        )
        write_report(report, args.report)
        print(f"report:       {args.report}", file=out)
    return 0 if result == expected and quiesced and preserved else 1


def _cmd_cluster(args, out) -> int:
    from dataclasses import replace

    from .cluster import ClusterRun, build_cluster_report
    from .core.analyzer import planned_network
    from .transducers.faults import CHAOS_PLAN, FaultPlan
    from .transducers.runtime import QuiescenceError
    from .transducers.telemetry import write_report

    if args.processes:
        return _cmd_cluster_processes(args, out)
    if args.kill_node or args.kill_after:
        raise ValueError("--kill-node/--kill-after require --processes")
    program = _load_program(args.program)
    instance = _load_facts(args.facts)
    feed = _load_stream(args)
    plan = plan_distribution(program)
    nodes = tuple(f"n{i + 1}" for i in range(args.nodes))
    fault_plan = None
    if args.chaos:
        fault_plan = CHAOS_PLAN
    if args.crash:
        # Crash faults layer on whatever message chaos was requested (a
        # quiet wire otherwise); rate 1.0 guarantees the budget is spent.
        base = fault_plan if fault_plan is not None else FaultPlan(
            duplicate_rate=0.0, delay_rate=0.0, drop_rate=0.0
        )
        fault_plan = replace(
            base, crash_rate=1.0, max_crashes=args.max_crashes
        )
    run = ClusterRun(
        planned_network(program, nodes),
        instance,
        transport=args.transport,
        fault_plan=fault_plan,
        seed=args.seed,
        delta_feed=feed,
    )
    quiesced = True
    try:
        result = run.run_to_quiescence()
    except QuiescenceError as error:
        quiesced = False
        result = run.global_output()
        print(f"warning:      {error}", file=out)
    expected = plan.query(
        instance if feed is None else _stream_instance(instance, feed)
    )
    print(f"strategy:     {plan.transducer.name}", file=out)
    print(f"network:      {', '.join(nodes)}", file=out)
    print(f"transport:    {run.transport_name}", file=out)
    print(f"token rounds: {run.token_probes}", file=out)
    if fault_plan is not None:
        print(f"faults:       {fault_plan.describe()}", file=out)
    if args.crash:
        print(f"crashes:      {run.crashes}", file=out)
        print(f"recoveries:   {run.recoveries}", file=out)
        print(f"wal replayed: {run.wal_replayed}", file=out)
    preserved = True
    if feed is not None and quiesced:
        preserved = _print_stream(program, feed, run.epoch_outputs, out)
    print(f"{len(result)} output fact(s):", file=out)
    _print_instance(result, out)
    status = "OK" if result == expected else "MISMATCH"
    print(f"matches centralized evaluation: {status}", file=out)
    if args.report:
        report = build_cluster_report(run, quiesced=quiesced)
        write_report(report, args.report)
        print(f"report:       {args.report}", file=out)
    return 0 if result == expected and quiesced and preserved else 1


def _cmd_cluster_processes(args, out) -> int:
    from .cluster import ProcessCluster, build_cluster_report
    from .transducers.runtime import QuiescenceError
    from .transducers.telemetry import write_report

    if args.chaos or args.crash:
        # The injected fault layer is an in-process construct; the process
        # runtime's fault story is real kills (--kill-node/--kill-after).
        raise ValueError(
            "--chaos/--crash do not combine with --processes; "
            "use --kill-node NODE --kill-after K for a real SIGKILL"
        )
    if args.kill_node and not args.kill_after:
        raise ValueError("--kill-node requires --kill-after K (transitions)")
    program_text = _read(args.program)
    program = parse_program(program_text)
    instance = _load_facts(args.facts)
    feed = _load_stream(args)
    plan = plan_distribution(program)
    cluster = ProcessCluster(
        {"kind": "program", "text": program_text},
        instance,
        processes=args.processes,
        seed=args.seed,
        run_dir=args.run_dir,
        kill_node=args.kill_node,
        kill_after=args.kill_after,
        delta_feed=feed,
    )
    quiesced = True
    try:
        result = cluster.run_to_quiescence()
    except QuiescenceError as error:
        quiesced = False
        result = cluster.global_output()
        print(f"warning:      {error}", file=out)
    expected = plan.query(
        instance if feed is None else _stream_instance(instance, feed)
    )
    print(f"strategy:     {plan.transducer.name}", file=out)
    print(f"network:      {', '.join(map(str, cluster.nodes()))}", file=out)
    print(f"transport:    {cluster.transport_name} (one OS process per node)", file=out)
    print(f"token rounds: {cluster.token_probes}", file=out)
    if args.kill_node:
        print(f"crashes:      {cluster.crashes}", file=out)
        print(f"recoveries:   {cluster.recoveries}", file=out)
        print(f"wal replayed: {cluster.wal_replayed}", file=out)
    preserved = True
    if feed is not None and quiesced:
        preserved = _print_stream(program, feed, cluster.epoch_outputs, out)
    print(f"{len(result)} output fact(s):", file=out)
    _print_instance(result, out)
    status = "OK" if result == expected else "MISMATCH"
    print(f"matches centralized evaluation: {status}", file=out)
    if args.report:
        report = build_cluster_report(cluster, quiesced=quiesced)
        write_report(report, args.report)
        print(f"report:       {args.report}", file=out)
    return 0 if result == expected and quiesced and preserved else 1



def _cmd_optimize(args, out) -> int:
    import json as _json

    from .optimizer import (
        DEFAULT_COST_MODEL,
        calibration_observations,
        fit_cost_model,
        plan_certificate,
        plan_optimized,
        run_comparison,
    )

    program = parse_program(_read(args.program))
    model = DEFAULT_COST_MODEL
    if args.calibrate:
        model = fit_cost_model(calibration_observations())
    instance = _load_facts(args.facts) if args.facts else None
    facts = (
        len(instance.restrict(program.edb())) if instance is not None else 8
    )
    certificate = plan_certificate(
        program,
        nodes=args.nodes,
        facts=facts,
        model=model,
        check_pairs=args.check_pairs,
        seed=args.seed,
    )
    comparison = None
    if instance is not None:
        comparison = run_comparison(
            program, instance, nodes=args.nodes, seed=args.seed, model=model
        )

    if args.json:
        payload = dict(certificate)
        if args.calibrate:
            payload["cost_model"] = model.to_dict()
        if comparison is not None:
            payload["comparison"] = comparison.to_dict()
        print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0 if comparison is None or comparison.byte_identical else 1

    optimized = plan_optimized(program)
    baseline = certificate["baseline"]
    effective = certificate["effective"]
    cost = certificate["cost"]
    print(f"rules:        {certificate['rules']}", file=out)
    print(f"fragment:     {certificate['fragment']}", file=out)
    print(
        f"baseline:     {baseline['monotonicity'] or 'no guarantee'}"
        f" ({baseline['protocol']})",
        file=out,
    )
    print(
        f"effective:    {effective['monotonicity'] or 'no guarantee'}"
        + (" [upgraded]" if effective["upgraded"] else ""),
        file=out,
    )
    print(f"  reason:     {effective['reason']}", file=out)
    for stratum in certificate["strata"]:
        marks = []
        if stratum["in_negation_cone"]:
            marks.append("in-cone")
        if stratum["head_dominant"]:
            marks.append("head-dominant")
        if stratum["negates"]:
            marks.append("negates " + ", ".join(stratum["negates"]))
        extra = f" ({'; '.join(marks)})" if marks else ""
        print(
            f"  stratum {stratum['index']}:  {stratum['role']:<8} "
            f"{', '.join(stratum['heads'])} [{stratum['fragment']}]{extra}",
            file=out,
        )
    print(f"protocol:     {certificate['protocol']['name']}", file=out)
    predicted, barrier = cost["predicted"], cost["barrier"]
    print(
        f"predicted:    rounds {predicted['rounds']}, transitions "
        f"{predicted['transitions']}, messages {predicted['messages']} "
        f"(nodes={cost['nodes']}, facts={cost['facts']})",
        file=out,
    )
    print(
        f"barrier:      rounds {barrier['rounds']}, transitions "
        f"{barrier['transitions']}, messages {barrier['messages']}"
        + (
            " -> optimized is cheaper"
            if cost["cheaper_than_barrier"]
            else ""
        ),
        file=out,
    )
    if "empirical" in certificate:
        empirical = certificate["empirical"]
        print(
            f"empirical:    {empirical['mode']}: "
            + (
                f"holds={empirical['holds']} over "
                f"{empirical['pairs_checked']} pair(s)"
                if "holds" in empirical
                else f"weakest consistent class "
                f"{empirical['weakest_consistent_class']}"
            ),
            file=out,
        )
    if comparison is not None:
        arm, base_arm = comparison.optimized, comparison.barrier
        print(
            f"execution:    byte-identical={comparison.byte_identical} "
            f"measured-cheaper={comparison.measured_cheaper} "
            f"prediction-agrees={comparison.prediction_agrees}",
            file=out,
        )
        print(
            f"  optimized:  rounds {arm.measured.rounds:g}, transitions "
            f"{arm.measured.transitions:g}, messages {arm.measured.messages:g}"
            f" ({arm.protocol})",
            file=out,
        )
        print(
            f"  barrier:    rounds {base_arm.measured.rounds:g}, transitions "
            f"{base_arm.measured.transitions:g}, messages "
            f"{base_arm.measured.messages:g} ({base_arm.protocol})",
            file=out,
        )
        return 0 if comparison.byte_identical else 1
    return 0


def _cmd_fuzz(args, out) -> int:
    from .conformance import (
        DEFAULT_STACK_NAMES,
        FuzzConfig,
        run_fuzz,
        write_fuzz_report,
    )
    from .conformance.differential import MUTATIONS
    from .conformance.optimizer import OPTIMIZER_MUTATIONS
    from .conformance.streaming import STREAM_MUTATIONS

    stacks = (
        tuple(name.strip() for name in args.stacks.split(",") if name.strip())
        if args.stacks
        else DEFAULT_STACK_NAMES
    )
    mutate: dict[str, str] = {}
    for spec in args.mutate or []:
        stack, sep, name = spec.partition("=")
        # "streaming" and "optimizer" are pseudo-stacks: the mutation
        # plants a bug into that oracle rather than an evaluation stack.
        valid = bool(sep) and (
            (stack in stacks and name in MUTATIONS)
            or (stack == "streaming" and name in STREAM_MUTATIONS)
            or (stack == "optimizer" and name in OPTIMIZER_MUTATIONS)
        )
        if not valid:
            raise ValueError(
                f"--mutate expects STACK=NAME with STACK in {stacks} and "
                f"NAME in {sorted(MUTATIONS)}, streaming=NAME with NAME "
                f"in {sorted(STREAM_MUTATIONS)}, or optimizer=NAME with "
                f"NAME in {sorted(OPTIMIZER_MUTATIONS)}; got {spec!r}"
            )
        mutate[stack] = name
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        stacks=stacks,
        corpus_dir=args.corpus,
        mutate=mutate,
        metamorphic=not args.no_metamorphic,
        streaming=not args.no_streaming,
        optimizer=not args.no_optimizer,
    )
    report = run_fuzz(config, log=lambda line: print(line, file=out))
    print(f"seed:         {report['seed']}", file=out)
    print(f"stacks:       {', '.join(report['stacks'])}", file=out)
    if mutate:
        planted = ", ".join(f"{k}={v}" for k, v in sorted(mutate.items()))
        print(f"mutations:    {planted} (planted-bug mode)", file=out)
    print(
        f"iterations:   {report['iterations_run']}/{report['iterations_requested']}"
        f" ({report['stop_reason']})",
        file=out,
    )
    fragments = ", ".join(
        f"{name}={count}"
        for name, count in sorted(report["cases_by_fragment"].items())
    )
    print(f"fragments:    {fragments}", file=out)
    print(f"divergences:  {len(report['divergences'])}", file=out)
    print(f"metamorphic:  {len(report['metamorphic_violations'])} violation(s)", file=out)
    streamed = ", ".join(
        f"{name}={count}"
        for name, count in sorted(report["streaming_runtimes"].items())
    )
    print(
        f"streaming:    {len(report['streaming_violations'])} violation(s)"
        + (f" ({streamed})" if streamed else ""),
        file=out,
    )
    print(
        f"optimizer:    {len(report['optimizer_violations'])} violation(s)",
        file=out,
    )
    if report["corpus_entries"]:
        for path in report["corpus_entries"]:
            print(f"corpus:       {path}", file=out)
    print(f"elapsed:      {report['timing']['elapsed_seconds']}s", file=out)
    if args.report:
        write_fuzz_report(report, args.report)
        print(f"report:       {args.report}", file=out)
    print(f"verdict:      {'PASS' if report['passed'] else 'FAIL'}", file=out)
    return 0 if report["passed"] else 1


def _cmd_solve_game(args, out) -> int:
    instance = _load_facts(args.facts)
    solution = solve_game(instance)
    print(f"won:   {', '.join(map(repr, sorted(solution.won, key=repr))) or '-'}", file=out)
    print(f"drawn: {', '.join(map(repr, sorted(solution.drawn, key=repr))) or '-'}", file=out)
    print(f"lost:  {', '.join(map(repr, sorted(solution.lost, key=repr))) or '-'}", file=out)
    for position in sorted(solution.won, key=repr):
        moves = ", ".join(map(repr, sorted(solution.winning_moves(position), key=repr)))
        print(f"  {position!r} wins via: {moves}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CALM-hierarchy toolkit: analyze and distribute Datalog¬ programs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = commands.add_parser("analyze", help="classify a program")
    analyze_cmd.add_argument("program", help="path to a .dl program file")
    analyze_cmd.add_argument(
        "--explain", action="store_true", help="per-rule diagnosis and advice"
    )
    analyze_cmd.add_argument(
        "--ilog", action="store_true",
        help="treat the program as ILOG¬ (value invention via '*' heads)",
    )
    analyze_cmd.add_argument(
        "--json", action="store_true",
        help="print the machine-readable classification certificate",
    )
    analyze_cmd.add_argument(
        "--check-pairs", type=int, default=0, metavar="N",
        help="with --json: empirically cross-check the guarantee on N "
        "seeded random (I, J) pairs per addition kind",
    )
    analyze_cmd.add_argument(
        "--seed", type=int, default=0, help="seed for --check-pairs sampling"
    )
    analyze_cmd.set_defaults(handler=_cmd_analyze)

    eval_cmd = commands.add_parser("eval", help="evaluate centrally")
    eval_cmd.add_argument("program")
    eval_cmd.add_argument("facts")
    eval_cmd.set_defaults(handler=_cmd_eval)

    serve_cmd = commands.add_parser(
        "serve", help="run the multi-tenant query/analysis HTTP service"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8765, help="0 picks an ephemeral port"
    )
    serve_cmd.add_argument(
        "--store", default="repro-service.db",
        help="sqlite run-store path (':memory:' for ephemeral)",
    )
    serve_cmd.add_argument("--workers", type=int, default=4)
    serve_cmd.add_argument("--queue-capacity", type=int, default=64)
    serve_cmd.add_argument(
        "--rate-limit", type=int, default=120,
        help="max requests per tenant per window",
    )
    serve_cmd.add_argument(
        "--rate-window", type=float, default=10.0, help="rate window seconds"
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    run_cmd = commands.add_parser("run", help="evaluate on a simulated network")
    run_cmd.add_argument("program")
    run_cmd.add_argument("facts")
    run_cmd.add_argument("--nodes", type=int, default=3)
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument(
        "--chaos",
        action="store_true",
        help="inject channel faults (duplication, delay, drop-with-redelivery)",
    )
    run_cmd.add_argument(
        "--scheduler",
        choices=["fair", "trickle", "singleton", "storm", "starve", "chaos"],
        default=None,
        help="activation schedule (default: fair; chaos when --chaos is given)",
    )
    run_cmd.add_argument(
        "--stream", metavar="FEED",
        help="YAML delta feed (or scenario file) to trickle in: each batch "
        "is injected once the network quiesces, then evaluation resumes "
        "(docs/SCENARIOS.md)",
    )
    run_cmd.add_argument(
        "--report", metavar="PATH", help="write the JSON run report to PATH"
    )
    run_cmd.add_argument(
        "--trace",
        action="store_true",
        help="embed the transition trace in the report",
    )
    run_cmd.add_argument(
        "--kernel",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the interned columnar kernel on (--kernel) or off "
        "(--no-kernel) for this run; default follows REPRO_KERNEL / "
        "REPRO_DISABLE_KERNEL",
    )
    run_cmd.set_defaults(handler=_cmd_run)

    cluster_cmd = commands.add_parser(
        "cluster", help="evaluate on the asynchronous cluster runtime"
    )
    cluster_cmd.add_argument("program")
    cluster_cmd.add_argument("facts")
    cluster_cmd.add_argument("--nodes", type=int, default=3)
    cluster_cmd.add_argument("--seed", type=int, default=0)
    cluster_cmd.add_argument(
        "--transport",
        choices=["memory", "tcp"],
        default="memory",
        help="wire transport (in-process queues or loopback TCP)",
    )
    cluster_cmd.add_argument(
        "--chaos",
        action="store_true",
        help="inject transport faults (duplication, delay, drop-with-redelivery)",
    )
    cluster_cmd.add_argument(
        "--crash",
        action="store_true",
        help="inject node crashes with checkpoint/WAL recovery "
        "(combine with --chaos for message faults too)",
    )
    cluster_cmd.add_argument(
        "--max-crashes",
        type=int,
        default=2,
        metavar="N",
        help="crash budget for --crash (default: 2)",
    )
    cluster_cmd.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="run each node as its own OS process over real TCP "
        "(true parallelism; excludes --chaos/--crash/--nodes/--transport)",
    )
    cluster_cmd.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="with --processes: directory for worker specs, stderr logs "
        "and per-node checkpoints (default: a fresh temp dir)",
    )
    cluster_cmd.add_argument(
        "--kill-node",
        metavar="NODE",
        default=None,
        help="with --processes: SIGKILL this worker mid-run and recover it "
        "from its on-disk snapshot + WAL",
    )
    cluster_cmd.add_argument(
        "--kill-after",
        type=int,
        default=None,
        metavar="K",
        help="with --kill-node: deliver the SIGKILL after K transitions",
    )
    cluster_cmd.add_argument(
        "--stream", metavar="FEED",
        help="YAML delta feed (or scenario file) to inject as delta "
        "envelopes at detected quiescence (works with --processes too; "
        "docs/SCENARIOS.md)",
    )
    cluster_cmd.add_argument(
        "--report", metavar="PATH", help="write the JSON run report to PATH"
    )
    cluster_cmd.set_defaults(handler=_cmd_cluster)

    fuzz_cmd = commands.add_parser(
        "fuzz", help="differential + metamorphic conformance fuzzing"
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0)
    fuzz_cmd.add_argument(
        "--iterations", type=int, default=100, metavar="N",
        help="iteration budget (default: 100)",
    )
    fuzz_cmd.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; stops early once exceeded",
    )
    fuzz_cmd.add_argument(
        "--stacks", metavar="A,B,...", default=None,
        help="comma-separated stack names (default: all six)",
    )
    fuzz_cmd.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="persist minimized failures as corpus entries under DIR",
    )
    fuzz_cmd.add_argument(
        "--mutate", action="append", metavar="STACK=NAME", default=None,
        help="plant a known bug into one stack (validates the fuzzer itself)",
    )
    fuzz_cmd.add_argument(
        "--no-metamorphic", action="store_true",
        help="skip the monotonicity-class metamorphic oracle",
    )
    fuzz_cmd.add_argument(
        "--no-streaming", action="store_true",
        help="skip the live streaming delta-preservation oracle",
    )
    fuzz_cmd.add_argument(
        "--no-optimizer", action="store_true",
        help="skip the per-stratum optimizer soundness oracle",
    )
    fuzz_cmd.add_argument(
        "--report", metavar="PATH", help="write the JSON fuzz report to PATH"
    )
    fuzz_cmd.set_defaults(handler=_cmd_fuzz)

    optimize_cmd = commands.add_parser(
        "optimize", help="per-stratum coordination-cost optimizer"
    )
    optimize_cmd.add_argument("program", help="path to a .dl program file")
    optimize_cmd.add_argument(
        "facts", nargs="?", default=None,
        help="optional fact file: execute optimized vs All-barrier arms",
    )
    optimize_cmd.add_argument(
        "--json", action="store_true",
        help="print the machine-readable PlanCertificate",
    )
    optimize_cmd.add_argument("--nodes", type=int, default=3)
    optimize_cmd.add_argument(
        "--seed", type=int, default=0,
        help="scheduler / empirical-check seed",
    )
    optimize_cmd.add_argument(
        "--check-pairs", type=int, default=0, metavar="N",
        help="empirically cross-check the effective class on N seeded "
        "random (I, J) pairs",
    )
    optimize_cmd.add_argument(
        "--calibrate", action="store_true",
        help="refit the cost model from fresh protocol sweeps instead of "
        "the committed coefficients",
    )
    optimize_cmd.set_defaults(handler=_cmd_optimize)

    game_cmd = commands.add_parser("solve-game", help="solve a win-move game")
    game_cmd.add_argument("facts")
    game_cmd.set_defaults(handler=_cmd_solve_game)

    return parser


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:  # surfaced as a message, not a traceback
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
