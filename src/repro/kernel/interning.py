"""Constant interning: dense integer ids with exact round-trip decoding.

The columnar kernel never computes on raw data values.  Every constant —
instance values and the constants embedded in rule atoms — is interned to a
dense ``int`` through a :class:`SymbolTable`, joins and guards compare
ints, and the final database is decoded back through the same table.
Decoding restores the *exact* objects that were interned (the table keeps
a bidirectional mapping), so ``output_fingerprint`` over a decoded result
is byte-identical to the fingerprint of an evaluation over raw values.

Equality semantics match the set-based engines by construction: the id
map is a plain dict keyed by the values themselves, so values that Python
considers equal (and that a ``frozenset`` of facts would already collapse,
e.g. ``1`` and ``True``) share one id, exactly as they share one fact in
an :class:`~repro.datalog.instance.Instance`.

Tables are append-only and shared across runs of a long-lived evaluator:
ids stay stable, so per-rule generated code (which inlines interned
constant ids as literals) never needs recompiling when new data arrives.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..datalog.instance import Instance
from ..datalog.terms import Fact

__all__ = ["SymbolTable", "intern_instance", "decode_database"]


class SymbolTable:
    """A bidirectional constant table: value -> dense id -> value."""

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._values: list[Hashable] = []

    def intern(self, value: Hashable) -> int:
        """The id for *value*, allocating the next dense id when new."""
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
        return ident

    def intern_tuple(self, values: Iterable[Hashable]) -> tuple[int, ...]:
        return tuple(self.intern(value) for value in values)

    def lookup(self, value: Hashable) -> int | None:
        """The id for *value* without allocating (None when never seen)."""
        return self._ids.get(value)

    def decode(self, ident: int) -> Hashable:
        """The exact value interned under *ident*."""
        return self._values[ident]

    def decode_tuple(self, idents: Iterable[int]) -> tuple[Hashable, ...]:
        values = self._values
        return tuple(values[ident] for ident in idents)

    @property
    def values(self) -> list[Hashable]:
        """The id -> value list (index == id).  Treat as read-only."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids


def intern_instance(
    instance: Iterable[Fact], table: SymbolTable
) -> dict[str, set[tuple[int, ...]]]:
    """Intern every fact of *instance*: relation name -> set of id rows."""
    relations: dict[str, set[tuple[int, ...]]] = {}
    intern = table.intern
    for fact in instance:
        row = tuple(intern(value) for value in fact.values)
        relations.setdefault(fact.relation, set()).add(row)
    return relations


def decode_database(
    relations: dict[str, Iterable[tuple[int, ...]]], table: SymbolTable
) -> Instance:
    """Decode id rows back into an :class:`Instance` of the original values."""
    values = table.values
    unchecked = Fact.unchecked
    return Instance._wrap(
        frozenset(
            unchecked(relation, tuple(values[ident] for ident in row))
            for relation, rows in relations.items()
            for row in rows
        )
    )
