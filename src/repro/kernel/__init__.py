"""Interned columnar evaluation kernel (PR 6).

The fast core behind the default engine: constants interned to dense ints
(:mod:`.interning`), relations stored as sets of int rows with lazy
per-column indexes (:mod:`.relation`), and one generated Python function
per rule specialization (:mod:`.codegen`), driven by a semi-naive fixpoint
that mirrors the tuple engine exactly (:mod:`.engine`).

Gating: ``repro.flags.kernel_enabled()`` (``REPRO_KERNEL`` /
``REPRO_DISABLE_KERNEL`` / the ``engine.KERNEL_ENABLED`` override), always
behind ``repro.flags.plans_enabled()`` at the dispatch point in
``SemiNaiveEvaluator.run`` — so ``REPRO_DISABLE_PLANS`` still restores the
legacy oracle engine wholesale.
"""

from .codegen import CompiledRule, compile_rule
from .engine import KernelEvaluator, evaluate_semipositive
from .interning import SymbolTable, decode_database, intern_instance
from .relation import ColumnarDatabase, ColumnarRelation

__all__ = [
    "CompiledRule",
    "compile_rule",
    "KernelEvaluator",
    "evaluate_semipositive",
    "SymbolTable",
    "decode_database",
    "intern_instance",
    "ColumnarDatabase",
    "ColumnarRelation",
]
