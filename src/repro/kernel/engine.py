"""The kernel evaluator: semi-naive fixpoint over interned columnar data.

:class:`KernelEvaluator` is a drop-in for
:class:`repro.datalog.evaluation.SemiNaiveEvaluator` — same constructor
shape, same ``run(instance, max_iterations=...)`` surface, same
convergence error — but evaluates through the interned columnar pipeline:
constants are interned to dense ints once (:mod:`.interning`), rows live
in :class:`~repro.kernel.relation.ColumnarDatabase` sets with lazy column
indexes, and each rule fires through its generated function
(:mod:`.codegen`).  The result is decoded back to the exact original
values, so fingerprints are byte-identical to the tuple engines.

The fixpoint structure deliberately mirrors ``SemiNaiveEvaluator.run``
step for step — ground-rule prepass (facts visible to later ground rules
immediately), then delta iterations that collect all fresh heads before
applying them — so the two engines agree not only on the fixpoint but on
iteration counts, which keeps ``max_iterations`` behavior identical.

Evaluators are long-lived: rules compile once in ``__init__`` and the
symbol table persists across ``run`` calls (ids are append-only), so the
steady-state cost of a transducer step is the generated loops only.

``KERNEL_ENABLED`` is the tri-state module override consumed by
:func:`repro.flags.kernel_enabled`: ``None`` defers to the environment
(``REPRO_DISABLE_KERNEL`` / ``REPRO_KERNEL``), ``True``/``False`` force.
"""

from __future__ import annotations

from ..datalog.evaluation import EvaluationError
from ..datalog.instance import Instance
from ..datalog.program import Program
from .codegen import CompiledRule, compile_rule
from .interning import SymbolTable, decode_database
from .relation import ColumnarDatabase

__all__ = ["KERNEL_ENABLED", "KernelEvaluator", "evaluate_semipositive"]

#: Tri-state override: None = environment decides (see repro.flags),
#: True/False = forced on/off (tests and conformance stacks flip this).
KERNEL_ENABLED: bool | None = None


class KernelEvaluator:
    """Semi-naive evaluation of a (semi-)positive program, interned + codegen."""

    def __init__(
        self,
        program: Program,
        *,
        check_semipositive: bool = True,
        table: SymbolTable | None = None,
    ) -> None:
        if check_semipositive and not program.is_semi_positive():
            raise EvaluationError(
                "program negates idb relations; use the stratified evaluator"
            )
        self._program = program
        self._table = table if table is not None else SymbolTable()
        self._ground: list[CompiledRule] = []
        self._seeded: list[CompiledRule] = []
        self.compiled = 0
        for rule in program:
            if not rule.pos:
                self._ground.append(compile_rule(rule, None, self._table))
                self.compiled += 1
            else:
                # One specialization per delta-seed occurrence; rule.pos is a
                # frozenset, so every atom is a distinct occurrence.
                for atom in sorted(rule.pos, key=repr):
                    self._seeded.append(compile_rule(rule, atom, self._table))
                    self.compiled += 1

    @property
    def table(self) -> SymbolTable:
        return self._table

    def run(self, instance: Instance, *, max_iterations: int | None = None) -> Instance:
        """Compute the minimal fixpoint of T_P containing *instance*."""
        table = self._table
        intern = table.intern
        db = ColumnarDatabase()
        delta: dict[str, list[tuple[int, ...]]] = {}
        for fact in instance:
            row = tuple(intern(value) for value in fact.values)
            if db.add(fact.relation, row):
                delta.setdefault(fact.relation, []).append(row)
        # Ground rules fire once up front (their bodies read only fixed
        # relations); each derivation is visible to subsequent ground rules,
        # matching the tuple engine's prepass.
        for compiled in self._ground:
            out: list[tuple[int, ...]] = []
            compiled.fire(db, (), out.append)
            head = compiled.head_relation
            for row in out:
                if db.add(head, row):
                    delta.setdefault(head, []).append(row)
        iterations = 0
        while delta:
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise EvaluationError(
                    f"fixpoint did not converge within {max_iterations} iterations"
                )
            # Collect every fresh head against the iteration-start database
            # before applying any of them (the semi-naive barrier).
            fresh: dict[str, set[tuple[int, ...]]] = {}
            for compiled in self._seeded:
                rows = delta.get(compiled.seed_relation)
                if not rows:
                    continue
                out = []
                compiled.fire(db, rows, out.append)
                if out:
                    fresh.setdefault(compiled.head_relation, set()).update(out)
            delta = {}
            for head, candidates in fresh.items():
                new_rows = [row for row in candidates if db.add(head, row)]
                if new_rows:
                    delta[head] = new_rows
        return decode_database(db.rows(), table)


def evaluate_semipositive(
    program: Program, instance: Instance, *, max_iterations: int | None = None
) -> Instance:
    """Kernel twin of :func:`repro.datalog.evaluation.evaluate_semipositive`."""
    return KernelEvaluator(program).run(instance, max_iterations=max_iterations)
