"""Per-rule code generation: one specialized Python function per join.

For every ``(rule, seed_atom)`` pair the kernel emits one plain Python
function whose loop nest is fixed at compile time — the moral equivalent
of :class:`repro.datalog.evaluation.RulePlan`, but with zero per-tuple
interpretation: no binding dicts, no precomputed-position walks, just
locals, tuple subscripts, dict lookups on interned ints, and inlined
constant/inequality/negation guards.  A generated body looks like::

    def _kernel_fire(db, seed, append):
        _r0 = db.relation('E')
        _g0 = _r0.index(0).get
        _n0 = db.relation('S').tuples
        for _t0 in seed:
            if len(_t0) != 2: continue
            v0 = _t0[0]
            v1 = _t0[1]
            for _t1 in _g0(v1, _EMPTY):
                if len(_t1) != 2: continue
                v2 = _t1[1]
                if v2 == v0: continue
                if (v0, v2) in _n0: continue
                append((v0, v2))

Compilation decisions (all deterministic — atoms, inequalities and negated
atoms are ordered by ``repr``):

* **atom order** — greedy bound-variable propagation seeded from the
  required (delta) atom, exactly the static order RulePlan uses, with a
  position tie-break instead of runtime cardinalities;
* **access path** — each atom with at least one bound position draws
  candidates from one lazily-built column index (bound-variable positions
  preferred over constants), re-checking the remaining bound positions
  inline; atoms with no bound position scan the relation;
* **guards** — inequality and negation checks are emitted at the
  shallowest loop depth where all their variables are bound, so failing
  branches are pruned before deeper loops run;
* **constants** — interned to ids before emission and inlined as int
  literals, which is what keeps the table append-only (ids never move).

Negated atoms read the *live* row set of their relation, matching the
tuple engines' check against the full current database.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..datalog.rules import Rule
from ..datalog.terms import Atom, Variable
from .interning import SymbolTable
from .relation import ColumnarDatabase

__all__ = ["CompiledRule", "compile_rule"]

#: Shared default for index ``.get`` misses inside generated loops.
_EMPTY: tuple = ()


class CompiledRule:
    """One generated firing function plus its dispatch metadata."""

    __slots__ = ("rule", "seed_atom", "seed_relation", "head_relation", "fire", "source")

    def __init__(
        self,
        rule: Rule,
        seed_atom: Atom | None,
        fire: Callable[[ColumnarDatabase, Iterable[tuple], Callable], None],
        source: str,
    ) -> None:
        self.rule = rule
        self.seed_atom = seed_atom
        self.seed_relation = seed_atom.relation if seed_atom is not None else None
        self.head_relation = rule.head.relation
        self.fire = fire
        self.source = source


class _Emitter:
    """Indentation-tracking line buffer for the generated source."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _order_atoms(rule: Rule, seed_atom: Atom | None) -> list[Atom]:
    """The static join order: greedy bound-variable propagation from the
    seed atom, ties broken by the deterministic ``repr`` order."""
    remaining = sorted(rule.pos, key=repr)
    if seed_atom is not None:
        remaining.remove(seed_atom)
    bound: set[Variable] = set() if seed_atom is None else seed_atom.variables()
    ordered: list[Atom] = []
    while remaining:
        best_position = 0
        best_boundness = -1
        for position, atom in enumerate(remaining):
            boundness = sum(
                1
                for term in atom.terms
                if not isinstance(term, Variable) or term in bound
            )
            if boundness > best_boundness:
                best_position, best_boundness = position, boundness
        atom = remaining.pop(best_position)
        ordered.append(atom)
        bound |= atom.variables()
    return ordered


def compile_rule(
    rule: Rule, seed_atom: Atom | None, table: SymbolTable
) -> CompiledRule:
    """Generate and ``exec`` the specialized firing function for one rule.

    With a *seed_atom*, the function enumerates the semi-naive seeds from
    the ``seed`` row iterable (the delta of that relation) and joins the
    remaining positive atoms against the database.  Without one the rule
    must be ground (empty positive body): the body runs once per call.
    Appended rows may repeat; the engine dedupes against the database.
    """
    if seed_atom is None and rule.pos:
        raise ValueError("non-ground rules compile against a seed atom")

    emitter = _Emitter()
    prelude: list[str] = []
    relation_slots: dict[str, str] = {}
    slot_count = 0

    def relation_slot(name: str) -> str:
        nonlocal slot_count
        slot = relation_slots.get(name)
        if slot is None:
            slot = f"_r{slot_count}"
            slot_count += 1
            relation_slots[name] = slot
            prelude.append(f"{slot} = db.relation({name!r})")
        return slot

    # Pre-pass: the atom order fixes where every variable first binds
    # (depth 0 = the seed row, depth i = inside the i-th generated loop),
    # so guard code can be laid out before any loop is emitted.
    ordered = _order_atoms(rule, seed_atom)
    var_names: dict[Variable, str] = {}
    bind_depth: dict[Variable, int] = {}

    def visit(atom: Atom, depth: int) -> None:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in bind_depth:
                bind_depth[term] = depth
                var_names[term] = f"v{len(var_names)}"

    if seed_atom is not None:
        visit(seed_atom, 0)
    for atom_number, atom in enumerate(ordered):
        visit(atom, atom_number + 1)

    def term_expr(term: object) -> str:
        """The expression for a term: a bound local or an interned literal."""
        if isinstance(term, Variable):
            return var_names[term]
        return repr(table.intern(term))

    # Guard lines keyed by the shallowest depth where they are decidable.
    # Ground rules run outside any loop, so their guards reject with
    # ``return`` instead of ``continue``.
    bail = "continue" if (seed_atom is not None or ordered) else "return"
    pending: list[tuple[int, str]] = []
    for ineq in sorted(rule.ineq, key=repr):
        depth = max(bind_depth[v] for v in ineq.variables())
        pending.append(
            (depth, f"if {var_names[ineq.left]} == {var_names[ineq.right]}: {bail}")
        )
    for neg_number, atom in enumerate(sorted(rule.neg, key=repr)):
        slot = f"_n{neg_number}"
        prelude.append(f"{slot} = db.relation({atom.relation!r}).tuples")
        depth = max((bind_depth[v] for v in atom.variables()), default=0)
        if atom.terms:
            inner = ", ".join(term_expr(term) for term in atom.terms)
            key = f"({inner},)" if len(atom.terms) == 1 else f"({inner})"
        else:
            key = "()"
        pending.append((depth, f"if {key} in {slot}: {bail}"))

    def flush_guards(depth: int) -> None:
        for ready_depth, line in pending:
            if ready_depth == depth:
                emitter.emit(line)

    def emit_atom_bindings(atom: Atom, row: str, depth: int, skip: int | None) -> None:
        """Arity guard, position checks, and new-variable binds for one atom.

        *skip* is the position already guaranteed by the index lookup the
        row was drawn from (checking it again would be dead code).
        """
        emitter.emit(f"if len({row}) != {atom.arity}: continue")
        first_seen: dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if not isinstance(term, Variable):
                if position != skip:
                    emitter.emit(
                        f"if {row}[{position}] != {table.intern(term)}: continue"
                    )
            elif bind_depth[term] < depth:
                if position != skip:
                    emitter.emit(f"if {row}[{position}] != {var_names[term]}: continue")
            elif term in first_seen:
                emitter.emit(
                    f"if {row}[{position}] != {row}[{first_seen[term]}]: continue"
                )
            else:
                first_seen[term] = position
                emitter.emit(f"{var_names[term]} = {row}[{position}]")

    emitter.emit("def _kernel_fire(db, seed, append):")
    emitter.depth = 1
    body_start = len(emitter.lines)

    if seed_atom is not None:
        row = "_t0"
        emitter.emit(f"for {row} in seed:")
        emitter.depth += 1
        emit_atom_bindings(seed_atom, row, 0, None)
        flush_guards(0)

    for atom_number, atom in enumerate(ordered):
        loop_depth = atom_number + 1
        row = f"_t{loop_depth}"
        slot = relation_slot(atom.relation)
        # Access path: prefer an index probe on a bound-variable position,
        # then on a constant position, else a full scan.
        probe: tuple[int, str] | None = None
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable) and bind_depth[term] < loop_depth:
                probe = (position, var_names[term])
                break
        if probe is None:
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    probe = (position, repr(table.intern(term)))
                    break
        if probe is None:
            emitter.emit(f"for {row} in {slot}.tuples:")
            skip = None
        else:
            position, key = probe
            getter = f"_g{atom_number}"
            prelude.append(f"{getter} = {slot}.index({position}).get")
            emitter.emit(f"for {row} in {getter}({key}, _EMPTY):")
            skip = position
        emitter.depth += 1
        emit_atom_bindings(atom, row, loop_depth, skip)
        flush_guards(loop_depth)

    if seed_atom is None and not ordered:
        # Ground rule: guards (depth 0) run once, straight-line.
        flush_guards(0)

    head = rule.head
    if head.terms:
        inner = ", ".join(term_expr(term) for term in head.terms)
        head_row = f"({inner},)" if len(head.terms) == 1 else f"({inner})"
    else:
        head_row = "()"
    emitter.emit(f"append({head_row})")

    # Splice the prelude (relation slots, index getters, negation sets)
    # ahead of the loops, inside the function body.
    emitter.lines[body_start:body_start] = [
        "    " + line for line in prelude
    ]
    source = emitter.source()
    namespace: dict = {"_EMPTY": _EMPTY}
    exec(  # noqa: S102 — the source is generated here, from validated rules
        compile(source, f"<kernel:{head.relation}>", "exec"), namespace
    )
    return CompiledRule(rule, seed_atom, namespace["_kernel_fire"], source)
