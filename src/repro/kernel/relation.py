"""Columnar storage for interned relations.

A :class:`ColumnarRelation` is a hash-set of int rows plus *lazy*
per-column inverted indexes: a column index is built the first time some
generated rule body actually probes that column (the plan's bound
positions), and from then on is maintained incrementally by :meth:`add`.
Relations that are only ever scanned — or columns no plan binds — never
pay for indexing, mirroring the lazy-column fix in
:class:`repro.datalog.evaluation.FactIndex`.

Semi-naive evaluation needs nothing more: the engine keeps the *delta* as
plain per-relation row lists (seeds are scanned, never probed), and the
full database is updated between iterations, so every already-built column
index stays delta-aware — recursion touches only new rows on the seed side
and index maintenance is O(built columns) per new row.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["ColumnarRelation", "ColumnarDatabase"]


class ColumnarRelation:
    """One relation: a set of int rows with lazily-built column indexes."""

    __slots__ = ("name", "tuples", "_columns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.tuples: set[tuple[int, ...]] = set()
        self._columns: dict[int, dict[int, list[tuple[int, ...]]]] = {}

    def add(self, row: tuple[int, ...]) -> bool:
        """Insert a row; returns True when it was new.

        Only columns that some plan has already probed are maintained;
        unbuilt columns are materialized on first :meth:`index` call.
        """
        tuples = self.tuples
        if row in tuples:
            return False
        tuples.add(row)
        for position, column in self._columns.items():
            if position < len(row):
                column.setdefault(row[position], []).append(row)
        return True

    def add_all(self, rows: Iterable[tuple[int, ...]]) -> None:
        for row in rows:
            self.add(row)

    def index(self, position: int) -> dict[int, list[tuple[int, ...]]]:
        """The inverted index for *position*: value id -> rows.

        Built on first use from the current rows (skipping rows too short
        for the column, mirroring the arity guard of the tuple engines),
        then kept current by :meth:`add`.
        """
        column = self._columns.get(position)
        if column is None:
            column = {}
            for row in self.tuples:
                if position < len(row):
                    column.setdefault(row[position], []).append(row)
            self._columns[position] = column
        return column

    def indexed_positions(self) -> tuple[int, ...]:
        """The columns built so far (observability / tests)."""
        return tuple(sorted(self._columns))

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, row: tuple[int, ...]) -> bool:
        return row in self.tuples


class ColumnarDatabase:
    """A mutable interned database: relation name -> :class:`ColumnarRelation`.

    :meth:`relation` creates empty relations on demand so generated code
    can bind negation sets and scan loops without existence checks; an
    empty relation stays an empty set.
    """

    __slots__ = ("_relations",)

    def __init__(self) -> None:
        self._relations: dict[str, ColumnarRelation] = {}

    def relation(self, name: str) -> ColumnarRelation:
        relation = self._relations.get(name)
        if relation is None:
            relation = ColumnarRelation(name)
            self._relations[name] = relation
        return relation

    def add(self, name: str, row: tuple[int, ...]) -> bool:
        return self.relation(name).add(row)

    def rows(self) -> dict[str, set[tuple[int, ...]]]:
        """A relation -> row-set view of the non-empty relations."""
        return {
            name: relation.tuples
            for name, relation in self._relations.items()
            if relation.tuples
        }

    def total_rows(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def __contains__(self, name: str) -> bool:
        relation = self._relations.get(name)
        return relation is not None and bool(relation.tuples)
