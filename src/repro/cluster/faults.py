"""Fault injection at the transport layer: the :class:`FaultyChannel`
semantics of :mod:`repro.transducers.faults`, recast as endpoint wrappers.

The synchronous simulator injects faults inside its global ``Channel``
object; a cluster has no such object, so faults live where they live in a
real system — on the sender's edge of the wire.  A :class:`FaultyEndpoint`
wraps a plain endpoint and applies the same :class:`FaultPlan` knobs,
**per fact** (matching the sync semantics, where each fact of a send draws
independently):

* **duplicate** — the fact is dispatched 2..max_copies times; legal because
  mailboxes are multisets (and the protocols are idempotent).
* **delay** — the fact is withheld and redelivered after a bounded number
  of ticks (``plan.max_delay`` × ``tick`` seconds of real time).
* **drop** — identical to delay with the longer ``redelivery_delay`` bound:
  nothing is ever lost for good, preserving the fair-run guarantee.

Control traffic (termination tokens, STOP) bypasses the fault path — the
Safra ring assumes reliable token forwarding, just as the paper's fair-run
semantics assumes eventual delivery.  Crucially for the termination
detector, every copy this wrapper accepts is *counted at accept time* (the
``send`` return value), so a delayed fact keeps the global
sent-minus-received sum positive and quiescence cannot be declared while
anything is still held.
"""

from __future__ import annotations

import asyncio
import random
from typing import Hashable

from ..transducers.faults import CHAOS_PLAN, FaultPlan
from .codec import KIND_DATA, Envelope, decode_envelope, encode_envelope, peek_kind
from .transport import Endpoint

__all__ = ["FaultyEndpoint", "FaultLayer", "CHAOS_PLAN", "FaultPlan"]


class FaultLayer:
    """Shared state for all faulty endpoints of one cluster run: the plan,
    aggregate counters, and the set of in-flight redelivery tasks."""

    def __init__(
        self, plan: FaultPlan = CHAOS_PLAN, seed: int = 0, *, tick: float = 0.002
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.tick = tick
        self.counters = {
            "duplicated": 0,
            "delayed": 0,
            "dropped": 0,
            "redelivered": 0,
        }
        self._tasks: set[asyncio.Task] = set()
        self._held = 0
        self.held_high_water = 0

    def rng_for(self, node: Hashable) -> random.Random:
        # String seeding is process-independent (unlike hash()), so a seeded
        # chaos cluster draws the same fault schedule on every run.
        return random.Random(f"cluster-faults:{self.seed}:{node!r}")

    def wrap(self, endpoint: Endpoint) -> "FaultyEndpoint":
        return FaultyEndpoint(endpoint, self)

    def note_held(self, delta: int) -> None:
        self._held += delta
        if self._held > self.held_high_water:
            self.held_high_water = self._held

    def held(self) -> int:
        """Facts currently withheld for later redelivery (all endpoints)."""
        return self._held

    def track(self, task: asyncio.Task) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def drain(self) -> None:
        """Await any still-scheduled redeliveries (shutdown hygiene; by the
        time termination is detected the set is necessarily empty)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)


class FaultyEndpoint(Endpoint):
    """An endpoint whose *data* sends pass through the fault plan."""

    def __init__(self, inner: Endpoint, layer: FaultLayer) -> None:
        self._inner = inner
        self._layer = layer
        self._rng = layer.rng_for(inner.node)

    @property
    def node(self) -> Hashable:
        return self._inner.node

    async def recv(self) -> bytes:
        return await self._inner.recv()

    def recv_nowait(self) -> bytes | None:
        return self._inner.recv_nowait()

    async def send(self, target: Hashable, frame: bytes) -> int:
        if peek_kind(frame) != KIND_DATA:
            return await self._inner.send(target, frame)
        envelope = decode_envelope(frame)
        plan = self._layer.plan
        rng = self._rng
        counters = self._layer.counters
        now: list = []
        held: list[tuple[int, object]] = []  # (ticks, fact)
        for fact in envelope.facts:
            draw = rng.random()
            if draw < plan.drop_rate:
                held.append((1 + rng.randrange(plan.redelivery_delay), fact))
                counters["dropped"] += 1
            elif draw < plan.drop_rate + plan.delay_rate:
                held.append((1 + rng.randrange(plan.max_delay), fact))
                counters["delayed"] += 1
            else:
                copies = 1
                if rng.random() < plan.duplicate_rate:
                    copies = rng.randint(2, plan.max_copies)
                    counters["duplicated"] += copies - 1
                now.extend([fact] * copies)
        dispatched = 0
        if now:
            dispatched += await self._inner.send(
                target, encode_envelope(self._replace_facts(envelope, now))
            )
        for ticks, fact in held:
            # Each withheld fact becomes its own in-flight envelope, counted
            # here and now: the sender's Safra counter must cover it from the
            # moment it is accepted, or termination could be declared while
            # the redelivery timer is still pending.
            dispatched += 1
            self._layer.note_held(1)
            task = asyncio.ensure_future(
                self._redeliver(target, self._replace_facts(envelope, [fact]), ticks)
            )
            self._layer.track(task)
        return dispatched

    def _replace_facts(self, envelope: Envelope, facts: list) -> Envelope:
        return Envelope(
            kind=envelope.kind,
            sender=envelope.sender,
            round=envelope.round,
            sequence=envelope.sequence,
            facts=tuple(facts),
        )

    async def _redeliver(self, target: Hashable, envelope: Envelope, ticks: int) -> None:
        await asyncio.sleep(ticks * self._layer.tick)
        try:
            await self._inner.send(target, encode_envelope(envelope))
            self._layer.counters["redelivered"] += 1
        finally:
            self._layer.note_held(-1)
