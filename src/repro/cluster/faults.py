"""Fault injection at the transport layer: the :class:`FaultyChannel`
semantics of :mod:`repro.transducers.faults`, recast as endpoint wrappers.

The synchronous simulator injects faults inside its global ``Channel``
object; a cluster has no such object, so faults live where they live in a
real system — on the sender's edge of the wire.  A :class:`FaultyEndpoint`
wraps a plain endpoint and applies the same :class:`FaultPlan` knobs,
**per fact** (matching the sync semantics, where each fact of a send draws
independently):

* **duplicate** — the fact is dispatched 2..max_copies times; legal because
  mailboxes are multisets (and the protocols are idempotent).
* **delay** — the fact is withheld and redelivered after a bounded number
  of ticks (``plan.max_delay`` × ``tick`` seconds of real time).
* **drop** — identical to delay with the longer ``redelivery_delay`` bound:
  nothing is ever lost for good, preserving the fair-run guarantee.

Control traffic (termination tokens, STOP) bypasses the fault path — the
Safra ring assumes reliable token forwarding, just as the paper's fair-run
semantics assumes eventual delivery.  Crucially for the termination
detector, every copy this wrapper accepts is *counted at accept time* (the
``send`` return value), so a delayed fact keeps the global
sent-minus-received sum positive and quiescence cannot be declared while
anything is still held.

The layer also schedules **crashes** (``plan.crash_rate`` /
``plan.max_crashes``): at each decision point a node's runtime offers
(:meth:`FaultLayer.maybe_crash`), a per-node seeded stream decides whether
to raise :exc:`NodeCrashed`, killing that node's task mid-round.  Crashes
live outside :data:`~repro.transducers.faults.FAULT_COUNTER_NAMES` —
they are a cluster-only adversary with no synchronous counterpart, and
keeping them out of ``counters`` keeps the message-fault vocabulary
identical between the simulator and the cluster.
"""

from __future__ import annotations

import asyncio
import random
from typing import Hashable

from ..transducers.faults import CHAOS_PLAN, FAULT_COUNTER_NAMES, FaultPlan
from .codec import KIND_DATA, Envelope, decode_envelope, encode_envelope, peek_kind
from .transport import Endpoint

__all__ = [
    "FaultyEndpoint",
    "FaultLayer",
    "NodeCrashed",
    "CHAOS_PLAN",
    "CRASH_PLAN",
    "FaultPlan",
    "REDELIVERY_SEQUENCE_BASE",
]

#: The chaos plan plus an aggressive crash schedule: every decision point
#: crashes (until the per-run budget is spent), so any crash-mode gate run
#: is guaranteed to exercise at least one recovery.
CRASH_PLAN = FaultPlan(
    duplicate_rate=0.25,
    delay_rate=0.25,
    drop_rate=0.15,
    crash_rate=1.0,
    max_crashes=2,
)

#: Redelivered envelopes get fresh sequences allocated from this base —
#: far above anything a node's own allocator (which counts up from 1)
#: reaches, so fault-layer frames can never collide with live traffic.
REDELIVERY_SEQUENCE_BASE = 1 << 48


class NodeCrashed(RuntimeError):
    """Raised inside a node's task by an injected crash fault.  The run
    supervisor catches it and restarts the node from durable state."""

    def __init__(self, node: Hashable) -> None:
        super().__init__(f"injected crash on node {node!r}")
        self.node = node


class FaultLayer:
    """Shared state for all faulty endpoints of one cluster run: the plan,
    aggregate counters, and the set of in-flight redelivery tasks."""

    def __init__(
        self, plan: FaultPlan = CHAOS_PLAN, seed: int = 0, *, tick: float = 0.002
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.tick = tick
        # Same counter vocabulary as the synchronous FaultyChannel; like
        # there, "dropped" counts drop-with-redelivery (nothing is lost).
        self.counters = {name: 0 for name in FAULT_COUNTER_NAMES}
        self.crashes = 0
        self._tasks: set[asyncio.Task] = set()
        self._held = 0
        self.held_high_water = 0
        self._redelivery_sequences: dict[Hashable, int] = {}
        self._crash_rngs: dict[Hashable, random.Random] = {}

    def rng_for(self, node: Hashable) -> random.Random:
        # String seeding is process-independent (unlike hash()), so a seeded
        # chaos cluster draws the same fault schedule on every run.
        return random.Random(f"cluster-faults:{self.seed}:{node!r}")

    def next_redelivery_sequence(self, sender: Hashable) -> int:
        """Mint a fresh wire sequence for a redelivered envelope.

        The fault layer splits one sent envelope into several in-flight
        frames; reusing the original sequence would give distinct frames
        one ``(sender, sequence)`` identity, which breaks anything keyed
        on it (WAL replay, wire tracing).  Allocation is per sender, from
        a range disjoint from node-allocated sequences.
        """
        sequence = self._redelivery_sequences.get(sender, REDELIVERY_SEQUENCE_BASE)
        self._redelivery_sequences[sender] = sequence + 1
        return sequence

    def maybe_crash(self, node: Hashable) -> None:
        """One crash decision point: raise :exc:`NodeCrashed` if the plan's
        per-node stream says so and the run's crash budget isn't spent.

        The stream is separate from the message-fault stream so enabling
        crashes does not perturb a seed's duplicate/delay/drop schedule.
        """
        plan = self.plan
        if plan.crash_rate <= 0.0 or self.crashes >= plan.max_crashes:
            return
        rng = self._crash_rngs.get(node)
        if rng is None:
            rng = random.Random(f"cluster-crash:{self.seed}:{node!r}")
            self._crash_rngs[node] = rng
        if rng.random() < plan.crash_rate:
            self.crashes += 1
            raise NodeCrashed(node)

    def wrap(self, endpoint: Endpoint) -> "FaultyEndpoint":
        return FaultyEndpoint(endpoint, self)

    def note_held(self, delta: int) -> None:
        self._held += delta
        if self._held > self.held_high_water:
            self.held_high_water = self._held

    def held(self) -> int:
        """Facts currently withheld for later redelivery (all endpoints)."""
        return self._held

    def track(self, task: asyncio.Task) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def drain(self) -> None:
        """Await any still-scheduled redeliveries (shutdown hygiene; by the
        time termination is detected the set is necessarily empty)."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)


class FaultyEndpoint(Endpoint):
    """An endpoint whose *data* sends pass through the fault plan."""

    def __init__(self, inner: Endpoint, layer: FaultLayer) -> None:
        self._inner = inner
        self._layer = layer
        self._rng = layer.rng_for(inner.node)

    @property
    def node(self) -> Hashable:
        return self._inner.node

    async def recv(self) -> bytes:
        return await self._inner.recv()

    def recv_nowait(self) -> bytes | None:
        return self._inner.recv_nowait()

    async def send(self, target: Hashable, frame: bytes) -> int:
        if peek_kind(frame) != KIND_DATA:
            return await self._inner.send(target, frame)
        envelope = decode_envelope(frame)
        plan = self._layer.plan
        rng = self._rng
        counters = self._layer.counters
        now: list = []
        held: list[tuple[int, object]] = []  # (ticks, fact)
        for fact in envelope.facts:
            draw = rng.random()
            if draw < plan.drop_rate:
                held.append((1 + rng.randrange(plan.redelivery_delay), fact))
                counters["dropped"] += 1
            elif draw < plan.drop_rate + plan.delay_rate:
                held.append((1 + rng.randrange(plan.max_delay), fact))
                counters["delayed"] += 1
            else:
                copies = 1
                if rng.random() < plan.duplicate_rate:
                    copies = rng.randint(2, plan.max_copies)
                    counters["duplicated"] += copies - 1
                now.extend([fact] * copies)
        dispatched = 0
        if now:
            # The immediate portion stays one frame, so it keeps the
            # original sequence; only the extra frames minted below need
            # fresh identities.
            dispatched += await self._inner.send(
                target,
                encode_envelope(
                    self._replace_facts(envelope, now, envelope.sequence)
                ),
            )
        for ticks, fact in held:
            # Each withheld fact becomes its own in-flight envelope with a
            # freshly minted sequence (distinct frames must have distinct
            # (sender, sequence) identities), counted here and now: the
            # sender's Safra counter must cover it from the moment it is
            # accepted, or termination could be declared while the
            # redelivery timer is still pending.
            dispatched += 1
            self._layer.note_held(1)
            sequence = self._layer.next_redelivery_sequence(envelope.sender)
            task = asyncio.ensure_future(
                self._redeliver(
                    target, self._replace_facts(envelope, [fact], sequence), ticks
                )
            )
            self._layer.track(task)
        return dispatched

    def _replace_facts(
        self, envelope: Envelope, facts: list, sequence: int
    ) -> Envelope:
        return Envelope(
            kind=envelope.kind,
            sender=envelope.sender,
            round=envelope.round,
            sequence=sequence,
            facts=tuple(facts),
        )

    async def _redeliver(self, target: Hashable, envelope: Envelope, ticks: int) -> None:
        await asyncio.sleep(ticks * self._layer.tick)
        try:
            await self._inner.send(target, encode_envelope(envelope))
            self._layer.counters["redelivered"] += 1
        finally:
            self._layer.note_held(-1)
