"""Cluster telemetry: :class:`~repro.transducers.telemetry.RunReport` for
asynchronous runs.

The report layout is shared with the synchronous simulator so sweep
tooling can diff the two sides of the divergence gate directly; cluster
runs additionally populate ``transport``, ``token_rounds`` (Safra probe
circulations), ``in_flight_high_water`` (peak facts withheld by the fault
layer), per-node ``mailbox_high_water``, and — when a checkpoint store is
attached — the crash-recovery counters ``crashes``/``recoveries``/
``wal_replayed``/``snapshot_bytes``.
"""

from __future__ import annotations

from ..transducers.telemetry import (
    NodeReport,
    RunReport,
    output_fingerprint,
)
from .runtime import ClusterRun

__all__ = ["build_cluster_report"]


def build_cluster_report(run: ClusterRun, *, quiesced: bool = True) -> RunReport:
    """Assemble the structured report for a finished cluster run."""
    output = run.global_output()
    per_node = []
    for node in run.nodes():
        stats = run.node_stats[node]
        state = run.state(node)
        per_node.append(
            NodeReport(
                node=repr(node),
                transitions=stats.transitions,
                heartbeats=stats.heartbeats,
                deliveries=stats.deliveries,
                sent_facts=stats.sent_facts,
                buffer_high_water=stats.buffer_high_water,
                buffered_at_end=0,  # quiescence ⇒ every mailbox drained
                output_facts=len(state.output),
                memory_facts=len(state.memory),
                mailbox_high_water=stats.buffer_high_water,
            )
        )
    return RunReport(
        protocol=run.network.transducer.name,
        nodes=tuple(repr(node) for node in run.nodes()),
        policy=run.network.policy.name,
        scheduler="async",
        channel=run.transport_name,
        quiesced=quiesced,
        metrics=run.metrics.to_dict(),
        faults=run.fault_counters(),
        per_node=tuple(per_node),
        output_facts=len(output),
        output_fingerprint=output_fingerprint(output),
        transport=run.transport_name,
        token_rounds=run.token_probes,
        in_flight_high_water=run.in_flight_high_water,
        crashes=run.crashes,
        recoveries=run.recoveries,
        wal_replayed=run.wal_replayed,
        snapshot_bytes=run.snapshot_bytes,
    )
