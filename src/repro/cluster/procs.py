"""True multi-process scale-out: one OS process per transducer node.

The asyncio runtime (:mod:`repro.cluster.runtime`) made the cluster
*concurrent*; this module makes it *parallel*.  Each node runs in its own
spawned Python process — its own GIL, its own interner, its own plan cache
— hosting an unmodified :class:`~repro.cluster.runtime.ClusterNode` over a
real TCP data plane.  A parent :class:`ProcessCluster` coordinates:

* **sharding** — the parent distributes the input database horizontally
  with the workload's own distribution policy (the paper's domain-guided
  policies *are* a sharding scheme, Thm 4.4) and ships each worker only
  its fragment, wire-codec-encoded;
* **handshake** — workers bind a data-plane server on an ephemeral port,
  dial the parent's control socket, say HELLO with their port, and block
  until the parent broadcasts the full PEERS address map; the Safra token
  ring then runs worker-to-worker with no parent involvement;
* **monitoring / recovery** — the parent watches every child; a worker
  that dies without delivering a result (e.g. a real ``SIGKILL``) is
  respawned over the same on-disk checkpoint directory and recovers
  through the ordinary snapshot + WAL-replay path, while the parent
  announces the new address (PEER-UPDATE) so live peers reconnect and
  retransmit;
* **result collection** — each worker sends its final node state over the
  control plane; the parent folds them into the same telemetry surface
  :class:`~repro.cluster.runtime.ClusterRun` exposes, so reports and the
  divergence gate treat both runtimes identically.

At-least-once delivery, exactly-once effects
--------------------------------------------

A kill can strand frames three ways, and each has a dedicated repair:

1. *Receiver died before accepting a delivered frame* — the frame was
   never WAL-logged, so the sender's volatile per-peer outbox (every
   frame it ever sent) is retransmitted wholesale when the parent
   announces the peer's restart.
2. *Receiver accepted (WAL-logged) a frame the sender retransmits anyway*
   — receivers deduplicate by durable ``(sender, sequence)`` identity
   (``ClusterNode(dedup=True)``), rebuilt from the WAL on recovery, and
   drop the copy without touching the Safra counter.
3. *Sender died after logging a send that never left user space* — the
   recovering sender re-dispatches the byte-identical regenerated frame
   (uncounted); case 2 absorbs it at peers that already had it.

The Safra counting invariant survives all three because acceptance and
dispatch are counted exactly once, durably, and duplicates are dropped
silently.  Termination is decided by the unmodified token ring; the
parent only relays a synthetic STOP ("finish") to workers that were down
when the real one was broadcast.

The scaling workload
--------------------

The committed scaling curve measures a fixed *partitionable* workload:
disjoint win-move games whose positions are block-encoded (component ``c``
owns values ``c*SCALING_BLOCK ..``) so
:func:`~repro.transducers.policy.block_domain_assignment` co-locates every
game on one node.  Win-move distributes over disconnected games, so each
worker solves its fragment locally
(:func:`~repro.transducers.protocols.local_shard_transducer`) and the
union equals the centralized Q(I) — asserted on every run.  Unlike the
Section-4 protocol transducers (which flood their inputs so every node
sees everything), sharding here genuinely shrinks the work: one deep game
no longer drags every co-located shallow game through its alternating
fixpoint rounds (see :func:`scaling_workload` for the cost argument).
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import struct
import sys
import tempfile
import time
from typing import Hashable, Iterable, Sequence

from ..datalog.instance import Instance
from ..datalog.terms import Fact
from ..transducers.policy import (
    Network,
    block_domain_assignment,
    domain_guided_policy,
)
from ..transducers.protocols import Section4Protocol, local_shard_transducer
from ..transducers.runtime import (
    NodeState,
    NodeStats,
    QuiescenceError,
    RunMetrics,
    TransducerNetwork,
)
from .checkpoint import DiskCheckpointStore, NodeJournal
from .codec import (
    KIND_STOP,
    Envelope,
    decode_value,
    encode_envelope,
    encode_value,
)
from .runtime import ClusterNode
from .transport import (
    DEFAULT_MAILBOX_CAPACITY,
    Mailbox,
    TransportError,
    dial_with_retry,
)

__all__ = [
    "ProcessCluster",
    "SCALING_BLOCK",
    "scaling_workload",
    "scaling_workload_by_key",
    "workload_spec_for",
    "build_proc_network",
    "encode_facts_hex",
    "decode_facts_hex",
]

_U32 = struct.Struct("<I")

#: Vertex-value stride per component of the scaling workload; also the
#: block size of its co-locating domain assignment.
SCALING_BLOCK = 1_000_000

#: Respawn budget per node — a worker that cannot stay alive this many
#: times is a bug (or a hostile host), not a fault to be healed.
MAX_RESTARTS = 3


# ----------------------------------------------------------------------
# Wire helpers: control-plane JSON frames and codec-hex fact lists
# ----------------------------------------------------------------------


def encode_facts_hex(facts: Iterable[Fact]) -> str:
    """A sorted fact list as hex of its wire-codec encoding (the same
    tagged-value format the data plane and the WAL speak)."""
    return encode_value(
        tuple((fact.relation, fact.values) for fact in sorted(facts))
    ).hex()


def decode_facts_hex(text: str) -> tuple[Fact, ...]:
    value = decode_value(bytes.fromhex(text))
    return tuple(Fact(relation, values) for relation, values in value)


async def _close_writers(writers) -> None:
    """Close stream writers *cleanly*: close them all, then await each
    ``wait_closed`` so buffered frames (PEER-UPDATE, finish, results) are
    flushed to the kernel before the event loop dies — dropping the waits
    loses frames and fires ResourceWarnings under ``-W error``.  Errors
    are suppressed per writer: a peer that already died must not keep the
    rest from closing.
    """
    writers = list(writers)
    for writer in writers:
        try:
            writer.close()
        except Exception:
            pass
    for writer in writers:
        try:
            await writer.wait_closed()
        except Exception:
            pass


def _send_msg(writer: asyncio.StreamWriter, message: dict) -> None:
    blob = json.dumps(message, sort_keys=True).encode("utf-8")
    writer.write(_U32.pack(len(blob)) + blob)


async def _read_msg(reader: asyncio.StreamReader) -> dict | None:
    try:
        header = await reader.readexactly(_U32.size)
        (length,) = _U32.unpack(header)
        blob = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return json.loads(blob)


# ----------------------------------------------------------------------
# The scaling workload (fixed, partitionable, reconstructible by key)
# ----------------------------------------------------------------------


class _ScalingWorkload(Section4Protocol):
    """A Section4Protocol bundle whose policy is the co-locating block
    assignment instead of the value-hash assignment."""

    def policy(self, network):
        return domain_guided_policy(
            self.query.input_schema,
            network,
            block_domain_assignment(network, SCALING_BLOCK),
            name="block-domain-guided",
        )


def scaling_workload(*, components: int = 24, size: int = 120) -> Section4Protocol:
    """The fixed partitionable workload behind ``BENCH_scaling.json``.

    ``components`` disjoint win-move games of ``size`` positions each,
    positions of component ``c`` encoded as ``c * SCALING_BLOCK + p``:
    component 0 is a *deep* chain game (alternating win/lose down a path
    of ``size`` moves), every other component is a *shallow* dense game
    (out-degree 3, mostly drawn).  The query is win-move under the
    well-founded semantics, evaluated shard-locally.

    Why this shape scales: the alternating fixpoint re-evaluates its whole
    local instance once per round, and the number of rounds is set by the
    deepest local game.  Run centrally, the single deep chain drags all
    ``components`` games through ~``size`` rounds — cost ≈ rounds × total
    size.  Block-sharded, only the shard holding component 0 pays the deep
    rounds over its (small) fragment while every other shard converges in
    a handful of rounds, so the *total* work shrinks with the worker count
    — the BSP-superstep argument for sharding datalog with stratified
    convergence depths, measurable even on a single core, before any
    multi-core parallelism is added on top.  Everything is generated by
    closed-form arithmetic (no RNG, no builtin ``hash``), so every process
    rebuilds the identical workload from the key alone.
    """
    from ..queries import win_move_query

    facts: set[Fact] = set()
    base = 0 * SCALING_BLOCK
    for position in range(size - 1):
        facts.add(Fact("Move", (base + position, base + position + 1)))
    for component in range(1, components):
        base = component * SCALING_BLOCK
        for position in range(size):
            for spoke in range(1, 4):
                facts.add(
                    Fact(
                        "Move",
                        (base + position, base + (position * 7 + spoke) % size),
                    )
                )
    query = win_move_query()
    return _ScalingWorkload(
        key=f"scaling-wm-c{components}-s{size}",
        theorem="partitionable (component-local win-move, block-co-located)",
        transducer=local_shard_transducer(query),
        query=query,
        instance=Instance(facts),
        domain_guided=True,
    )


_SCALING_KEY = re.compile(r"^scaling-wm-c(\d+)-s(\d+)$")


def scaling_workload_by_key(key: str) -> Section4Protocol:
    match = _SCALING_KEY.match(key)
    if match is None:
        raise KeyError(f"not a scaling workload key: {key!r}")
    components, size = map(int, match.groups())
    return scaling_workload(components=components, size=size)


def workload_spec_for(workload: Section4Protocol) -> dict:
    """The JSON-able recipe a worker process uses to rebuild *workload*'s
    transducer + policy (never the instance: workers only see fragments)."""
    if isinstance(workload, _ScalingWorkload):
        return {"kind": "scaling", "key": workload.key}
    return {"kind": "gate", "key": workload.key}


def build_proc_network(
    workload_spec: dict, nodes: Sequence[str]
) -> TransducerNetwork:
    """Rebuild the transducer network from a worker-spec recipe.

    Deterministic in any process: gate workloads reconstruct by key,
    scaling workloads by their parameter-carrying key, and raw programs
    re-plan through the (deterministic) distribution analyzer.
    """
    kind = workload_spec["kind"]
    if kind == "program":
        from ..core.analyzer import planned_network
        from ..datalog.parser import parse_program

        program = parse_program(workload_spec["text"])
        outputs = workload_spec.get("outputs")
        if outputs is not None:
            # Rule text alone cannot carry a designated-output restriction;
            # rebuild with it so workers agree with the coordinator's
            # program object on what the output schema is.
            program = type(program)(program.rules, output_relations=outputs)
        return planned_network(program, tuple(nodes))
    if kind == "scaling":
        workload = scaling_workload_by_key(workload_spec["key"])
    elif kind == "gate":
        from .gate import workload_by_key

        workload = workload_by_key(workload_spec["key"])
    else:
        raise ValueError(f"unknown workload spec kind {kind!r}")
    network = Network(nodes)
    return TransducerNetwork(
        network, workload.transducer, workload.policy(network)
    )


# ----------------------------------------------------------------------
# Worker side: the data-plane endpoint and the process entry point
# ----------------------------------------------------------------------


class ProcessEndpoint:
    """A worker's window on the data plane: one listening server, lazy
    persistent connections to peers, and a volatile per-peer outbox of
    every frame ever sent (the retransmission source when a peer
    restarts).  Satisfies the same send/recv interface as
    :class:`~repro.cluster.transport.Endpoint`."""

    def __init__(
        self,
        node: str,
        host: str,
        *,
        mailbox_capacity: int = DEFAULT_MAILBOX_CAPACITY,
        dial_timeout: float = 5.0,
        dial_attempts: int = 8,
        dial_backoff: float = 0.05,
    ) -> None:
        self._node = node
        self._host = host
        self._mailbox = Mailbox(mailbox_capacity)
        self._dial_timeout = dial_timeout
        self._dial_attempts = dial_attempts
        self._dial_backoff = dial_backoff
        self._server: asyncio.base_events.Server | None = None
        self.port: int | None = None
        self._peer_addrs: dict[str, tuple[str, int]] = {}
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self._outbox: dict[str, list[bytes]] = {}
        self._reader_tasks: list[asyncio.Task] = []

    @property
    def node(self) -> str:
        return self._node

    @property
    def high_water(self) -> int:
        return self._mailbox.high_water

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._accept, self._host, 0)
        self.port = self._server.sockets[0].getsockname()[1]

    def _accept(self, reader, writer) -> None:
        self._reader_tasks.append(
            asyncio.ensure_future(self._pump(reader, writer))
        )

    async def _pump(self, reader, writer) -> None:
        try:
            while True:
                header = await reader.readexactly(_U32.size)
                (length,) = _U32.unpack(header)
                frame = await reader.readexactly(length)
                await self._mailbox.put(frame)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed (exit or kill); retransmission heals losses
        finally:
            writer.close()

    def set_peers(self, addrs: dict[str, tuple[str, int]]) -> None:
        self._peer_addrs.update(addrs)

    def _lock(self, target: str) -> asyncio.Lock:
        return self._locks.setdefault(target, asyncio.Lock())

    async def _write(self, target: str, frame: bytes) -> bool:
        """Best-effort write to *target*'s live connection.

        Returns ``False`` when the peer is down (connect refused / reset):
        the frame stays in the outbox and is retransmitted when the
        coordinator announces the peer's new address.  Fails fast — long
        retries against a dead peer's *old* port can never succeed.
        """
        async with self._lock(target):
            writer = self._writers.get(target)
            try:
                if writer is None:
                    host, port = self._peer_addrs[target]
                    _, writer = await dial_with_retry(
                        host,
                        port,
                        timeout=self._dial_timeout,
                        attempts=min(self._dial_attempts, 3),
                        backoff=self._dial_backoff,
                    )
                    self._writers[target] = writer
                writer.write(_U32.pack(len(frame)) + frame)
                await writer.drain()
                return True
            except (TransportError, OSError, asyncio.TimeoutError):
                self._writers.pop(target, None)
                return False

    async def send(self, target: str, frame: bytes) -> int:
        """Dispatch one frame; always counts as one wire copy.

        A frame bound for a dead peer is *still in flight* from the Safra
        ring's point of view: it sits in the outbox and is delivered on
        retransmit, so counting it exactly once keeps the global sum
        truthful in every interleaving.
        """
        if target == self._node:
            self._mailbox.force_put(frame)
            return 1
        self._outbox.setdefault(target, []).append(frame)
        await self._write(target, frame)
        return 1

    async def recv(self) -> bytes:
        return await self._mailbox.get()

    def recv_nowait(self) -> bytes | None:
        return self._mailbox.get_nowait()

    def inject(self, frame: bytes) -> None:
        """Control-plane delivery into the own mailbox (synthetic STOP)."""
        self._mailbox.force_put(frame)

    async def update_peer(self, target: str, host: str, port: int) -> None:
        """The coordinator announced *target* restarted at a new address:
        drop the dead connection and retransmit every frame ever sent to
        it (the receiver deduplicates by durable frame identity)."""
        async with self._lock(target):
            self._peer_addrs[target] = (host, port)
            old = self._writers.pop(target, None)
            if old is not None:
                old.close()
        for frame in list(self._outbox.get(target, ())):
            if not await self._write(target, frame):
                return  # peer died again; the next announcement retries

    async def close(self) -> None:
        await _close_writers(self._writers.values())
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._reader_tasks:
            task.cancel()
        for task in self._reader_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._reader_tasks.clear()


def _make_kill_probe(kill_after: int):
    """A crash probe delivering a *real* SIGKILL after ``kill_after``
    transitions — uncatchable, no cleanup, no flush beyond what already
    reached the kernel.  The genuine article, unlike
    :exc:`~repro.cluster.faults.NodeCrashed`."""
    remaining = [int(kill_after)]

    def probe() -> None:
        remaining[0] -= 1
        if remaining[0] <= 0:
            os.kill(os.getpid(), signal.SIGKILL)

    return probe


async def _control_loop(
    reader: asyncio.StreamReader, endpoint: ProcessEndpoint, node: str
) -> None:
    while True:
        message = await _read_msg(reader)
        if message is None:
            # The coordinator is gone; an orphaned worker must not linger.
            os._exit(2)
        kind = message.get("type")
        if kind == "peer-update":
            await endpoint.update_peer(
                message["node"], message["host"], int(message["port"])
            )
        elif kind == "finish":
            # Global termination was detected while this worker was down
            # (the real STOP died with its connection); synthesize one.
            endpoint.inject(
                encode_envelope(
                    Envelope(
                        kind=KIND_STOP,
                        sender="__coordinator__",
                        round=0,
                        sequence=0,
                    )
                )
            )


def _cache_report(transducer) -> dict:
    """Process-local cache telemetry, reported by each worker so tests can
    assert per-process isolation: the module-level default plan cache (a
    spawned worker reports it *cold* even when the parent's is warm) and
    this process's transducer evaluation counters."""
    from ..datalog.evaluation import _DEFAULT_PLAN_CACHE

    report = {"plan_cache": len(_DEFAULT_PLAN_CACHE)}
    report.update(transducer.evaluation_stats())
    return report


async def _worker_async(spec: dict) -> None:
    node: str = spec["node"]
    nodes: list[str] = list(spec["nodes"])
    net = build_proc_network(spec["workload"], nodes)
    ordered = net.network.sorted_nodes()
    index = ordered.index(node)
    fragment = Instance(set(decode_facts_hex(spec["fragment"])))

    endpoint = ProcessEndpoint(
        node,
        spec["host"],
        mailbox_capacity=int(spec.get("mailbox_capacity", DEFAULT_MAILBOX_CAPACITY)),
        dial_timeout=float(spec.get("dial_timeout", 5.0)),
        dial_attempts=int(spec.get("dial_attempts", 8)),
        dial_backoff=float(spec.get("dial_backoff", 0.05)),
    )
    await endpoint.start()
    creader, cwriter = await dial_with_retry(
        spec["host"], int(spec["control_port"])
    )
    _send_msg(
        cwriter,
        {"type": "hello", "node": node, "port": endpoint.port, "pid": os.getpid()},
    )
    await cwriter.drain()
    peers_msg = await _read_msg(creader)
    if peers_msg is None or peers_msg.get("type") != "peers":
        raise RuntimeError(f"worker {node}: expected PEERS, got {peers_msg!r}")
    endpoint.set_peers(
        {name: (host, int(port)) for name, (host, port) in peers_msg["peers"].items()}
    )

    feed_assignment = None
    if spec.get("feed") and index == 0:
        # The whole deterministic feed ships in every worker spec; only
        # the initiator consumes it.  The assignment is a pure function of
        # the epoch index (per-fact memoized policies), so WAL replay of
        # an injection after a real SIGKILL regenerates it identically.
        feed_batches = [decode_facts_hex(text) for text in spec["feed"]]
        inputs = net.transducer.schema.inputs

        def feed_assignment(epoch: int, _batches=feed_batches, _inputs=inputs):
            if epoch >= len(_batches):
                return None
            delta = Instance(set(_batches[epoch])).restrict(_inputs)
            fragments = net.policy.distribute(delta)
            return {
                name: tuple(sorted(fragments[name])) for name in ordered
            }

    journal = NodeJournal(DiskCheckpointStore(spec["checkpoint_dir"]), node)
    recovered = journal.has_history()
    replayed = [0]
    crash_probe = None
    if spec.get("kill_after"):
        crash_probe = _make_kill_probe(spec["kill_after"])

    cluster_node = ClusterNode(
        node=node,
        network=net,
        fragment=fragment,
        endpoint=endpoint,
        peers=[n for n in ordered if n != node],
        ring_next=ordered[(index + 1) % len(ordered)],
        initiator=index == 0,
        max_probes=int(spec.get("max_probes", 10_000)),
        journal=journal,
        crash_probe=crash_probe,
        snapshot_every=int(spec.get("snapshot_every", 1)),
        replay_sink=lambda entries: replayed.__setitem__(0, entries),
        dedup=True,
        feed=feed_assignment,
    )
    control_task = asyncio.ensure_future(
        _control_loop(creader, endpoint, node)
    )
    try:
        await cluster_node.run()
    finally:
        control_task.cancel()
    stats = cluster_node.stats
    _send_msg(
        cwriter,
        {
            "type": "result",
            "node": node,
            "pid": os.getpid(),
            "output": encode_facts_hex(cluster_node.state.output),
            "memory": encode_facts_hex(cluster_node.state.memory),
            "stats": {
                "transitions": stats.transitions,
                "heartbeats": stats.heartbeats,
                "deliveries": stats.deliveries,
                "sent_facts": stats.sent_facts,
            },
            "mailbox_high_water": endpoint.high_water,
            "token_probes": cluster_node.token_probes,
            "wal_replayed": replayed[0],
            "recovered": bool(recovered),
            "snapshot_bytes": journal._store.snapshot_bytes,
            "caches": _cache_report(net.transducer),
            "epochs": cluster_node._epochs_injected,
            "epoch_outputs": {
                str(epoch): encode_facts_hex(facts)
                for epoch, facts in cluster_node.epoch_outputs.items()
            },
        },
    )
    await cwriter.drain()
    await _close_writers([cwriter])
    await endpoint.close()


def worker_main(argv: Sequence[str]) -> int:
    """``python -m repro.cluster.procs SPEC.json`` — one cluster node."""
    if len(argv) != 1:
        print("usage: python -m repro.cluster.procs SPEC.json", file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    asyncio.run(_worker_async(spec))
    return 0


# ----------------------------------------------------------------------
# Parent side: the coordinator
# ----------------------------------------------------------------------


class ClusterShutdown(RuntimeError):
    """The coordinator was asked to stop (SIGTERM/SIGINT) mid-run.

    Raised out of :meth:`ProcessCluster.arun` *after* its cleanup ran —
    by the time a caller sees this, every worker process has been reaped
    and the control-plane socket is closed (no orphans)."""


class ProcessCluster:
    """A one-shot multi-process execution of a transducer network.

    Mirrors :class:`~repro.cluster.runtime.ClusterRun`'s telemetry surface
    (``global_output``, ``node_stats``, ``metrics``, ``token_probes``,
    ``crashes``/``recoveries``/``wal_replayed``/``snapshot_bytes``) so
    :func:`~repro.cluster.telemetry.build_cluster_report` and the
    divergence gate treat both runtimes identically.

    ``kill_node``/``kill_after`` schedule one *real* ``SIGKILL``: the
    named worker shoots itself after that many transitions, the parent
    observes the death, respawns it over the same checkpoint directory,
    and the worker recovers via snapshot + WAL replay.
    """

    def __init__(
        self,
        workload_spec: dict,
        instance: Instance,
        *,
        processes: int | None = None,
        nodes: Sequence[str] | None = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        run_dir: str | os.PathLike | None = None,
        kill_node: str | None = None,
        kill_after: int | None = None,
        timeout: float | None = 120.0,
        snapshot_every: int = 1,
        max_probes: int = 10_000,
        mailbox_capacity: int = DEFAULT_MAILBOX_CAPACITY,
        python: str = sys.executable,
        delta_feed=None,
    ) -> None:
        if nodes is None:
            if processes is None:
                raise ValueError("pass either processes=N or nodes=[...]")
            nodes = tuple(f"n{i + 1}" for i in range(processes))
        nodes = tuple(nodes)
        if not nodes:
            raise ValueError("a process cluster needs at least one node")
        if not all(isinstance(node, str) for node in nodes):
            raise ValueError("process-cluster node names must be strings")
        if kill_node is not None and kill_node not in nodes:
            raise ValueError(f"kill_node {kill_node!r} is not in {nodes}")
        self._workload_spec = dict(workload_spec)
        self._node_names = nodes
        self._network = build_proc_network(self._workload_spec, nodes)
        self._instance = instance.restrict(
            self._network.transducer.schema.inputs
        )
        self._fragments = self._network.policy.distribute(self._instance)
        self._seed = seed
        self._host = host
        self._run_dir = run_dir
        self._kill_node = kill_node
        self._kill_after = kill_after
        self._timeout = timeout
        self._snapshot_every = snapshot_every
        self._max_probes = max_probes
        self._mailbox_capacity = mailbox_capacity
        self._python = python
        self._delta_feed = delta_feed
        self._completed = False

        self._states: dict[str, NodeState] = {}
        self._results: dict[str, dict] = {}
        self.node_stats: dict[Hashable, NodeStats] = {}
        self.metrics = RunMetrics()
        self.token_probes = 0
        self.in_flight_high_water = 0
        self.crashes = 0
        self.recoveries = 0
        self.wal_replayed = 0
        self.snapshot_bytes = 0
        self.epoch_outputs: list[Instance] = []
        self.epochs = 0

    # -- the ClusterRun-compatible surface ---------------------------------

    @property
    def network(self) -> TransducerNetwork:
        return self._network

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def transport_name(self) -> str:
        return "proc"

    def nodes(self) -> list[Hashable]:
        return self._network.network.sorted_nodes()

    def state(self, node: Hashable) -> NodeState:
        return self._states[node]

    def local_input(self, node: Hashable) -> Instance:
        return self._fragments[node]

    def global_output(self) -> Instance:
        result = Instance()
        for state in self._states.values():
            result = result | state.output
        return result

    def fault_counters(self) -> dict[str, int]:
        return {}

    # -- execution ---------------------------------------------------------

    def run_to_quiescence(self) -> Instance:
        """Spawn the workers, run to detected quiescence, collect results.
        Synchronous wrapper over :meth:`arun`."""
        return asyncio.run(self.arun())

    async def arun(self) -> Instance:
        if self._completed:
            raise RuntimeError("a ProcessCluster is one-shot; build a new one")
        self._completed = True
        if self._run_dir is not None:
            run_dir = os.fspath(self._run_dir)
            os.makedirs(run_dir, exist_ok=True)
        else:
            run_dir = tempfile.mkdtemp(prefix="repro-procs-")
        ordered = self.nodes()
        events: asyncio.Queue = asyncio.Queue()
        conns: dict[str, asyncio.StreamWriter] = {}
        addrs: dict[str, tuple[str, int]] = {}
        procs: dict[str, asyncio.subprocess.Process] = {}
        monitor_tasks: list[asyncio.Task] = []
        spawn_counts: dict[str, int] = {node: 0 for node in ordered}
        terminated = False
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )

        async def accept_control(reader, writer) -> None:
            hello = await _read_msg(reader)
            if hello is None or hello.get("type") != "hello":
                writer.close()
                return
            node = hello["node"]
            conns[node] = writer
            await events.put(("hello", node, hello))
            while True:
                message = await _read_msg(reader)
                if message is None:
                    return
                await events.put((message["type"], node, message))

        server = await asyncio.start_server(accept_control, self._host, 0)
        control_port = server.sockets[0].getsockname()[1]

        # Graceful shutdown: SIGTERM/SIGINT inject an event that unwinds
        # arun through its cleanup (reap workers, close sockets) before
        # raising ClusterShutdown.  Registration fails off the main
        # thread (the service runs clusters from worker threads) — then
        # the parent process's own handler owns signal policy instead.
        loop = asyncio.get_running_loop()
        handled_signals: list[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda s=signum: events.put_nowait(
                        ("shutdown", None, {"signum": s})
                    ),
                )
                handled_signals.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

        def write_pids() -> None:
            # Audit file for supervisors and the no-orphans regression
            # test: the parent pid plus every live worker pid, rewritten
            # atomically at each (re)spawn.
            payload = {
                "parent": os.getpid(),
                "workers": {
                    node: proc.pid
                    for node, proc in procs.items()
                    if proc.returncode is None
                },
            }
            tmp_path = os.path.join(run_dir, "pids.json.tmp")
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, os.path.join(run_dir, "pids.json"))

        def child_env() -> dict:
            import repro

            src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
            env = dict(os.environ)
            existing = env.get("PYTHONPATH", "")
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
            return env

        async def spawn(node: str, *, kill: bool) -> None:
            attempt = spawn_counts[node]
            spawn_counts[node] = attempt + 1
            spec = {
                "node": node,
                "nodes": list(self._node_names),
                "workload": self._workload_spec,
                "fragment": encode_facts_hex(self._fragments[node]),
                "host": self._host,
                "control_port": control_port,
                "checkpoint_dir": os.path.join(run_dir, f"ckpt-{node}"),
                "snapshot_every": self._snapshot_every,
                "max_probes": self._max_probes,
                "mailbox_capacity": self._mailbox_capacity,
                "seed": self._seed,
            }
            if self._delta_feed is not None:
                spec["feed"] = [
                    encode_facts_hex(batch.facts)
                    for batch in self._delta_feed.batches
                ]
            if kill and self._kill_after is not None:
                spec["kill_after"] = self._kill_after
            spec_path = os.path.join(run_dir, f"spec-{node}-{attempt}.json")
            with open(spec_path, "w", encoding="utf-8") as handle:
                json.dump(spec, handle, sort_keys=True)
            stderr_path = os.path.join(run_dir, f"{node}-{attempt}.stderr")
            stderr_file = open(stderr_path, "wb")
            proc = await asyncio.create_subprocess_exec(
                self._python,
                "-m",
                "repro.cluster.procs",
                spec_path,
                stdout=stderr_file,
                stderr=stderr_file,
                env=child_env(),
            )
            stderr_file.close()
            procs[node] = proc

            async def monitor() -> None:
                returncode = await proc.wait()
                await events.put(("exit", node, {"returncode": returncode}))

            monitor_tasks.append(asyncio.ensure_future(monitor()))
            write_pids()

        def worker_stderr(node: str) -> str:
            chunks = []
            for attempt in range(spawn_counts[node]):
                path = os.path.join(run_dir, f"{node}-{attempt}.stderr")
                try:
                    with open(path, "r", encoding="utf-8", errors="replace") as f:
                        text = f.read().strip()
                except FileNotFoundError:
                    continue
                if text:
                    chunks.append(f"--- {node} attempt {attempt} ---\n{text}")
            return "\n".join(chunks)

        try:
            for node in ordered:
                await spawn(node, kill=node == self._kill_node)

            handshook = 0
            while len(self._results) < len(ordered):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise QuiescenceError(
                            f"process cluster did not quiesce within "
                            f"{self._timeout}s wall clock"
                        )
                try:
                    kind, node, message = await asyncio.wait_for(
                        events.get(), remaining
                    )
                except asyncio.TimeoutError:
                    raise QuiescenceError(
                        f"process cluster did not quiesce within "
                        f"{self._timeout}s wall clock"
                    ) from None
                if kind == "hello":
                    addrs[node] = (self._host, int(message["port"]))
                    handshook += 1
                    if handshook == len(ordered):
                        # Every data-plane server is bound: release all
                        # workers with the full address map at once.
                        peers = {n: list(a) for n, a in addrs.items()}
                        for name, writer in conns.items():
                            _send_msg(writer, {"type": "peers", "peers": peers})
                            await writer.drain()
                    elif handshook > len(ordered):
                        # A respawned worker: it gets the current map, the
                        # live peers get its new address and retransmit.
                        writer = conns[node]
                        _send_msg(
                            writer,
                            {
                                "type": "peers",
                                "peers": {n: list(a) for n, a in addrs.items()},
                            },
                        )
                        await writer.drain()
                        for name, other in conns.items():
                            if name == node or name in self._results:
                                continue
                            try:
                                _send_msg(
                                    other,
                                    {
                                        "type": "peer-update",
                                        "node": node,
                                        "host": self._host,
                                        "port": addrs[node][1],
                                    },
                                )
                                await other.drain()
                            except (ConnectionError, OSError):
                                pass
                        if terminated:
                            _send_msg(writer, {"type": "finish"})
                            await writer.drain()
                elif kind == "result":
                    self._results[node] = message
                    if not terminated:
                        # Any result implies STOP was broadcast, i.e. the
                        # ring detected global termination.  Relay it to
                        # workers whose data-plane STOP may have died with
                        # a killed connection.
                        terminated = True
                        for name, writer in conns.items():
                            if name in self._results:
                                continue
                            try:
                                _send_msg(writer, {"type": "finish"})
                                await writer.drain()
                            except (ConnectionError, OSError):
                                pass
                elif kind == "shutdown":
                    raise ClusterShutdown(
                        f"coordinator received signal {message['signum']}; "
                        "workers reaped"
                    )
                elif kind == "exit":
                    if node in self._results:
                        continue  # clean exit after delivering its result
                    returncode = message["returncode"]
                    self.crashes += 1
                    if spawn_counts[node] > MAX_RESTARTS:
                        raise RuntimeError(
                            f"worker {node} died {spawn_counts[node]} times "
                            f"(last returncode {returncode}); giving up.\n"
                            f"{worker_stderr(node)}"
                        )
                    # Respawn over the same checkpoint directory — the
                    # deliberate kill is never re-armed, so each recovery
                    # makes real progress.
                    await spawn(node, kill=False)
                    self.recoveries += 1
        finally:
            for signum in handled_signals:
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            server.close()
            await server.wait_closed()
            for task in monitor_tasks:
                task.cancel()
            for task in monitor_tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            for proc in procs.values():
                if proc.returncode is None:
                    try:
                        proc.kill()
                    except ProcessLookupError:
                        pass
                    try:
                        await proc.wait()
                    except Exception:
                        pass
            await _close_writers(conns.values())
            try:
                write_pids()  # now records zero live workers
            except OSError:
                pass

        self._harvest()
        return self.global_output()

    def _harvest(self) -> None:
        fanout = max(len(self._node_names) - 1, 0)
        for node in self.nodes():
            result = self._results[node]
            state = NodeState()
            state.output = Instance(set(decode_facts_hex(result["output"])))
            state.memory = Instance(set(decode_facts_hex(result["memory"])))
            self._states[node] = state
            raw = result["stats"]
            stats = NodeStats(
                transitions=raw["transitions"],
                heartbeats=raw["heartbeats"],
                deliveries=raw["deliveries"],
                sent_facts=raw["sent_facts"],
                buffer_high_water=result.get("mailbox_high_water", 0),
            )
            self.node_stats[node] = stats
            self.metrics.transitions += stats.transitions
            self.metrics.heartbeats += stats.heartbeats
            self.metrics.message_deliveries += stats.deliveries
            self.metrics.message_facts_sent += stats.sent_facts * fanout
            if result.get("token_probes"):
                self.token_probes = result["token_probes"]
            self.wal_replayed += result.get("wal_replayed", 0)
            self.snapshot_bytes += result.get("snapshot_bytes", 0)
        self.metrics.rounds = self.token_probes
        self.epochs = max(
            (result.get("epochs", 0) for result in self._results.values()),
            default=0,
        )
        if self._delta_feed is not None:
            for epoch in range(self.epochs):
                output = Instance()
                for result in self._results.values():
                    text = result.get("epoch_outputs", {}).get(str(epoch))
                    if text:
                        output = output | decode_facts_hex(text)
                self.epoch_outputs.append(output)
            self.epoch_outputs.append(self.global_output())

    def worker_result(self, node: str) -> dict:
        """The raw control-plane result payload for *node* (tests)."""
        return dict(self._results[node])


if __name__ == "__main__":
    sys.exit(worker_main(sys.argv[1:]))
