"""The asynchronous cluster runtime with decentralized quiescence detection.

:class:`~repro.transducers.runtime.Run` simulates a transducer network with
a single global round loop whose quiescence check inspects every buffer at
once — an omniscient coordinator, exactly the thing the paper's Section 4
protocols are designed to live without.  :class:`ClusterRun` executes the
same network as genuinely concurrent processes:

* every node runs as an independent ``asyncio`` task holding only its own
  :class:`~repro.transducers.runtime.NodeState`, its input fragment, and
  one transport :class:`~repro.cluster.transport.Endpoint`;
* all communication is encoded through the wire codec
  (:mod:`repro.cluster.codec`) and moved by a pluggable transport —
  in-process queues by default, loopback TCP behind the same interface;
* **quiescence is detected decentrally** with Safra's token-ring
  termination-detection algorithm (Dijkstra, EWD 998): no node ever reads
  another node's mailbox, and termination is decided purely from envelope
  metadata.

Safra's algorithm, as implemented here
--------------------------------------

Nodes are arranged in a ring (sorted node order).  Each node keeps a
message *counter* (data envelopes sent − received) and a *colour* (black
once it has received a data envelope since it last forwarded the token).
The first node initiates a probe by sending a white token with count 0
around the ring.  A node forwards the token only while *passive* (mailbox
drained, local transition closure finished), adding its counter and
staining the token black if it is black itself, then turns white.  When
the token returns to the initiator, termination is announced iff the
initiator is white and passive, the token is white, and token count plus
the initiator's counter is zero — otherwise a fresh probe starts.  The
count invariant makes the detection safe under the fault layer too: a
delayed or "dropped" (redelivery-pending) envelope is counted by its
sender from the moment it is accepted, so the global sum cannot reach
zero while anything is still in flight.  On success the initiator
broadcasts STOP and every task exits.

A node becomes passive only after running its transducer to a *local
closure*: transitions (first delivering the received batch, then
heartbeats) until one changes no state and emits no messages.  This mirrors
the synchronous runtime, where every node heartbeats once per round until
the global round fixpoint; the confluence theorems (4.3–4.5) guarantee both
executions converge to the same global output, and the divergence gate in
:mod:`repro.cluster.gate` holds them to it.
"""

from __future__ import annotations

import asyncio
from typing import Hashable, Iterable

from ..datalog.instance import Instance
from ..datalog.terms import Fact
from ..transducers.runtime import (
    NodeState,
    NodeStats,
    QuiescenceError,
    RunMetrics,
    TransducerNetwork,
)
from ..transducers.transducer import LocalView
from .codec import (
    KIND_DATA,
    KIND_STOP,
    KIND_TOKEN,
    Envelope,
    TokenState,
    decode_envelope,
    encode_envelope,
)
from .faults import FaultLayer, FaultPlan
from .transport import (
    DEFAULT_MAILBOX_CAPACITY,
    Transport,
    make_transport,
)

__all__ = ["ClusterRun", "ClusterNode"]


def _wire_sender(node: Hashable) -> Hashable:
    """A codec-representable stand-in for a node identifier."""
    if isinstance(node, (str, int, float, bytes, tuple, bool)) or node is None:
        return node
    return repr(node)


class ClusterNode:
    """One node of the cluster: transducer state, a transport endpoint, and
    the Safra bookkeeping.  Sees nothing of the rest of the world."""

    def __init__(
        self,
        *,
        node: Hashable,
        network: TransducerNetwork,
        fragment: Instance,
        endpoint,
        peers: list[Hashable],
        ring_next: Hashable,
        initiator: bool,
        max_probes: int,
    ) -> None:
        self.node = node
        self._network = network
        self._fragment = fragment
        self._endpoint = endpoint
        self._peers = peers  # every other node, sorted (broadcast targets)
        self._ring_next = ring_next
        self._initiator = initiator
        self._max_probes = max_probes

        self.state = NodeState()
        self.stats = NodeStats()
        self.counter = 0  # data envelopes sent − received (Safra)
        self.black = False
        self.token: TokenState | None = None
        self.token_probes = 0  # filled at the initiator on success
        self._probe_started = False
        self._failed_probes = 0
        self._sequence = 0
        self._transitions = 0
        self._stopped = False

    # -- the transducer transition, node-locally --------------------------

    def _view(self, delivered: Instance) -> LocalView:
        return LocalView(
            node=self.node,
            network=self._network.network,
            schema=self._network.transducer.schema,
            policy=self._network.policy,
            local_input=self._fragment,
            output=self.state.output,
            memory=self.state.memory,
            delivered=delivered,
            db_token=None,  # cluster steps always evaluate (no shared clock)
        )

    def _transition(self, delivered_facts: Iterable[Fact]) -> tuple[Instance, bool]:
        """One transducer transition; returns (messages, state_changed).

        The state update is exactly :meth:`repro.transducers.runtime.
        Run.transition`: output grows monotonically, memory becomes
        ``(mem ∪ (ins \\ del)) \\ (del \\ ins)``.
        """
        delivered_set = Instance(set(delivered_facts))
        update = self._network.transducer.step(self._view(delivered_set))
        state = self.state
        before = state.snapshot()
        state.output = state.output | update.output
        ins_only = update.insertions - update.deletions
        del_only = update.deletions - update.insertions
        state.memory = (state.memory | ins_only) - del_only
        changed = state.snapshot() != before
        self._transitions += 1
        self.stats.transitions += 1
        if not delivered_set:
            self.stats.heartbeats += 1
        self.stats.sent_facts += len(update.messages)
        return update.messages, changed

    async def _deliver_and_close(self, delivered_facts: list[Fact]) -> None:
        """Deliver a batch, then heartbeat to the local fixpoint, sending
        each transition's messages as it goes."""
        delivered: list[Fact] = delivered_facts
        while True:
            messages, changed = self._transition(delivered)
            if messages:
                await self._broadcast(messages)
            if not changed and not messages:
                return
            delivered = []

    async def _broadcast(self, messages: Instance) -> None:
        facts = tuple(sorted(messages))
        for target in self._peers:
            envelope = Envelope(
                kind=KIND_DATA,
                sender=_wire_sender(self.node),
                round=self._transitions,
                sequence=self._next_sequence(),
                facts=facts,
            )
            self.counter += await self._endpoint.send(
                target, encode_envelope(envelope)
            )

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    # -- Safra's termination detection ------------------------------------

    async def _send_token(self, token: TokenState) -> None:
        envelope = Envelope(
            kind=KIND_TOKEN,
            sender=_wire_sender(self.node),
            round=token.probe,
            sequence=self._next_sequence(),
            token=token,
        )
        await self._endpoint.send(self._ring_next, encode_envelope(envelope))

    async def _announce_stop(self) -> None:
        for target in self._peers:
            envelope = Envelope(
                kind=KIND_STOP,
                sender=_wire_sender(self.node),
                round=self._transitions,
                sequence=self._next_sequence(),
            )
            await self._endpoint.send(target, encode_envelope(envelope))

    async def _token_action_while_passive(self) -> None:
        """Called only at passive points: mailbox drained, closure done."""
        if self._initiator and not self._probe_started:
            self._probe_started = True
            self.black = False
            await self._send_token(TokenState(count=0, black=False, probe=1))
            return
        if self.token is None:
            return
        token, self.token = self.token, None
        if not self._initiator:
            forwarded = TokenState(
                count=token.count + self.counter,
                black=token.black or self.black,
                probe=token.probe,
            )
            self.black = False
            await self._send_token(forwarded)
            return
        # The probe came home.  Termination iff everything is white and the
        # global envelope count balances out.
        if not token.black and not self.black and token.count + self.counter == 0:
            self.token_probes = token.probe
            await self._announce_stop()
            self._stopped = True
            return
        self._failed_probes += 1
        if self._failed_probes >= self._max_probes:
            raise QuiescenceError(
                f"cluster did not quiesce within {self._max_probes} "
                f"termination probes (counter={self.counter}, "
                f"token={token})"
            )
        # Give redelivery timers room before burning another circulation.
        if self._failed_probes > 3:
            await asyncio.sleep(min(0.001 * (self._failed_probes - 3), 0.02))
        self.black = False
        await self._send_token(
            TokenState(count=0, black=False, probe=token.probe + 1)
        )

    # -- the task body -----------------------------------------------------

    async def run(self) -> None:
        await self._deliver_and_close([])  # startup heartbeat closure
        while not self._stopped:
            await self._token_action_while_passive()
            if self._stopped:
                break
            frames = [await self._endpoint.recv()]
            while True:
                extra = self._endpoint.recv_nowait()
                if extra is None:
                    break
                frames.append(extra)
            batch: list[Fact] = []
            got_data = False
            for frame in frames:
                envelope = decode_envelope(frame)
                if envelope.kind == KIND_STOP:
                    self._stopped = True
                elif envelope.kind == KIND_TOKEN:
                    self.token = envelope.token
                else:
                    got_data = True
                    self.counter -= 1
                    self.black = True
                    self.stats.deliveries += len(envelope.facts)
                    batch.extend(envelope.facts)
            if self._stopped:
                break
            if got_data:
                await self._deliver_and_close(batch)


class ClusterRun:
    """A one-shot asynchronous execution of a transducer network.

    Mirrors :class:`~repro.transducers.runtime.Run`'s surface where it can
    (``global_output``, ``node_stats``, ``metrics``) and adds the
    cluster-only telemetry: per-node mailbox high-water marks, the held
    in-flight high-water of the fault layer, and the number of termination
    probes the Safra ring needed.
    """

    def __init__(
        self,
        network: TransducerNetwork,
        instance: Instance,
        *,
        transport: str | Transport = "memory",
        fault_plan: FaultPlan | None = None,
        seed: int = 0,
        mailbox_capacity: int = DEFAULT_MAILBOX_CAPACITY,
        tick: float = 0.002,
        max_probes: int = 10_000,
        timeout: float | None = 120.0,
    ) -> None:
        self._network = network
        self._instance = instance.restrict(network.transducer.schema.inputs)
        self._fragments = network.policy.distribute(self._instance)
        if isinstance(transport, Transport):
            self._transport = transport
        else:
            self._transport = make_transport(
                transport, mailbox_capacity=mailbox_capacity
            )
        self._fault_layer = (
            FaultLayer(fault_plan, seed, tick=tick)
            if fault_plan is not None
            else None
        )
        self._seed = seed
        self._max_probes = max_probes
        self._timeout = timeout
        self._nodes: dict[Hashable, ClusterNode] = {}
        self._completed = False
        self.metrics = RunMetrics()
        self.node_stats: dict[Hashable, NodeStats] = {}
        self.token_probes = 0
        self.in_flight_high_water = 0

    # -- accessors ---------------------------------------------------------

    @property
    def network(self) -> TransducerNetwork:
        return self._network

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def transport_name(self) -> str:
        name = self._transport.name
        return f"{name}+faulty" if self._fault_layer is not None else name

    def nodes(self) -> list[Hashable]:
        return self._network.network.sorted_nodes()

    def state(self, node: Hashable) -> NodeState:
        return self._nodes[node].state

    def local_input(self, node: Hashable) -> Instance:
        return self._fragments[node]

    def global_output(self) -> Instance:
        result = Instance()
        for cluster_node in self._nodes.values():
            result = result | cluster_node.state.output
        return result

    def fault_counters(self) -> dict[str, int]:
        if self._fault_layer is None:
            return {}
        return dict(self._fault_layer.counters)

    # -- execution ---------------------------------------------------------

    def run_to_quiescence(self) -> Instance:
        """Execute the cluster to detected quiescence; returns the global
        output.  Synchronous wrapper over :meth:`arun` — must not be called
        from inside a running event loop."""
        return asyncio.run(self.arun())

    async def arun(self) -> Instance:
        if self._completed:
            raise RuntimeError("a ClusterRun is one-shot; build a new one")
        self._completed = True
        ordered = self.nodes()
        endpoints = await self._transport.open(ordered)
        if self._fault_layer is not None:
            endpoints = {
                node: self._fault_layer.wrap(endpoint)
                for node, endpoint in endpoints.items()
            }
        for index, node in enumerate(ordered):
            self._nodes[node] = ClusterNode(
                node=node,
                network=self._network,
                fragment=self._fragments[node],
                endpoint=endpoints[node],
                peers=[n for n in ordered if n != node],
                ring_next=ordered[(index + 1) % len(ordered)],
                initiator=index == 0,
                max_probes=self._max_probes,
            )
        tasks = [
            asyncio.ensure_future(cluster_node.run())
            for cluster_node in self._nodes.values()
        ]
        try:
            gathered = asyncio.gather(*tasks)
            if self._timeout is not None:
                try:
                    await asyncio.wait_for(gathered, self._timeout)
                except asyncio.TimeoutError:
                    raise QuiescenceError(
                        f"cluster did not quiesce within {self._timeout}s "
                        f"wall clock"
                    ) from None
            else:
                await gathered
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            if self._fault_layer is not None:
                await self._fault_layer.drain()
            await self._transport.close()
        self._harvest()
        return self.global_output()

    def _harvest(self) -> None:
        """Fold per-node counters into Run-compatible telemetry.  Runs only
        after every node task has exited — this is reporting, not decision
        making; no node ever saw any of it."""
        fanout = max(len(self._nodes) - 1, 0)
        for node, cluster_node in self._nodes.items():
            stats = cluster_node.stats
            stats.buffer_high_water = self._transport.mailbox_high_water(node)
            self.node_stats[node] = stats
            self.metrics.transitions += stats.transitions
            self.metrics.heartbeats += stats.heartbeats
            self.metrics.message_deliveries += stats.deliveries
            self.metrics.message_facts_sent += stats.sent_facts * fanout
            if cluster_node.token_probes:
                self.token_probes = cluster_node.token_probes
        self.metrics.rounds = self.token_probes
        if self._fault_layer is not None:
            self.in_flight_high_water = self._fault_layer.held_high_water
