"""The asynchronous cluster runtime with decentralized quiescence detection.

:class:`~repro.transducers.runtime.Run` simulates a transducer network with
a single global round loop whose quiescence check inspects every buffer at
once — an omniscient coordinator, exactly the thing the paper's Section 4
protocols are designed to live without.  :class:`ClusterRun` executes the
same network as genuinely concurrent processes:

* every node runs as an independent ``asyncio`` task holding only its own
  :class:`~repro.transducers.runtime.NodeState`, its input fragment, and
  one transport :class:`~repro.cluster.transport.Endpoint`;
* all communication is encoded through the wire codec
  (:mod:`repro.cluster.codec`) and moved by a pluggable transport —
  in-process queues by default, loopback TCP behind the same interface;
* **quiescence is detected decentrally** with Safra's token-ring
  termination-detection algorithm (Dijkstra, EWD 998): no node ever reads
  another node's mailbox, and termination is decided purely from envelope
  metadata.

Safra's algorithm, as implemented here
--------------------------------------

Nodes are arranged in a ring (sorted node order).  Each node keeps a
message *counter* (data envelopes sent − received) and a *colour* (black
once it has received a data envelope since it last forwarded the token).
The first node initiates a probe by sending a white token with count 0
around the ring.  A node forwards the token only while *passive* (mailbox
drained, local transition closure finished), adding its counter and
staining the token black if it is black itself, then turns white.  When
the token returns to the initiator, termination is announced iff the
initiator is white and passive, the token is white, and token count plus
the initiator's counter is zero — otherwise a fresh probe starts.  The
count invariant makes the detection safe under the fault layer too: a
delayed or "dropped" (redelivery-pending) envelope is counted by its
sender from the moment it is accepted, so the global sum cannot reach
zero while anything is still in flight.  On success the initiator
broadcasts STOP and every task exits.

A node becomes passive only after running its transducer to a *local
closure*: transitions (first delivering the received batch, then
heartbeats) until one changes no state and emits no messages.  This mirrors
the synchronous runtime, where every node heartbeats once per round until
the global round fixpoint; the confluence theorems (4.3–4.5) guarantee both
executions converge to the same global output, and the divergence gate in
:mod:`repro.cluster.gate` holds them to it.

Crash recovery
--------------

With a checkpoint store attached (:mod:`repro.cluster.checkpoint`), a node
journals every accepted input and counted output before acting on it, and
snapshots its transducer state (a small local database, per the relational
transducer model) after closures.  An injected crash
(:exc:`~repro.cluster.faults.NodeCrashed`, from ``FaultPlan.crash_rate``)
kills the node's task mid-round; the run supervisor then builds a fresh
:class:`ClusterNode` over the *same* endpoint and journal, which

1. reloads the last snapshot (state, Safra counter/colour, sequence
   allocator),
2. replays the WAL suffix — re-running each logged closure
   deterministically while *consuming* its logged ``send`` entries instead
   of re-dispatching them (the frames are already on the wire; only the
   counter increment is re-applied), and restoring logged token
   receipts/forwards,
3. rejoins the ring exactly where it died: its mailbox survived the crash
   (infrastructure, like a kernel socket buffer), its sends stayed counted,
   so the token can never declare termination over a dead node's facts.

Crash points are cooperative — checked only between a transition's
journal append and the next, so "dispatch + log" is atomic with respect to
injected crashes and the replayed send sequence is always a prefix of the
deterministic regeneration.  Crashes are suppressed during recovery, and a
per-run ``max_crashes`` budget bounds the adversary, so every crashed run
is still a fair run and converges to the same output (Theorems 4.3–4.5).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Hashable, Iterable

from ..datalog.instance import Instance
from ..datalog.terms import Fact
from ..transducers.runtime import (
    NodeState,
    NodeStats,
    QuiescenceError,
    RunMetrics,
    TransducerNetwork,
)
from ..transducers.transducer import LocalView
from .checkpoint import (
    CheckpointError,
    CheckpointStore,
    NodeJournal,
    NodeSnapshot,
    group_replay_ops,
    make_checkpoint_store,
)
from .codec import (
    KIND_DATA,
    KIND_DELTA,
    KIND_STOP,
    KIND_TOKEN,
    Envelope,
    TokenState,
    decode_envelope,
    encode_envelope,
)
from .faults import FaultLayer, FaultPlan, NodeCrashed
from .transport import (
    DEFAULT_MAILBOX_CAPACITY,
    Transport,
    make_transport,
)

__all__ = ["ClusterRun", "ClusterNode"]


def _wire_sender(node: Hashable) -> Hashable:
    """A codec-representable stand-in for a node identifier."""
    if isinstance(node, (str, int, float, bytes, tuple, bool)) or node is None:
        return node
    return repr(node)


class ClusterNode:
    """One node of the cluster: transducer state, a transport endpoint, and
    the Safra bookkeeping.  Sees nothing of the rest of the world."""

    def __init__(
        self,
        *,
        node: Hashable,
        network: TransducerNetwork,
        fragment: Instance,
        endpoint,
        peers: list[Hashable],
        ring_next: Hashable,
        initiator: bool,
        max_probes: int,
        journal: NodeJournal | None = None,
        crash_probe: Callable[[], None] | None = None,
        snapshot_every: int = 1,
        replay_sink: Callable[[int], None] | None = None,
        dedup: bool = False,
        feed: Callable[[int], dict | None] | None = None,
    ) -> None:
        self.node = node
        self._network = network
        self._fragment = fragment
        self._endpoint = endpoint
        self._peers = peers  # every other node, sorted (broadcast targets)
        self._ring_next = ring_next
        self._initiator = initiator
        self._max_probes = max_probes
        self._journal = journal
        self._crash_probe = crash_probe  # raises NodeCrashed when scheduled
        self._snapshot_every = max(1, snapshot_every)
        self._replay_sink = replay_sink
        # At-least-once transports (the process runtime retransmits every
        # frame a restarted peer might have missed) need receiver-side
        # dedup by durable (sender, sequence) identity.  The in-process
        # runtimes deliver exactly once, so this stays off by default and
        # their wire behaviour is bit-for-bit unchanged.
        self._dedup = dedup
        self._seen_frames: set[tuple] = set()
        # Streaming ingestion: the initiator holds the feed callback (a
        # pure function epoch -> per-node fragment assignment, or None when
        # the feed is exhausted — purity is what makes crash replay of an
        # injection deterministic).  Every node tracks the late input it
        # accepted and its output trajectory at each epoch boundary.
        self._feed = feed
        self._epochs_injected = 0
        self._extra_input: set[Fact] = set()
        self.epoch_outputs: dict[int, tuple[Fact, ...]] = {}
        # The epoch this node currently works in.  Stamped onto outgoing
        # data envelopes so receivers can close epoch boundaries even when
        # a peer's post-injection data races ahead of the initiator's
        # delta envelope on a different connection (transport ordering is
        # per-pair only).
        self._epoch = 0

        self.state = NodeState()
        self.stats = NodeStats()
        self.counter = 0  # data envelopes sent − received (Safra)
        self.black = False
        self.token: TokenState | None = None
        self.token_probes = 0  # filled at the initiator on success
        self._probe_started = False
        self._failed_probes = 0
        self._sequence = 0
        self._transitions = 0
        self._stopped = False
        self._recovering = False
        self._replay_sends: deque[tuple[Hashable, int, int]] = deque()
        self._closures_since_snapshot = 0

    # -- the transducer transition, node-locally --------------------------

    def _view(self, delivered: Instance) -> LocalView:
        return LocalView(
            node=self.node,
            network=self._network.network,
            schema=self._network.transducer.schema,
            policy=self._network.policy,
            local_input=self._fragment,
            output=self.state.output,
            memory=self.state.memory,
            delivered=delivered,
            db_token=None,  # cluster steps always evaluate (no shared clock)
        )

    def _transition(self, delivered_facts: Iterable[Fact]) -> tuple[Instance, bool]:
        """One transducer transition; returns (messages, state_changed).

        The state update is exactly :meth:`repro.transducers.runtime.
        Run.transition`: output grows monotonically, memory becomes
        ``(mem ∪ (ins \\ del)) \\ (del \\ ins)``.
        """
        delivered_set = Instance(set(delivered_facts))
        update = self._network.transducer.step(self._view(delivered_set))
        state = self.state
        before = state.snapshot()
        state.output = state.output | update.output
        ins_only = update.insertions - update.deletions
        del_only = update.deletions - update.insertions
        state.memory = (state.memory | ins_only) - del_only
        changed = state.snapshot() != before
        self._transitions += 1
        self.stats.transitions += 1
        if not delivered_set:
            self.stats.heartbeats += 1
        self.stats.sent_facts += len(update.messages)
        return update.messages, changed

    async def _deliver_and_close(self, delivered_facts: list[Fact]) -> None:
        """Deliver a batch, then heartbeat to the local fixpoint, sending
        each transition's messages as it goes.

        Crash decision points live here, after each transition's sends are
        dispatched *and* journaled — so an injected crash can never split
        a dispatch from its WAL entry, and recovery's deterministic
        re-execution always finds the logged sends as a prefix of what it
        regenerates.
        """
        delivered: list[Fact] = delivered_facts
        while True:
            messages, changed = self._transition(delivered)
            if messages:
                await self._broadcast(messages)
            self._maybe_crash()
            if not changed and not messages:
                break
            delivered = []
        self._maybe_snapshot()

    async def _broadcast(self, messages: Instance) -> None:
        facts = tuple(sorted(messages))
        for target in self._peers:
            await self._dispatch(
                target,
                Envelope(
                    kind=KIND_DATA,
                    sender=_wire_sender(self.node),
                    round=self._epoch,
                    sequence=self._next_sequence(),
                    facts=facts,
                ),
            )

    async def _dispatch(self, target: Hashable, envelope: Envelope) -> None:
        """Send one counted envelope (data or delta) to *target*, honouring
        the write-ahead contract and recovery's logged-send consumption."""
        sequence = envelope.sequence
        target_wire = _wire_sender(target)
        if self._replay_sends:
            # Recovery replay: this send already happened before the
            # crash (it is on the wire); verify the regeneration
            # matches the log and restore the counter, nothing else.
            logged_target, logged_sequence, logged_count = (
                self._replay_sends.popleft()
            )
            if (logged_target, logged_sequence) != (target_wire, sequence):
                raise CheckpointError(
                    f"replay divergence at node {self.node!r}: "
                    f"regenerated send ({target_wire!r}, seq {sequence}) "
                    f"but the WAL recorded ({logged_target!r}, seq "
                    f"{logged_sequence})"
                )
            self.counter += logged_count
            if self._dedup:
                # A real process kill cannot prove the logged dispatch
                # ever left user space (the log records the intent,
                # the kernel buffer records the truth).  Re-dispatch
                # the byte-identical regeneration, uncounted: peers
                # that already accepted it drop the duplicate by its
                # durable (sender, sequence) identity, and a peer that
                # never saw it finally gets it.
                await self._endpoint.send(target, encode_envelope(envelope))
            return
        dispatched = await self._endpoint.send(target, encode_envelope(envelope))
        if self._journal is not None:
            self._journal.append_send(target_wire, sequence, dispatched)
        self.counter += dispatched

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    # -- streaming ingestion -----------------------------------------------

    def _record_epoch(self, epoch: int) -> None:
        """Snapshot the output trajectory at an epoch boundary, once.
        Record-once matters: the *first* frame carrying evidence of a
        boundary finds the local output exactly at that boundary (global
        quiescence preceded the injection), while later frames for the
        same boundary may arrive after post-injection work has landed."""
        if epoch not in self.epoch_outputs:
            self.epoch_outputs[epoch] = tuple(sorted(self.state.output))

    def _note_epoch_boundary(self, boundary: int) -> None:
        """Close every epoch boundary up to *boundary* from the current
        output.  Called before anything from the triggering drain takes
        effect: a delta envelope names its boundary directly, and a data
        frame stamped with sender epoch ``e`` proves boundary ``e - 1``
        passed — either way, this node's output is still its share of
        each unrecorded boundary's global output (epochs only advance
        through global quiescence, so the boundaries collapse together
        for a node that saw no traffic in between)."""
        for epoch in range(boundary + 1):
            self._record_epoch(epoch)
        self._epoch = max(self._epoch, boundary + 1)

    def _apply_delta(self, facts: Iterable[Fact]) -> None:
        added = [fact for fact in facts if fact not in self._fragment]
        if not added:
            return
        self._fragment = self._fragment | added
        self._extra_input.update(added)

    async def _inject_epoch(self) -> bool:
        """Initiator only: inject the next feed epoch, if any.

        Runs at the success point of a termination probe — a true global
        synchronisation point (all nodes passive, nothing in flight), so
        the injected envelopes are the only traffic and every receiver can
        snapshot its pre-delta output consistently.  Each peer gets one
        delta envelope (possibly empty — the uniform wake-up is also the
        uniform epoch marker); they are counted and journaled exactly like
        data, so the Safra accounting stays truthful and the ring re-arms.
        """
        if self._feed is None:
            return False
        epoch = self._epochs_injected
        assignment = self._feed(epoch)
        if assignment is None:
            return False
        if self._journal is not None and not self._recovering:
            # Write-ahead: the injection decision is durable before any of
            # its envelopes ship; replay recomputes the assignment from
            # the (pure) feed and consumes the logged sends.
            self._journal.append_delta(epoch)
        self._record_epoch(epoch)
        for target in self._peers:
            await self._dispatch(
                target,
                Envelope(
                    kind=KIND_DELTA,
                    sender=_wire_sender(self.node),
                    round=epoch,
                    sequence=self._next_sequence(),
                    facts=tuple(sorted(assignment.get(target, ()))),
                ),
            )
        self._epochs_injected = epoch + 1
        self._epoch = epoch + 1
        self._apply_delta(assignment.get(self.node, ()))
        await self._deliver_and_close([])
        return True

    # -- durability ---------------------------------------------------------

    def _maybe_crash(self) -> None:
        if self._crash_probe is not None and not self._recovering:
            self._crash_probe()

    def _maybe_snapshot(self) -> None:
        if self._journal is None or self._recovering:
            return
        self._closures_since_snapshot += 1
        if self._closures_since_snapshot >= self._snapshot_every:
            self._take_snapshot()

    def _take_snapshot(self) -> None:
        assert self._journal is not None
        self._journal.save_snapshot(
            NodeSnapshot(
                counter=self.counter,
                black=self.black,
                sequence=self._sequence,
                transitions=self._transitions,
                probe_started=self._probe_started,
                wal_position=self._journal.position,
                stats=(
                    self.stats.transitions,
                    self.stats.heartbeats,
                    self.stats.deliveries,
                    self.stats.sent_facts,
                ),
                output=tuple(sorted(self.state.output)),
                memory=tuple(sorted(self.state.memory)),
                extra_input=tuple(sorted(self._extra_input)),
                epochs=self._epochs_injected,
                epoch_outputs=tuple(sorted(self.epoch_outputs.items())),
                current_epoch=self._epoch,
            )
        )
        self._closures_since_snapshot = 0

    async def _recover(self) -> None:
        """Rebuild pre-crash state: snapshot, then deterministic WAL-suffix
        replay.  Crashes are suppressed throughout (including the live tail
        of a closure the crash interrupted), so each recovery makes real
        progress."""
        assert self._journal is not None
        self._recovering = True
        try:
            snapshot = self._journal.load_snapshot()
            start = 0
            if snapshot is not None:
                self.counter = snapshot.counter
                self.black = snapshot.black
                self._sequence = snapshot.sequence
                self._transitions = snapshot.transitions
                self._probe_started = snapshot.probe_started
                self.state.output = Instance(set(snapshot.output))
                self.state.memory = Instance(set(snapshot.memory))
                (
                    self.stats.transitions,
                    self.stats.heartbeats,
                    self.stats.deliveries,
                    self.stats.sent_facts,
                ) = snapshot.stats
                self._extra_input = set(snapshot.extra_input)
                self._fragment = self._fragment | snapshot.extra_input
                self._epochs_injected = snapshot.epochs
                self.epoch_outputs = {
                    epoch: facts for epoch, facts in snapshot.epoch_outputs
                }
                self._epoch = snapshot.current_epoch
                start = snapshot.wal_position
            entries = self._journal.entries()[start:]
            if self._dedup:
                # Rebuild accepted-frame identities from the *entire* WAL
                # (not just the replayed suffix): frames folded into the
                # snapshot are just as accepted, and a restarted peer will
                # retransmit them too.
                for op in group_replay_ops(
                    self._journal.entries(), decode_data_frame=decode_envelope
                ):
                    self._seen_frames.update(op.frame_ids)
            for op in group_replay_ops(entries, decode_data_frame=decode_envelope):
                if op.kind == "closure":
                    if not op.boot:
                        self.counter -= op.envelopes
                        self.black = True
                        self.stats.deliveries += len(op.facts)
                    if op.epoch_boundary >= 0:
                        self._note_epoch_boundary(op.epoch_boundary)
                    self._apply_delta(op.delta_facts)
                    self._replay_sends = deque(op.sends)
                    await self._deliver_and_close(list(op.facts))
                    if self._replay_sends:
                        raise CheckpointError(
                            f"replay divergence at node {self.node!r}: "
                            f"{len(self._replay_sends)} logged sends were "
                            f"never regenerated"
                        )
                elif op.kind == "delta":
                    # Re-run the logged injection: the feed is pure, so the
                    # assignment regenerates identically; logged sends are
                    # consumed (and, under dedup, re-dispatched uncounted)
                    # exactly like a closure's.
                    self._epochs_injected = op.epoch
                    self._replay_sends = deque(op.sends)
                    if not await self._inject_epoch():
                        raise CheckpointError(
                            f"replay divergence at node {self.node!r}: the "
                            f"WAL records injecting epoch {op.epoch} but "
                            f"the feed has no such epoch"
                        )
                    if self._replay_sends:
                        raise CheckpointError(
                            f"replay divergence at node {self.node!r}: "
                            f"{len(self._replay_sends)} logged delta sends "
                            f"were never regenerated"
                        )
                elif op.kind == "token":
                    self.token = op.token
                else:  # token-sent: the token left again before the crash
                    self.token = None
                    self.black = False
                    self._probe_started = True
                    self._sequence = op.sequence
            if self._replay_sink is not None:
                self._replay_sink(len(entries))
        finally:
            self._recovering = False
        self._take_snapshot()

    # -- Safra's termination detection ------------------------------------

    async def _send_token(self, token: TokenState) -> None:
        envelope = Envelope(
            kind=KIND_TOKEN,
            sender=_wire_sender(self.node),
            round=token.probe,
            sequence=self._next_sequence(),
            token=token,
        )
        await self._endpoint.send(self._ring_next, encode_envelope(envelope))
        if self._journal is not None:
            # Log the departure (and the post-send sequence allocator, which
            # closure replay alone cannot reconstruct): a node that crashes
            # after forwarding must not resurrect holding the token.
            self._journal.append_token_sent(token.probe, self._sequence)

    async def _announce_stop(self) -> None:
        for target in self._peers:
            envelope = Envelope(
                kind=KIND_STOP,
                sender=_wire_sender(self.node),
                round=self._transitions,
                sequence=self._next_sequence(),
            )
            await self._endpoint.send(target, encode_envelope(envelope))

    async def _token_action_while_passive(self) -> None:
        """Called only at passive points: mailbox drained, closure done."""
        if self._initiator and not self._probe_started:
            self._probe_started = True
            self.black = False
            await self._send_token(TokenState(count=0, black=False, probe=1))
            return
        if self.token is None:
            return
        token, self.token = self.token, None
        if not self._initiator:
            forwarded = TokenState(
                count=token.count + self.counter,
                black=token.black or self.black,
                probe=token.probe,
            )
            self.black = False
            await self._send_token(forwarded)
            return
        # The probe came home.  Termination iff everything is white and the
        # global envelope count balances out.
        if not token.black and not self.black and token.count + self.counter == 0:
            if await self._inject_epoch():
                # Global quiescence held, but the feed had another epoch:
                # the injection re-armed the ring (counted envelopes are in
                # flight), so circulate a fresh white probe instead of
                # STOP.  The probe budget resets — each epoch is entitled
                # to its own detection rounds.
                self._failed_probes = 0
                self.black = False
                await self._send_token(
                    TokenState(count=0, black=False, probe=token.probe + 1)
                )
                return
            self.token_probes = token.probe
            await self._announce_stop()
            self._stopped = True
            return
        self._failed_probes += 1
        if self._failed_probes >= self._max_probes:
            raise QuiescenceError(
                f"cluster did not quiesce within {self._max_probes} "
                f"termination probes (counter={self.counter}, "
                f"token={token})"
            )
        # Give redelivery timers room before burning another circulation.
        if self._failed_probes > 3:
            await asyncio.sleep(min(0.001 * (self._failed_probes - 3), 0.02))
        self.black = False
        await self._send_token(
            TokenState(count=0, black=False, probe=token.probe + 1)
        )

    # -- the task body -----------------------------------------------------

    async def _startup(self) -> None:
        """First run: journal a boot marker, then the startup heartbeat
        closure.  Restart: recover from durable state instead."""
        if self._journal is not None and self._journal.has_history():
            await self._recover()
            return
        if self._journal is not None:
            self._journal.append_boot()
        await self._deliver_and_close([])

    async def run(self) -> None:
        await self._startup()
        while not self._stopped:
            await self._token_action_while_passive()
            if self._stopped:
                break
            frames = [await self._endpoint.recv()]
            while True:
                extra = self._endpoint.recv_nowait()
                if extra is None:
                    break
                frames.append(extra)
            batch: list[Fact] = []
            data_frames: list[bytes] = []
            delta_facts: list[Fact] = []
            boundary = -1
            for frame in frames:
                envelope = decode_envelope(frame)
                if self._dedup and envelope.kind != KIND_STOP:
                    # Retransmitted copy of a frame this node already
                    # accepted (durably, via the WAL): drop it without
                    # touching the Safra counter or colour — the original
                    # acceptance already accounted for it.
                    ident = (envelope.sender, envelope.sequence)
                    if ident in self._seen_frames:
                        continue
                    self._seen_frames.add(ident)
                if envelope.kind == KIND_STOP:
                    self._stopped = True
                elif envelope.kind == KIND_TOKEN:
                    # Write-ahead: the token is durable before it is held.
                    if self._journal is not None:
                        self._journal.append_token(frame)
                    self.token = envelope.token
                elif envelope.kind == KIND_DELTA:
                    # A streamed input extension: counted and journaled
                    # like data (same batch entry), but the facts grow the
                    # local input fragment instead of being delivered.
                    data_frames.append(frame)
                    delta_facts.extend(envelope.facts)
                    boundary = max(boundary, envelope.round)
                else:
                    data_frames.append(frame)
                    batch.extend(envelope.facts)
                    # Data stamped with sender epoch e proves boundary e-1
                    # passed, even if our delta envelope is still in flight
                    # on another connection.
                    boundary = max(boundary, envelope.round - 1)
            if self._stopped:
                # STOP implies global quiescence was detected, so no data
                # frame can share this drain — nothing is lost by exiting.
                break
            if data_frames:
                # Write-ahead: acceptance is durable before any effect, so
                # a crash inside the closure can replay the exact batch.
                if self._journal is not None:
                    self._journal.append_batch(data_frames)
                self.counter -= len(data_frames)
                self.black = True
                if boundary >= 0:
                    # Close the boundary first: output so far is still the
                    # previous epoch's final share (nothing in this drain
                    # has been delivered yet).
                    self._note_epoch_boundary(boundary)
                self._apply_delta(delta_facts)
                self.stats.deliveries += len(batch)
                await self._deliver_and_close(batch)


class ClusterRun:
    """A one-shot asynchronous execution of a transducer network.

    Mirrors :class:`~repro.transducers.runtime.Run`'s surface where it can
    (``global_output``, ``node_stats``, ``metrics``) and adds the
    cluster-only telemetry: per-node mailbox high-water marks, the held
    in-flight high-water of the fault layer, and the number of termination
    probes the Safra ring needed.
    """

    def __init__(
        self,
        network: TransducerNetwork,
        instance: Instance,
        *,
        transport: str | Transport = "memory",
        fault_plan: FaultPlan | None = None,
        seed: int = 0,
        mailbox_capacity: int = DEFAULT_MAILBOX_CAPACITY,
        tick: float = 0.002,
        max_probes: int = 10_000,
        timeout: float | None = 120.0,
        checkpoints: CheckpointStore | str | None = None,
        snapshot_every: int = 1,
        delta_feed=None,
    ) -> None:
        self._network = network
        self._instance = instance.restrict(network.transducer.schema.inputs)
        self._fragments = network.policy.distribute(self._instance)
        self._delta_feed = delta_feed
        if isinstance(transport, Transport):
            self._transport = transport
        else:
            self._transport = make_transport(
                transport, mailbox_capacity=mailbox_capacity
            )
        self._fault_layer = (
            FaultLayer(fault_plan, seed, tick=tick)
            if fault_plan is not None
            else None
        )
        if (
            checkpoints is None
            and fault_plan is not None
            and fault_plan.crash_rate > 0.0
        ):
            # Crash faults without durable state would lose work; default
            # to the in-run store (same role as the kernel socket buffer).
            checkpoints = "memory"
        self._checkpoints = (
            make_checkpoint_store(checkpoints) if checkpoints is not None else None
        )
        self._snapshot_every = snapshot_every
        self._seed = seed
        self._max_probes = max_probes
        self._timeout = timeout
        self._nodes: dict[Hashable, ClusterNode] = {}
        self._endpoints: dict[Hashable, object] = {}
        self._journals: dict[Hashable, NodeJournal] = {}
        self._completed = False
        self.metrics = RunMetrics()
        self.node_stats: dict[Hashable, NodeStats] = {}
        self.token_probes = 0
        self.in_flight_high_water = 0
        self.crashes = 0
        self.recoveries = 0
        self.wal_replayed = 0
        self.snapshot_bytes = 0
        # Streaming telemetry (populated by _harvest when a feed ran):
        # the global output at each epoch boundary, final output last.
        self.epoch_outputs: list[Instance] = []
        self.epochs = 0

    # -- accessors ---------------------------------------------------------

    @property
    def network(self) -> TransducerNetwork:
        return self._network

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def transport_name(self) -> str:
        name = self._transport.name
        return f"{name}+faulty" if self._fault_layer is not None else name

    def nodes(self) -> list[Hashable]:
        return self._network.network.sorted_nodes()

    def state(self, node: Hashable) -> NodeState:
        return self._nodes[node].state

    def local_input(self, node: Hashable) -> Instance:
        return self._fragments[node]

    def global_output(self) -> Instance:
        result = Instance()
        for cluster_node in self._nodes.values():
            result = result | cluster_node.state.output
        return result

    def fault_counters(self) -> dict[str, int]:
        if self._fault_layer is None:
            return {}
        return dict(self._fault_layer.counters)

    # -- execution ---------------------------------------------------------

    def run_to_quiescence(self) -> Instance:
        """Execute the cluster to detected quiescence; returns the global
        output.  Synchronous wrapper over :meth:`arun` — must not be called
        from inside a running event loop."""
        return asyncio.run(self.arun())

    def _feed_assignment(self, epoch: int) -> dict | None:
        """The per-node fragment assignment of feed epoch *epoch* (None
        past the end).  Pure in *epoch* — distribution policies are
        per-fact and memoized, so replaying an epoch after a crash yields
        the same assignment the pre-crash injection shipped."""
        batch = self._delta_feed.batch(epoch)
        if batch is None:
            return None
        delta = Instance(batch).restrict(self._network.transducer.schema.inputs)
        fragments = self._network.policy.distribute(delta)
        return {node: tuple(sorted(fragments[node])) for node in self.nodes()}

    def _make_node(self, index: int, node: Hashable, ordered: list) -> ClusterNode:
        crash_probe = None
        if self._fault_layer is not None and self._fault_layer.plan.crash_rate > 0.0:
            layer = self._fault_layer
            crash_probe = lambda layer=layer, node=node: layer.maybe_crash(node)
        return ClusterNode(
            node=node,
            network=self._network,
            fragment=self._fragments[node],
            endpoint=self._endpoints[node],
            peers=[n for n in ordered if n != node],
            ring_next=ordered[(index + 1) % len(ordered)],
            initiator=index == 0,
            max_probes=self._max_probes,
            journal=self._journals.get(node),
            crash_probe=crash_probe,
            snapshot_every=self._snapshot_every,
            replay_sink=self._note_replay,
            feed=(
                self._feed_assignment
                if index == 0 and self._delta_feed is not None
                else None
            ),
        )

    def _note_replay(self, entries: int) -> None:
        self.wal_replayed += entries

    async def _supervise(self, index: int, node: Hashable, ordered: list) -> None:
        """Run one node to completion, restarting it from durable state on
        every injected crash.  The endpoint, mailbox, and journal survive
        (they are infrastructure); only the node's volatile task dies."""
        while True:
            try:
                await self._nodes[node].run()
                return
            except NodeCrashed:
                self.crashes += 1
                self._nodes[node] = self._make_node(index, node, ordered)
                self.recoveries += 1

    async def arun(self) -> Instance:
        if self._completed:
            raise RuntimeError("a ClusterRun is one-shot; build a new one")
        self._completed = True
        ordered = self.nodes()
        endpoints = await self._transport.open(ordered)
        if self._fault_layer is not None:
            endpoints = {
                node: self._fault_layer.wrap(endpoint)
                for node, endpoint in endpoints.items()
            }
        self._endpoints = endpoints
        if self._checkpoints is not None:
            self._journals = {
                node: NodeJournal(self._checkpoints, node) for node in ordered
            }
        for index, node in enumerate(ordered):
            self._nodes[node] = self._make_node(index, node, ordered)
        tasks = [
            asyncio.ensure_future(self._supervise(index, node, ordered))
            for index, node in enumerate(ordered)
        ]
        try:
            gathered = asyncio.gather(*tasks)
            if self._timeout is not None:
                try:
                    await asyncio.wait_for(gathered, self._timeout)
                except asyncio.TimeoutError:
                    raise QuiescenceError(
                        f"cluster did not quiesce within {self._timeout}s "
                        f"wall clock"
                    ) from None
            else:
                await gathered
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            if self._fault_layer is not None:
                await self._fault_layer.drain()
            await self._transport.close()
        self._harvest()
        return self.global_output()

    def _harvest(self) -> None:
        """Fold per-node counters into Run-compatible telemetry.  Runs only
        after every node task has exited — this is reporting, not decision
        making; no node ever saw any of it."""
        fanout = max(len(self._nodes) - 1, 0)
        for node, cluster_node in self._nodes.items():
            stats = cluster_node.stats
            stats.buffer_high_water = self._transport.mailbox_high_water(node)
            self.node_stats[node] = stats
            self.metrics.transitions += stats.transitions
            self.metrics.heartbeats += stats.heartbeats
            self.metrics.message_deliveries += stats.deliveries
            self.metrics.message_facts_sent += stats.sent_facts * fanout
            if cluster_node.token_probes:
                self.token_probes = cluster_node.token_probes
        self.metrics.rounds = self.token_probes
        self.epochs = max(
            (cluster_node._epochs_injected for cluster_node in self._nodes.values()),
            default=0,
        )
        if self._delta_feed is not None:
            for epoch in range(self.epochs):
                output = Instance()
                for cluster_node in self._nodes.values():
                    output = output | cluster_node.epoch_outputs.get(epoch, ())
                self.epoch_outputs.append(output)
            self.epoch_outputs.append(self.global_output())
        if self._fault_layer is not None:
            self.in_flight_high_water = self._fault_layer.held_high_water
        if self._checkpoints is not None:
            self.snapshot_bytes = self._checkpoints.snapshot_bytes
