"""The wire codec: ``Fact``s and control payloads as versioned byte envelopes.

The synchronous simulator moves :class:`~repro.datalog.terms.Fact` objects
between Python ``Counter`` buffers by reference; a distributed runtime has to
put them on a wire.  This module defines that wire format:

* **values** — a small tagged binary encoding closed under the data values
  the engine actually uses (``None``, bools, arbitrary-precision ints,
  floats, unicode strings, bytes, and arbitrarily nested tuples — node
  identifiers and invented ILOG values are tuples of strings/ints);
* **facts** — relation name + encoded value tuple;
* **envelopes** — a fixed header (magic, codec version, kind, sender,
  round, sequence) followed by a kind-specific body:

  ========  ====================================================
  kind      body
  ========  ====================================================
  DATA      the batch of message facts produced by one transition
  TOKEN     a Safra termination-detection token (count, colour,
            probe number) — see :mod:`repro.cluster.runtime`
  STOP      empty; the initiator's shutdown broadcast
  ========  ====================================================

Decoding is strict: truncated buffers, bad magic, unknown versions, unknown
tags and trailing bytes all raise :class:`CodecError` rather than returning
partial data — a node must never act on a frame it cannot fully parse.
Every integer field is little-endian and length-prefixed payloads carry a
``u32`` length, so the format is platform-independent.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Hashable

from ..datalog.terms import Fact

__all__ = [
    "CODEC_VERSION",
    "MAGIC",
    "KIND_DATA",
    "KIND_TOKEN",
    "KIND_STOP",
    "KIND_DELTA",
    "KIND_NAMES",
    "CodecError",
    "TokenState",
    "Envelope",
    "encode_value",
    "decode_value",
    "encode_fact",
    "decode_fact",
    "encode_envelope",
    "decode_envelope",
    "peek_kind",
]

#: First bytes of every frame ("RePro Wire Codec").
MAGIC = b"RPWC"

#: Bumped whenever the wire layout changes; decoders reject everything else.
CODEC_VERSION = 1

KIND_DATA = 1
KIND_TOKEN = 2
KIND_STOP = 3
#: Streaming input injection: like a data envelope on the wire (it carries
#: facts and is counted by the Safra ring), but the facts *extend the
#: receiver's local input fragment* instead of being delivered as messages.
#: The ``round`` field carries the feed epoch index.
KIND_DELTA = 4

KIND_NAMES = {
    KIND_DATA: "data",
    KIND_TOKEN: "token",
    KIND_STOP: "stop",
    KIND_DELTA: "delta",
}

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

# Value tags.
_T_NONE = 0x4E  # 'N'
_T_TRUE = 0x54  # 'T'
_T_FALSE = 0x46  # 'F'
_T_INT = 0x49  # 'I'
_T_FLOAT = 0x44  # 'D'
_T_STR = 0x53  # 'S'
_T_BYTES = 0x42  # 'B'
_T_TUPLE = 0x55  # 'U'


class CodecError(ValueError):
    """Raised on malformed, truncated, or wrong-version wire data, and on
    attempts to encode values outside the wire-representable universe."""


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------


def _encode_value(value: Hashable, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        payload = value.to_bytes((value.bit_length() + 8) // 8, "little", signed=True)
        out.append(_T_INT)
        out += _U32.pack(len(payload))
        out += payload
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif type(value) is str:
        payload = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(payload))
        out += payload
    elif type(value) is bytes:
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
    else:
        raise CodecError(
            f"value {value!r} of type {type(value).__name__} is not "
            f"wire-representable (supported: None, bool, int, float, str, "
            f"bytes, tuple)"
        )


class _Reader:
    """A strict cursor over a bytes buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise CodecError(
                f"truncated frame: wanted {count} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def done(self) -> bool:
        return self.pos == len(self.data)


def _decode_value(reader: _Reader) -> Hashable:
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return int.from_bytes(reader.take(reader.u32()), "little", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        try:
            return reader.take(reader.u32()).decode("utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(f"invalid utf-8 in string payload: {error}") from None
    if tag == _T_BYTES:
        return bytes(reader.take(reader.u32()))
    if tag == _T_TUPLE:
        count = reader.u32()
        if count > len(reader.data):  # cheap bomb guard: one byte per element min
            raise CodecError(f"tuple length {count} exceeds frame size")
        return tuple(_decode_value(reader) for _ in range(count))
    raise CodecError(f"unknown value tag 0x{tag:02x} at offset {reader.pos - 1}")


def encode_value(value: Hashable) -> bytes:
    """Encode one tagged value to a self-contained byte string.

    The same tagged encoding the envelope bodies use; the checkpoint layer
    (:mod:`repro.cluster.checkpoint`) builds snapshots and write-ahead-log
    entries out of these so durable state shares the wire format's
    versioning and strictness.
    """
    out = bytearray()
    _encode_value(value, out)
    return bytes(out)


def decode_value(data: bytes) -> Hashable:
    """Decode one tagged value; the buffer must contain exactly one value."""
    reader = _Reader(data)
    value = _decode_value(reader)
    if not reader.done():
        raise CodecError(f"{len(data) - reader.pos} trailing bytes after value")
    return value


# ----------------------------------------------------------------------
# Facts
# ----------------------------------------------------------------------


def _encode_fact(fact: Fact, out: bytearray) -> None:
    relation = fact.relation.encode("utf-8")
    out += _U32.pack(len(relation))
    out += relation
    out += _U32.pack(len(fact.values))
    for value in fact.values:
        _encode_value(value, out)


def encode_fact(fact: Fact) -> bytes:
    """Encode one fact (relation + value tuple) to bytes."""
    out = bytearray()
    _encode_fact(fact, out)
    return bytes(out)


def _decode_fact(reader: _Reader) -> Fact:
    try:
        relation = reader.take(reader.u32()).decode("utf-8")
    except UnicodeDecodeError as error:
        raise CodecError(f"invalid utf-8 in relation name: {error}") from None
    if not relation:
        raise CodecError("fact with empty relation name")
    arity = reader.u32()
    if arity > len(reader.data):
        raise CodecError(f"fact arity {arity} exceeds frame size")
    values = tuple(_decode_value(reader) for _ in range(arity))
    return Fact(relation, values)


def decode_fact(data: bytes) -> Fact:
    """Decode one fact; the buffer must contain exactly one fact."""
    reader = _Reader(data)
    fact = _decode_fact(reader)
    if not reader.done():
        raise CodecError(f"{len(data) - reader.pos} trailing bytes after fact")
    return fact


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TokenState:
    """The payload of a Safra termination token.

    ``count`` accumulates the per-node (sent − received) message counters as
    the token travels the ring; ``black`` records whether any visited node
    received a message since it last forwarded the token; ``probe`` numbers
    the circulation (telemetry: how many ring round-trips quiescence took).
    """

    count: int = 0
    black: bool = False
    probe: int = 1


@dataclass(frozen=True)
class Envelope:
    """One wire frame: header metadata plus a kind-specific body."""

    kind: int
    sender: Hashable
    round: int
    sequence: int
    facts: tuple[Fact, ...] = ()
    token: TokenState | None = None

    def __post_init__(self) -> None:
        if self.kind not in KIND_NAMES:
            raise CodecError(f"unknown envelope kind {self.kind!r}")
        if self.kind == KIND_TOKEN and self.token is None:
            raise CodecError("token envelopes need a TokenState")
        if self.kind not in (KIND_DATA, KIND_DELTA) and self.facts:
            raise CodecError("only data and delta envelopes carry facts")


def encode_envelope(envelope: Envelope) -> bytes:
    """Serialize an envelope to one self-contained frame."""
    out = bytearray()
    out += MAGIC
    out.append(CODEC_VERSION)
    out.append(envelope.kind)
    _encode_value(envelope.sender, out)
    out += _U32.pack(envelope.round)
    out += _U64.pack(envelope.sequence)
    if envelope.kind in (KIND_DATA, KIND_DELTA):
        out += _U32.pack(len(envelope.facts))
        for fact in envelope.facts:
            _encode_fact(fact, out)
    elif envelope.kind == KIND_TOKEN:
        token = envelope.token
        assert token is not None
        _encode_value(int(token.count), out)
        out.append(1 if token.black else 0)
        out += _U32.pack(token.probe)
    return bytes(out)


def decode_envelope(data: bytes) -> Envelope:
    """Parse one frame, validating magic, version, kinds and exact length."""
    reader = _Reader(data)
    magic = reader.take(4)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (expected {MAGIC!r})")
    version = reader.u8()
    if version != CODEC_VERSION:
        raise CodecError(
            f"unsupported codec version {version} (this build speaks "
            f"{CODEC_VERSION})"
        )
    kind = reader.u8()
    if kind not in KIND_NAMES:
        raise CodecError(f"unknown envelope kind {kind}")
    sender = _decode_value(reader)
    round_ = reader.u32()
    sequence = reader.u64()
    facts: tuple[Fact, ...] = ()
    token: TokenState | None = None
    if kind in (KIND_DATA, KIND_DELTA):
        count = reader.u32()
        if count > len(reader.data):
            raise CodecError(f"fact count {count} exceeds frame size")
        facts = tuple(_decode_fact(reader) for _ in range(count))
    elif kind == KIND_TOKEN:
        count_value = _decode_value(reader)
        if type(count_value) is not int:
            raise CodecError("token count must be an int")
        colour = reader.u8()
        if colour not in (0, 1):
            raise CodecError(f"token colour must be 0 or 1, got {colour}")
        token = TokenState(
            count=count_value, black=bool(colour), probe=reader.u32()
        )
    if not reader.done():
        raise CodecError(f"{len(data) - reader.pos} trailing bytes after envelope")
    return Envelope(
        kind=kind,
        sender=sender,
        round=round_,
        sequence=sequence,
        facts=facts,
        token=token,
    )


def peek_kind(data: bytes) -> int:
    """The envelope kind of a frame without a full decode (transport fault
    wrappers use this to leave control traffic on the reliable path)."""
    if len(data) < 6 or data[:4] != MAGIC:
        raise CodecError("not an envelope frame")
    if data[4] != CODEC_VERSION:
        raise CodecError(f"unsupported codec version {data[4]}")
    kind = data[5]
    if kind not in KIND_NAMES:
        raise CodecError(f"unknown envelope kind {kind}")
    return kind
