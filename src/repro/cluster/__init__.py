"""repro.cluster: the asynchronous distributed runtime.

Runs a :class:`~repro.transducers.runtime.TransducerNetwork` as concurrent
asyncio tasks — one per node, each with a bounded mailbox — talking only
through a versioned wire codec over pluggable transports, with quiescence
detected decentrally by Safra's token-ring algorithm.  See
``docs/CLUSTER.md`` for the architecture and the termination argument.
"""

from .codec import (
    CODEC_VERSION,
    CodecError,
    Envelope,
    TokenState,
    decode_envelope,
    decode_fact,
    encode_envelope,
    encode_fact,
)
from .faults import FaultLayer, FaultyEndpoint
from .gate import check_workload, gate_workloads
from .runtime import ClusterNode, ClusterRun
from .telemetry import build_cluster_report
from .transport import (
    TRANSPORT_NAMES,
    Endpoint,
    InMemoryTransport,
    Mailbox,
    TcpTransport,
    Transport,
    TransportError,
    make_transport,
)

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "Envelope",
    "TokenState",
    "encode_fact",
    "decode_fact",
    "encode_envelope",
    "decode_envelope",
    "FaultLayer",
    "FaultyEndpoint",
    "ClusterNode",
    "ClusterRun",
    "check_workload",
    "gate_workloads",
    "build_cluster_report",
    "Endpoint",
    "Mailbox",
    "Transport",
    "InMemoryTransport",
    "TcpTransport",
    "TransportError",
    "TRANSPORT_NAMES",
    "make_transport",
]
