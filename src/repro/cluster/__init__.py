"""repro.cluster: the asynchronous distributed runtime.

Runs a :class:`~repro.transducers.runtime.TransducerNetwork` as concurrent
asyncio tasks — one per node, each with a bounded mailbox — talking only
through a versioned wire codec over pluggable transports, with quiescence
detected decentrally by Safra's token-ring algorithm.  See
``docs/CLUSTER.md`` for the architecture and the termination argument.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointStore,
    DiskCheckpointStore,
    MemoryCheckpointStore,
    NodeJournal,
    NodeSnapshot,
    make_checkpoint_store,
)
from .codec import (
    CODEC_VERSION,
    CodecError,
    Envelope,
    TokenState,
    decode_envelope,
    decode_fact,
    decode_value,
    encode_envelope,
    encode_fact,
    encode_value,
)
from .faults import CRASH_PLAN, FaultLayer, FaultyEndpoint, NodeCrashed
from .gate import check_process_workload, check_workload, gate_workloads
from .procs import (
    SCALING_BLOCK,
    ClusterShutdown,
    ProcessCluster,
    scaling_workload,
    scaling_workload_by_key,
    workload_spec_for,
)
from .runtime import ClusterNode, ClusterRun
from .telemetry import build_cluster_report
from .transport import (
    TRANSPORT_NAMES,
    Endpoint,
    InMemoryTransport,
    Mailbox,
    TcpTransport,
    Transport,
    TransportError,
    make_transport,
)

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "Envelope",
    "TokenState",
    "encode_fact",
    "decode_fact",
    "encode_envelope",
    "decode_envelope",
    "encode_value",
    "decode_value",
    "CheckpointError",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DiskCheckpointStore",
    "NodeJournal",
    "NodeSnapshot",
    "make_checkpoint_store",
    "CRASH_PLAN",
    "FaultLayer",
    "FaultyEndpoint",
    "NodeCrashed",
    "ClusterNode",
    "ClusterRun",
    "ClusterShutdown",
    "ProcessCluster",
    "SCALING_BLOCK",
    "scaling_workload",
    "scaling_workload_by_key",
    "workload_spec_for",
    "check_process_workload",
    "check_workload",
    "gate_workloads",
    "build_cluster_report",
    "Endpoint",
    "Mailbox",
    "Transport",
    "InMemoryTransport",
    "TcpTransport",
    "TransportError",
    "TRANSPORT_NAMES",
    "make_transport",
]
