"""Durable node state: snapshots plus a write-ahead log of accepted work.

Relational-transducer semantics make a node's entire volatile state a small
queryable database — an output instance, a memory instance, and a handful
of protocol counters (Safra message counter, colour, wire-sequence
allocator).  That is exactly what makes crash recovery cheap here: persist
a **snapshot** of that database now and then, persist every *accepted*
input (delivered data envelopes, termination tokens) and every *counted*
output (wire dispatches) in an append-only **write-ahead log**, and any
crash can be healed by reloading the last snapshot and deterministically
re-running the logged suffix.

Durability rules (the write-ahead contract):

* a data envelope is logged (``batch`` entry) **before** any of its
  effects run — acceptance *is* the durable acknowledgement;
* a wire dispatch is logged (``send`` entry) with the number of copies the
  fault layer put in flight, so a recovering node can reconstruct its
  Safra sent-counter exactly and **skip** re-dispatching frames that are
  already on the wire;
* token receipt and token forwarding are logged (``token`` /
  ``token-sent``) so a crash never swallows the circulating Safra token.

Everything on disk or in memory is encoded with the wire codec's tagged
values (:func:`repro.cluster.codec.encode_value`), so durable state is as
strictly versioned and platform-independent as the wire itself.

Two stores ship: :class:`MemoryCheckpointStore` (per-run, used by the
divergence gate and the fault layer's default) and
:class:`DiskCheckpointStore` (a directory of per-node snapshot files and
length-prefixed WAL files that survives process restarts).
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass
from typing import Hashable

from ..datalog.terms import Fact
from .codec import KIND_DELTA, CodecError, TokenState, decode_value, encode_value

__all__ = [
    "SNAPSHOT_VERSION",
    "CheckpointError",
    "NodeSnapshot",
    "ReplayOp",
    "group_replay_ops",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DiskCheckpointStore",
    "NodeJournal",
]

#: Bumped whenever the snapshot layout changes; decoders reject the rest.
#: v2 added the streaming-ingestion fields (``extra_input``, ``epochs``,
#: ``epoch_outputs``).
SNAPSHOT_VERSION = 2

_SNAPSHOT_MAGIC = "repro-snapshot"
_LEN = struct.Struct("<I")


class CheckpointError(RuntimeError):
    """Raised on malformed durable state or a replay that diverges from
    the logged execution (both are unrecoverable bugs, not fair faults)."""


def _facts_to_value(facts) -> tuple:
    return tuple((fact.relation, fact.values) for fact in sorted(facts))


def _facts_from_value(value) -> tuple[Fact, ...]:
    try:
        return tuple(Fact(relation, values) for relation, values in value)
    except (TypeError, ValueError) as error:
        raise CheckpointError(f"malformed fact list in snapshot: {error}") from None


@dataclass(frozen=True)
class NodeSnapshot:
    """One durable image of a node's volatile state.

    ``counter`` is the Safra sent-minus-received counter — snapshotting it
    (and adjusting it per logged WAL entry on replay) is what lets a
    recovered node rejoin the token ring without ever undercounting its
    own in-flight sends.  ``wal_position`` is the number of WAL entries
    already folded into this snapshot; recovery replays only the suffix.
    """

    counter: int
    black: bool
    sequence: int
    transitions: int
    probe_started: bool
    wal_position: int
    stats: tuple[int, int, int, int]  # transitions, heartbeats, deliveries, sent
    output: tuple[Fact, ...]
    memory: tuple[Fact, ...]
    #: Late-arriving input accepted from a delta feed (the fragment a
    #: recovering node must add on top of its configured base fragment).
    extra_input: tuple[Fact, ...] = ()
    #: Feed epochs already injected (nonzero only on the initiator).
    epochs: int = 0
    #: Per-epoch output snapshots: ((epoch, facts), ...) — the trajectory
    #: the delta-preservation oracle reads after the run.
    epoch_outputs: tuple = ()
    #: The epoch this node currently works in (stamped onto outgoing data
    #: frames so receivers can close epoch boundaries even when a peer's
    #: post-injection data races ahead of the initiator's delta envelope).
    current_epoch: int = 0

    def encode(self) -> bytes:
        return encode_value(
            (
                _SNAPSHOT_MAGIC,
                SNAPSHOT_VERSION,
                self.counter,
                self.black,
                self.sequence,
                self.transitions,
                self.probe_started,
                self.wal_position,
                tuple(self.stats),
                _facts_to_value(self.output),
                _facts_to_value(self.memory),
                _facts_to_value(self.extra_input),
                self.epochs,
                tuple(
                    (epoch, _facts_to_value(facts))
                    for epoch, facts in self.epoch_outputs
                ),
                self.current_epoch,
            )
        )

    @classmethod
    def decode(cls, blob: bytes) -> "NodeSnapshot":
        try:
            value = decode_value(blob)
        except CodecError as error:
            raise CheckpointError(f"undecodable snapshot: {error}") from None
        if (
            not isinstance(value, tuple)
            or len(value) != 15
            or value[0] != _SNAPSHOT_MAGIC
        ):
            raise CheckpointError("not a node snapshot")
        if value[1] != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"unsupported snapshot version {value[1]} (this build speaks "
                f"{SNAPSHOT_VERSION})"
            )
        stats = tuple(value[8])
        if len(stats) != 4 or not all(type(item) is int for item in stats):
            raise CheckpointError(f"malformed stats tuple {stats!r}")
        return cls(
            counter=value[2],
            black=bool(value[3]),
            sequence=value[4],
            transitions=value[5],
            probe_started=bool(value[6]),
            wal_position=value[7],
            stats=stats,  # type: ignore[arg-type]
            output=_facts_from_value(value[9]),
            memory=_facts_from_value(value[10]),
            extra_input=_facts_from_value(value[11]),
            epochs=value[12],
            epoch_outputs=tuple(
                (epoch, _facts_from_value(facts)) for epoch, facts in value[13]
            ),
            current_epoch=value[14],
        )


# ----------------------------------------------------------------------
# WAL entries and replay grouping
# ----------------------------------------------------------------------

_ENTRY_KINDS = {"boot", "batch", "token", "send", "token-sent", "delta"}


def encode_entry(entry: tuple) -> bytes:
    """Encode one WAL entry (a tagged tuple, head = entry kind)."""
    if not entry or entry[0] not in _ENTRY_KINDS:
        raise CheckpointError(f"unknown WAL entry {entry!r}")
    return encode_value(entry)


def decode_entry(blob: bytes) -> tuple:
    try:
        entry = decode_value(blob)
    except CodecError as error:
        raise CheckpointError(f"undecodable WAL entry: {error}") from None
    if not isinstance(entry, tuple) or not entry or entry[0] not in _ENTRY_KINDS:
        raise CheckpointError(f"unknown WAL entry {entry!r}")
    return entry


@dataclass
class ReplayOp:
    """One step of a recovery replay, in logged order.

    ``closure`` ops re-run a deliver-and-close cycle (``boot`` is the
    startup closure); their ``sends`` are the dispatches the pre-crash
    execution already counted, consumed (and skipped on the wire) as the
    deterministic re-execution produces them again.  ``token`` restores a
    held Safra token; ``token-sent`` marks it forwarded and restores the
    sequence allocator to its post-forward value.
    """

    kind: str  # "closure" | "token" | "token-sent" | "delta"
    boot: bool = False
    envelopes: int = 0
    facts: tuple = ()
    sends: tuple = ()  # of (target, sequence, count)
    token: TokenState | None = None
    sequence: int = 0
    #: Input facts accepted from delta envelopes within this closure —
    #: applied to the local fragment *before* the closure re-runs.
    delta_facts: tuple = ()
    #: The highest epoch boundary this closure's frames imply (delta
    #: envelopes name their boundary directly; a data frame stamped with
    #: sender epoch e implies boundary e-1).  Replay re-records every
    #: still-missing boundary up to it from the pre-closure output, just
    #: like live acceptance; -1 means no boundary information.
    epoch_boundary: int = -1
    #: For ``delta`` ops: the feed epoch the initiator injected.  Replay
    #: recomputes the per-node assignment from the (deterministic) feed
    #: and consumes the logged sends, exactly like a closure.
    epoch: int = 0
    #: (sender, sequence) of each accepted frame this op covers — the
    #: durable identity a deduplicating receiver rebuilds after a real
    #: process kill, so retransmitted copies of already-accepted frames
    #: are dropped instead of double-counted.
    frame_ids: tuple = ()


def group_replay_ops(entries, *, decode_data_frame) -> list[ReplayOp]:
    """Fold a WAL suffix into ordered :class:`ReplayOp`s.

    ``decode_data_frame`` maps a logged wire frame to its envelope (the
    caller supplies :func:`repro.cluster.codec.decode_envelope`; injected
    to keep this module free of envelope layout knowledge).
    """
    ops: list[ReplayOp] = []
    for entry in entries:
        kind = entry[0]
        if kind in ("boot", "batch"):
            if kind == "boot":
                ops.append(ReplayOp(kind="closure", boot=True))
            else:
                frames = entry[1]
                facts: list = []
                delta_facts: list = []
                boundary = -1
                ids: list = []
                for frame in frames:
                    envelope = decode_data_frame(frame)
                    if envelope.kind == KIND_DELTA:
                        delta_facts.extend(envelope.facts)
                        boundary = max(boundary, envelope.round)
                    else:
                        facts.extend(envelope.facts)
                        boundary = max(boundary, envelope.round - 1)
                    ids.append((envelope.sender, envelope.sequence))
                ops.append(
                    ReplayOp(
                        kind="closure",
                        envelopes=len(frames),
                        facts=tuple(facts),
                        delta_facts=tuple(delta_facts),
                        epoch_boundary=boundary,
                        frame_ids=tuple(ids),
                    )
                )
        elif kind == "send":
            if not ops or ops[-1].kind not in ("closure", "delta"):
                raise CheckpointError(
                    "WAL send entry outside any closure — corrupt log"
                )
            ops[-1].sends = ops[-1].sends + ((entry[1], entry[2], entry[3]),)
        elif kind == "delta":
            ops.append(ReplayOp(kind="delta", epoch=entry[1]))
        elif kind == "token":
            envelope = decode_data_frame(entry[1])
            if envelope.token is None:
                raise CheckpointError("token WAL entry without a TokenState")
            ops.append(
                ReplayOp(
                    kind="token",
                    token=envelope.token,
                    frame_ids=((envelope.sender, envelope.sequence),),
                )
            )
        elif kind == "token-sent":
            ops.append(ReplayOp(kind="token-sent", sequence=entry[2]))
    return ops


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------


class CheckpointStore:
    """Base interface: per-node latest snapshot + append-only WAL, with
    byte counters for telemetry (``snapshot_bytes``, ``wal_bytes``)."""

    name = "abstract"

    def __init__(self) -> None:
        self.snapshot_bytes = 0
        self.wal_bytes = 0

    def save_snapshot(self, node: Hashable, blob: bytes) -> None:
        raise NotImplementedError

    def load_snapshot(self, node: Hashable) -> bytes | None:
        raise NotImplementedError

    def append_wal(self, node: Hashable, blob: bytes) -> None:
        raise NotImplementedError

    def wal(self, node: Hashable) -> list[bytes]:
        raise NotImplementedError

    def has_state(self, node: Hashable) -> bool:
        return self.load_snapshot(node) is not None or bool(self.wal(node))


class MemoryCheckpointStore(CheckpointStore):
    """Durability relative to *node* lifetimes, not the process: state
    survives a node task's crash because it lives in the run harness.
    This is the model the divergence gate uses — the same role the kernel
    socket buffer plays for the transport."""

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._snapshots: dict[Hashable, bytes] = {}
        self._wals: dict[Hashable, list[bytes]] = {}

    def save_snapshot(self, node: Hashable, blob: bytes) -> None:
        self._snapshots[node] = blob
        self.snapshot_bytes += len(blob)

    def load_snapshot(self, node: Hashable) -> bytes | None:
        return self._snapshots.get(node)

    def append_wal(self, node: Hashable, blob: bytes) -> None:
        self._wals.setdefault(node, []).append(blob)
        self.wal_bytes += len(blob)

    def wal(self, node: Hashable) -> list[bytes]:
        return list(self._wals.get(node, []))


class DiskCheckpointStore(CheckpointStore):
    """On-disk backend: ``<key>.snap`` (latest snapshot, replaced
    atomically via rename) and ``<key>.wal`` (append-only, ``u32``
    length-prefixed entries) per node under one directory.  A fresh store
    over the same directory sees everything a previous process wrote.
    """

    name = "disk"

    def __init__(self, directory) -> None:
        super().__init__()
        self._dir = os.fspath(directory)
        os.makedirs(self._dir, exist_ok=True)

    def _key(self, node: Hashable) -> str:
        return hashlib.sha256(repr(node).encode("utf-8")).hexdigest()[:16]

    def _snap_path(self, node: Hashable) -> str:
        return os.path.join(self._dir, f"{self._key(node)}.snap")

    def _wal_path(self, node: Hashable) -> str:
        return os.path.join(self._dir, f"{self._key(node)}.wal")

    def save_snapshot(self, node: Hashable, blob: bytes) -> None:
        path = self._snap_path(node)
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
        self.snapshot_bytes += len(blob)

    def load_snapshot(self, node: Hashable) -> bytes | None:
        try:
            with open(self._snap_path(node), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def append_wal(self, node: Hashable, blob: bytes) -> None:
        with open(self._wal_path(node), "ab") as handle:
            handle.write(_LEN.pack(len(blob)) + blob)
        self.wal_bytes += len(blob)

    def wal(self, node: Hashable) -> list[bytes]:
        try:
            with open(self._wal_path(node), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return []
        entries = []
        position = 0
        while position < len(data):
            # A SIGKILL can land mid-append and tear the final entry.  The
            # write-ahead contract makes dropping the torn tail safe: a
            # torn ``batch``/``token`` never had its effects run (logging
            # precedes effects) and the sender will retransmit the frame;
            # a torn ``send``/``token-sent`` is regenerated by the
            # deterministic replay with the same wire identity, which the
            # receiver's dedup absorbs.  Only the *last* entry can be torn
            # (appends are sequential), so any short read here is a tail.
            if position + _LEN.size > len(data):
                break  # torn tail: header cut short
            (length,) = _LEN.unpack(data[position:position + _LEN.size])
            position += _LEN.size
            if position + length > len(data):
                break  # torn tail: body cut short
            entries.append(data[position:position + length])
            position += length
        return entries


class NodeJournal:
    """One node's handle on a store: entry/snapshot encoding in, decoded
    history out.  This is the only interface node logic touches."""

    def __init__(self, store: CheckpointStore, node: Hashable) -> None:
        self._store = store
        self._node = node
        self._position = len(store.wal(node))

    @property
    def position(self) -> int:
        """Total WAL entries logged for this node (snapshots record it as
        ``wal_position`` so recovery replays only the suffix)."""
        return self._position

    def has_history(self) -> bool:
        return self._store.has_state(self._node)

    def _append(self, entry: tuple) -> None:
        self._store.append_wal(self._node, encode_entry(entry))
        self._position += 1

    # -- the write-ahead side ---------------------------------------------

    def append_boot(self) -> None:
        self._append(("boot",))

    def append_batch(self, frames) -> None:
        self._append(("batch", tuple(frames)))

    def append_token(self, frame: bytes) -> None:
        self._append(("token", frame))

    def append_send(self, target: Hashable, sequence: int, count: int) -> None:
        self._append(("send", target, sequence, count))

    def append_token_sent(self, probe: int, sequence: int) -> None:
        self._append(("token-sent", probe, sequence))

    def append_delta(self, epoch: int) -> None:
        """Log that the feed's *epoch* is about to be injected (initiator
        only; written before any of the epoch's delta envelopes ship)."""
        self._append(("delta", epoch))

    # -- the recovery side -------------------------------------------------

    def entries(self) -> list[tuple]:
        return [decode_entry(blob) for blob in self._store.wal(self._node)]

    def save_snapshot(self, snapshot: NodeSnapshot) -> None:
        self._store.save_snapshot(self._node, snapshot.encode())

    def load_snapshot(self) -> NodeSnapshot | None:
        blob = self._store.load_snapshot(self._node)
        if blob is None:
            return None
        return NodeSnapshot.decode(blob)


def make_checkpoint_store(spec) -> CheckpointStore:
    """Build a store from a CLI-ish spec: an existing store passes
    through, ``"memory"`` makes the in-run store, anything else is a
    directory path for the disk backend."""
    if isinstance(spec, CheckpointStore):
        return spec
    if spec == "memory":
        return MemoryCheckpointStore()
    return DiskCheckpointStore(spec)
