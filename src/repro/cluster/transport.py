"""Pluggable transports: how encoded envelopes move between cluster nodes.

A :class:`Transport` owns the infrastructure (queues or sockets) and hands
each node exactly one :class:`Endpoint`.  The endpoint is the *whole* world
a node may observe: ``send(target, frame)`` and ``recv()`` /
``recv_nowait()`` over its own bounded mailbox.  Nothing on the interface
exposes another node's mailbox or any global buffer state — the
decentralized-quiescence guarantee of :mod:`repro.cluster.runtime` is
enforced structurally here (and asserted by a test that runs the nodes
behind a proxy stripping everything but send/receive).

Two transports ship:

* :class:`InMemoryTransport` — per-node ``asyncio.Queue`` mailboxes inside
  one event loop; the default, fastest, zero-setup option.
* :class:`TcpTransport` — every node listens on a loopback TCP socket and
  keeps one persistent connection per peer; frames are length-prefixed.
  Same interface, real sockets, real kernel buffering.

Mailboxes are *bounded* (``mailbox_capacity``): a sender awaiting
``send()`` on a full mailbox experiences backpressure exactly like a
blocking socket write.  High-water marks are tracked for telemetry.

One exception to backpressure: **self-delivery bypasses the bound**
(:meth:`Mailbox.force_put`).  A node that ``await``s a send into its own
full mailbox can never return to ``recv()`` to drain it — a deadlock no
other node can break.  Real stacks dodge this the same way (a loopback
write lands in a kernel buffer the writer doesn't sleep on), which is why
only :class:`InMemoryTransport` needs the explicit bypass.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Hashable, Iterable

__all__ = [
    "TransportError",
    "Mailbox",
    "Endpoint",
    "Transport",
    "InMemoryTransport",
    "TcpTransport",
    "make_transport",
    "dial_with_retry",
    "TRANSPORT_NAMES",
    "DEFAULT_DIAL_TIMEOUT",
    "DEFAULT_DIAL_ATTEMPTS",
    "DEFAULT_DIAL_BACKOFF",
]

_LEN = struct.Struct("<I")

#: Default bound on a node mailbox, in frames.  Generous relative to the
#: experiment sizes; small enough that a runaway protocol hits backpressure
#: instead of exhausting memory.
DEFAULT_MAILBOX_CAPACITY = 1024

#: Per-attempt connect timeout, seconds.
DEFAULT_DIAL_TIMEOUT = 5.0
#: Bounded connect attempts before a dial is declared failed.
DEFAULT_DIAL_ATTEMPTS = 8
#: First retry delay, seconds; doubles per attempt (capped at 1s).
DEFAULT_DIAL_BACKOFF = 0.05


class TransportError(RuntimeError):
    """Raised when a transport cannot be started or a peer is unknown."""


async def dial_with_retry(
    host: str,
    port: int,
    *,
    timeout: float = DEFAULT_DIAL_TIMEOUT,
    attempts: int = DEFAULT_DIAL_ATTEMPTS,
    backoff: float = DEFAULT_DIAL_BACKOFF,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Open a TCP connection with a per-attempt timeout and bounded,
    exponentially backed-off retries.

    A peer that comes up a beat late — or is restarting after a kill —
    refuses the first connect; retrying briefly is the difference between
    a self-healing deployment and one that fails a whole run on a single
    ECONNREFUSED.  The budget is bounded so a genuinely dead peer still
    surfaces as a :class:`TransportError` instead of a hang.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = backoff
    last_error: Exception | None = None
    for attempt in range(attempts):
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        except (OSError, asyncio.TimeoutError) as error:
            last_error = error
            if attempt + 1 < attempts:
                await asyncio.sleep(delay)
                delay = min(delay * 2, 1.0)
    raise TransportError(
        f"could not connect to {host}:{port} after {attempts} "
        f"attempt(s): {last_error!r}"
    )


class Mailbox:
    """A bounded frame queue with a high-water mark (telemetry).

    The bound is a semaphore over an unbounded queue rather than a bounded
    ``asyncio.Queue``: :meth:`force_put` must be able to overshoot the
    capacity (self-delivery; see the module docstring) without either
    blocking or stealing a slot from metered senders.  Each queued frame
    remembers whether it took a slot, so a slot is released exactly when a
    *metered* frame departs — the semaphore always meters exactly the
    metered frames in the queue, however they interleave with forced ones.
    """

    def __init__(self, capacity: int = DEFAULT_MAILBOX_CAPACITY) -> None:
        self._queue: asyncio.Queue[tuple[bytes, bool]] = asyncio.Queue()
        self._slots = asyncio.Semaphore(capacity)
        self.high_water = 0
        self.enqueued = 0
        self.forced = 0

    def _note_enqueued(self) -> None:
        self.enqueued += 1
        depth = self._queue.qsize()
        if depth > self.high_water:
            self.high_water = depth

    async def put(self, frame: bytes) -> None:
        """Enqueue one frame, awaiting a free slot if at capacity."""
        await self._slots.acquire()
        self._queue.put_nowait((frame, True))
        self._note_enqueued()

    def force_put(self, frame: bytes) -> None:
        """Enqueue one frame regardless of capacity (never blocks).

        For deliveries where backpressure would deadlock the only task
        able to relieve it — a node sending to itself.
        """
        self._queue.put_nowait((frame, False))
        self.forced += 1
        self._note_enqueued()

    def _departed(self, metered: bool) -> None:
        if metered:
            self._slots.release()

    async def get(self) -> bytes:
        frame, metered = await self._queue.get()
        self._departed(metered)
        return frame

    def get_nowait(self) -> bytes | None:
        try:
            frame, metered = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        self._departed(metered)
        return frame

    def depth(self) -> int:
        return self._queue.qsize()


class Endpoint:
    """One node's window on the network: send to a peer, receive from the
    own mailbox.  This is the complete interface node logic may use."""

    def __init__(self, node: Hashable, transport: "Transport") -> None:
        self._node = node
        self._transport = transport

    @property
    def node(self) -> Hashable:
        return self._node

    async def send(self, target: Hashable, frame: bytes) -> int:
        """Dispatch one frame to *target*; returns the number of wire
        copies put in flight (1 here; fault wrappers may differ)."""
        await self._transport.deliver(self._node, target, frame)
        return 1

    async def recv(self) -> bytes:
        """Await the next frame from this node's mailbox."""
        return await self._transport.mailbox(self._node).get()

    def recv_nowait(self) -> bytes | None:
        """The next frame if one is already buffered, else ``None``."""
        return self._transport.mailbox(self._node).get_nowait()


class Transport:
    """Base class: mailbox bookkeeping shared by both transports."""

    name = "abstract"

    def __init__(self, *, mailbox_capacity: int = DEFAULT_MAILBOX_CAPACITY) -> None:
        self._mailboxes: dict[Hashable, Mailbox] = {}
        self._capacity = mailbox_capacity

    async def open(self, nodes: Iterable[Hashable]) -> dict[Hashable, Endpoint]:
        """Start the infrastructure and mint one endpoint per node."""
        self._mailboxes = {node: Mailbox(self._capacity) for node in nodes}
        await self._start()
        return {node: Endpoint(node, self) for node in self._mailboxes}

    async def _start(self) -> None:
        """Transport-specific startup (default: nothing)."""

    def mailbox(self, node: Hashable) -> Mailbox:
        try:
            return self._mailboxes[node]
        except KeyError:
            raise TransportError(f"unknown node {node!r}") from None

    async def deliver(self, source: Hashable, target: Hashable, frame: bytes) -> None:
        """Move one frame from *source* to *target*'s mailbox."""
        raise NotImplementedError

    async def close(self) -> None:
        """Tear down the infrastructure (default: nothing)."""

    def mailbox_high_water(self, node: Hashable) -> int:
        return self.mailbox(node).high_water

    def frames_delivered(self) -> int:
        return sum(box.enqueued for box in self._mailboxes.values())


class InMemoryTransport(Transport):
    """Envelopes move between ``asyncio.Queue`` mailboxes in-process."""

    name = "memory"

    async def deliver(self, source: Hashable, target: Hashable, frame: bytes) -> None:
        if source == target:
            # Backpressure on a self-send would suspend the one task that
            # can drain the mailbox (TCP avoids this via kernel buffers).
            self.mailbox(target).force_put(frame)
        else:
            await self.mailbox(target).put(frame)


class TcpTransport(Transport):
    """Loopback TCP: one listening socket per node, length-prefixed frames,
    persistent per-(source, target) connections opened on first use."""

    name = "tcp"

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        mailbox_capacity: int = DEFAULT_MAILBOX_CAPACITY,
        dial_timeout: float = DEFAULT_DIAL_TIMEOUT,
        dial_attempts: int = DEFAULT_DIAL_ATTEMPTS,
        dial_backoff: float = DEFAULT_DIAL_BACKOFF,
    ) -> None:
        super().__init__(mailbox_capacity=mailbox_capacity)
        self._host = host
        self._dial_timeout = dial_timeout
        self._dial_attempts = dial_attempts
        self._dial_backoff = dial_backoff
        self._servers: dict[Hashable, asyncio.base_events.Server] = {}
        self._ports: dict[Hashable, int] = {}
        self._writers: dict[tuple[Hashable, Hashable], asyncio.StreamWriter] = {}
        self._reader_tasks: list[asyncio.Task] = []

    async def _start(self) -> None:
        for node in self._mailboxes:
            server = await asyncio.start_server(
                lambda r, w, node=node: self._reader_tasks.append(
                    asyncio.ensure_future(self._pump(node, r, w))
                ),
                self._host,
                0,
            )
            self._servers[node] = server
            self._ports[node] = server.sockets[0].getsockname()[1]

    async def _pump(
        self, node: Hashable, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Feed one inbound connection into *node*'s mailbox."""
        try:
            while True:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                frame = await reader.readexactly(length)
                await self.mailbox(node).put(frame)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed; normal shutdown path
        finally:
            writer.close()

    async def deliver(self, source: Hashable, target: Hashable, frame: bytes) -> None:
        key = (source, target)
        writer = self._writers.get(key)
        if writer is None:
            if target not in self._ports:
                raise TransportError(f"unknown node {target!r}")
            _, writer = await dial_with_retry(
                self._host,
                self._ports[target],
                timeout=self._dial_timeout,
                attempts=self._dial_attempts,
                backoff=self._dial_backoff,
            )
            self._writers[key] = writer
        writer.write(_LEN.pack(len(frame)) + frame)
        await writer.drain()

    async def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for task in self._reader_tasks:
            task.cancel()
        for task in self._reader_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._reader_tasks.clear()


TRANSPORT_NAMES: dict[str, type[Transport]] = {
    "memory": InMemoryTransport,
    "tcp": TcpTransport,
}


def make_transport(
    name: str, *, mailbox_capacity: int = DEFAULT_MAILBOX_CAPACITY
) -> Transport:
    """Instantiate a transport by CLI name (see ``TRANSPORT_NAMES``)."""
    try:
        factory = TRANSPORT_NAMES[name]
    except KeyError:
        known = ", ".join(sorted(TRANSPORT_NAMES))
        raise TransportError(
            f"unknown transport {name!r} (known: {known})"
        ) from None
    return factory(mailbox_capacity=mailbox_capacity)
