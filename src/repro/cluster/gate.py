"""The divergence gate: the cluster runtime vs. the synchronous simulator.

The paper's confluence results (Theorems 4.3–4.5, and the barrier fallback
by construction) guarantee that *every* fair run of one of our transducer
networks converges to the same global output Q(I).  That makes a sharp
equivalence oracle available for free: run the synchronous simulator under
every scheduler, run the cluster under many seeds × transports × fault
plans, and require all output fingerprints to be identical.  Any
divergence is a bug in one of the runtimes — there is no "acceptable
nondeterminism" bucket to hide in.

:func:`gate_workloads` enumerates the corpus: the five Section-4 protocol
bundles, the global-barrier baseline, and every query-zoo program routed
through :func:`repro.core.analyzer.plan_distribution` (so the gate also
covers the planner's protocol selection, including the barrier fallback
for non-monotone programs).  :func:`check_workload` runs one workload
through the full matrix and returns a machine-readable verdict; the
committed ``BENCH_cluster.json`` is a sweep of these verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..datalog.instance import Instance
from ..datalog.parser import parse_facts
from ..transducers.faults import CHAOS_PLAN, SCHEDULER_NAMES, make_scheduler
from ..transducers.policy import Network
from ..transducers.protocols import Section4Protocol, section4_protocols
from ..transducers.runtime import TransducerNetwork
from ..transducers.telemetry import output_fingerprint
from .faults import CRASH_PLAN
from .runtime import ClusterRun
from .transport import TRANSPORT_NAMES

__all__ = [
    "GATE_NETWORK_NODES",
    "gate_workloads",
    "workload_by_key",
    "sync_fingerprint",
    "cluster_fingerprint",
    "process_fingerprint",
    "check_workload",
    "ProcessGateVerdict",
    "check_process_workload",
]

#: The canonical gate network (matches the chaos-confluence benchmark).
GATE_NETWORK_NODES = ("n1", "n2", "n3")

#: Small witness inputs for the zoo programs (edb relations differ per
#: program).  Chosen to exercise recursion, negation and emptiness without
#: making the async sweep slow.
_ZOO_INSTANCES: dict[str, str] = {
    "tc": "E(1,2). E(2,3). E(3,1).",
    "neq-pairs": "E(1,1). E(1,2). E(2,3).",
    "non-loop-sources": "E(1,1). E(1,2). E(2,3).",
    "sp-missing-targets": "E(1,2). E(2,3). E(3,1). Mark(2).",
    "example51-p1": "E(1,2). E(2,3). E(3,1). E(3,4).",
    "example51-p2": "E(1,2). E(2,3). E(3,1). E(4,5).",
    "co-tc": "E(1,2). E(2,1). E(3,4).",
    "isolated-vertices": "V(1). V(2). V(3). E(1,2).",
    "two-relation-join": "R(1,2). R(2,2). S(2,3). S(3,1).",
    "win-move": "Move(1,2). Move(2,1). Move(2,3).",
    "tagged-edges": "E(1,2). E(2,3). E(3,1). S(1). S(3). L(2).",
    "disconnected-product": "S(1). S(2). T(3).",
}


def _zoo_workloads() -> list[Section4Protocol]:
    from ..core.analyzer import plan_distribution
    from ..queries.zoo import zoo_entries, zoo_program

    workloads = []
    for entry in zoo_entries():
        program = zoo_program(entry.name)
        plan = plan_distribution(program)
        workloads.append(
            Section4Protocol(
                key=f"zoo-{entry.name}",
                theorem=f"planner:{entry.monotonicity}",
                transducer=plan.transducer,
                query=plan.query,
                instance=Instance(parse_facts(_ZOO_INSTANCES[entry.name])),
                domain_guided=plan.requires_domain_guided,
            )
        )
    return workloads


def gate_workloads() -> tuple[Section4Protocol, ...]:
    """Every workload the divergence gate covers: Section-4 protocol
    bundles, the barrier baseline, and the planned query zoo."""
    from ..transducers.barrier import barrier_baseline

    return (*section4_protocols(), barrier_baseline(), *_zoo_workloads())


def workload_by_key(key: str) -> Section4Protocol:
    for workload in gate_workloads():
        if workload.key == key:
            return workload
    known = ", ".join(w.key for w in gate_workloads())
    raise KeyError(f"unknown gate workload {key!r} (known: {known})")


def _build_network(
    workload: Section4Protocol, nodes: Sequence[Hashable]
) -> TransducerNetwork:
    network = Network(nodes)
    return TransducerNetwork(
        network, workload.transducer, workload.policy(network)
    )


def sync_fingerprint(
    workload: Section4Protocol,
    *,
    nodes: Sequence[Hashable] = GATE_NETWORK_NODES,
    schedulers: Iterable[str] = SCHEDULER_NAMES,
    seed: int = 0,
) -> str:
    """The synchronous simulator's fingerprint, asserted identical across
    every named scheduler (the sync side of the confluence guarantee)."""
    fingerprints = {}
    for name in schedulers:
        run = _build_network(workload, nodes).new_run(workload.instance)
        run.run_to_quiescence(scheduler=make_scheduler(name, seed))
        fingerprints[name] = output_fingerprint(run.global_output())
    distinct = set(fingerprints.values())
    if len(distinct) != 1:
        raise AssertionError(
            f"sync runs of {workload.key!r} diverge across schedulers: "
            f"{fingerprints}"
        )
    return distinct.pop()


def cluster_fingerprint(
    workload: Section4Protocol,
    *,
    nodes: Sequence[Hashable] = GATE_NETWORK_NODES,
    transport: str = "memory",
    faults: bool = False,
    crashes: bool = False,
    seed: int = 0,
) -> tuple[str, ClusterRun]:
    """One cluster execution; returns (fingerprint, finished run).

    ``crashes`` layers the crash schedule (:data:`~repro.cluster.faults.
    CRASH_PLAN`) on top of the message chaos: every run under it must kill
    and recover at least one node, which the gate asserts via the run's
    ``recoveries`` counter.
    """
    if crashes:
        plan = CRASH_PLAN
    elif faults:
        plan = CHAOS_PLAN
    else:
        plan = None
    run = ClusterRun(
        _build_network(workload, nodes),
        workload.instance,
        transport=transport,
        fault_plan=plan,
        seed=seed,
    )
    run.run_to_quiescence()
    return output_fingerprint(run.global_output()), run


def process_fingerprint(
    workload: Section4Protocol,
    *,
    processes: int = len(GATE_NETWORK_NODES),
    seed: int = 0,
    kill_node: str | None = None,
    kill_after: int | None = None,
    run_dir=None,
    timeout: float | None = 120.0,
):
    """One multi-process execution; returns (fingerprint, finished cluster).

    The process runtime rebuilds the workload *by key* inside each worker
    (only input fragments cross the process boundary), so the workload must
    come from :func:`gate_workloads` or be a scaling workload.  ``kill_node``
    / ``kill_after`` schedule one real ``SIGKILL`` + WAL-replay recovery.
    """
    from .procs import ProcessCluster, workload_spec_for

    cluster = ProcessCluster(
        workload_spec_for(workload),
        workload.instance,
        processes=processes,
        seed=seed,
        kill_node=kill_node,
        kill_after=kill_after,
        run_dir=run_dir,
        timeout=timeout,
    )
    cluster.run_to_quiescence()
    return output_fingerprint(cluster.global_output()), cluster


@dataclass(frozen=True)
class ProcessGateVerdict:
    """Asyncio runtime vs. process runtime, held byte-identical.

    ``kill_fingerprint`` covers the run with a real ``SIGKILL`` + recovery;
    ``crashes``/``recoveries``/``wal_replayed`` are that run's counters and
    must show the kill actually happened (a kill schedule that never fires
    would gate nothing).
    """

    key: str
    expected_fingerprint: str
    async_fingerprint: str
    process_fingerprint: str
    kill_fingerprint: str | None
    processes: int
    crashes: int
    recoveries: int
    wal_replayed: int

    @property
    def passed(self) -> bool:
        fingerprints = {self.async_fingerprint, self.process_fingerprint}
        if self.kill_fingerprint is not None:
            fingerprints.add(self.kill_fingerprint)
            if self.crashes < 1 or self.recoveries < 1 or self.wal_replayed < 1:
                return False
        return fingerprints == {self.expected_fingerprint}

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "expected_fingerprint": self.expected_fingerprint,
            "async_fingerprint": self.async_fingerprint,
            "process_fingerprint": self.process_fingerprint,
            "kill_fingerprint": self.kill_fingerprint,
            "processes": self.processes,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "wal_replayed": self.wal_replayed,
            "passed": self.passed,
        }


def check_process_workload(
    workload: Section4Protocol,
    *,
    processes: int = len(GATE_NETWORK_NODES),
    seed: int = 0,
    kill: bool = True,
    kill_node: str | None = None,
    kill_after: int = 2,
    timeout: float | None = 120.0,
) -> ProcessGateVerdict:
    """Gate the process runtime against the asyncio runtime and Q(I).

    Three fingerprints must agree with the synchronous expectation: the
    asyncio cluster (memory transport), a clean process run, and — when
    ``kill`` is set — a process run in which ``kill_node`` (default: the
    second ring position) is ``SIGKILL``ed after ``kill_after`` transitions
    and recovered from its on-disk snapshot + WAL.
    """
    nodes = tuple(f"n{i + 1}" for i in range(processes))
    expected = sync_fingerprint(workload, nodes=nodes)
    async_fp, _ = cluster_fingerprint(
        workload, nodes=nodes, transport="memory", seed=seed
    )
    clean_fp, _ = process_fingerprint(
        workload, processes=processes, seed=seed, timeout=timeout
    )
    kill_fp = None
    crashes = recoveries = wal_replayed = 0
    if kill:
        if kill_node is None:
            kill_node = nodes[1 % len(nodes)]
        kill_fp, cluster = process_fingerprint(
            workload,
            processes=processes,
            seed=seed,
            kill_node=kill_node,
            kill_after=kill_after,
            timeout=timeout,
        )
        crashes = cluster.crashes
        recoveries = cluster.recoveries
        wal_replayed = cluster.wal_replayed
    return ProcessGateVerdict(
        key=workload.key,
        expected_fingerprint=expected,
        async_fingerprint=async_fp,
        process_fingerprint=clean_fp,
        kill_fingerprint=kill_fp,
        processes=processes,
        crashes=crashes,
        recoveries=recoveries,
        wal_replayed=wal_replayed,
    )


@dataclass(frozen=True)
class GateVerdict:
    """The outcome of gating one workload across the full matrix."""

    key: str
    expected_fingerprint: str
    runs: int
    divergences: tuple[dict, ...]
    crash_runs: int = 0
    min_recoveries: int | None = None

    @property
    def passed(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "expected_fingerprint": self.expected_fingerprint,
            "runs": self.runs,
            "crash_runs": self.crash_runs,
            "min_recoveries": self.min_recoveries,
            "passed": self.passed,
            "divergences": list(self.divergences),
        }


def check_workload(
    workload: Section4Protocol,
    *,
    nodes: Sequence[Hashable] = GATE_NETWORK_NODES,
    seeds: Iterable[int] = range(20),
    transports: Iterable[str] = tuple(TRANSPORT_NAMES),
    fault_modes: Iterable[bool] = (False, True),
    crash_modes: Iterable[bool] = (False, True),
) -> GateVerdict:
    """Gate one workload: sync fingerprint (all schedulers) must equal the
    cluster fingerprint for every seed × transport × fault/crash mode.

    The mode matrix is the cross product minus (crash without faults):
    the crash schedule layers on top of message chaos, so the effective
    trio per transport×seed is {clean, chaos, chaos+crash}.  Every
    crash-mode run must actually exercise ≥ 1 recovery (a crash schedule
    that never fires would silently gate nothing), asserted via the run's
    ``recoveries`` counter and surfaced as ``min_recoveries``.
    """
    expected = sync_fingerprint(workload, nodes=nodes)
    # The paper's expected Q(I) — a third, runtime-independent witness.
    centralized = output_fingerprint(workload.expected())
    divergences = []
    runs = 0
    crash_runs = 0
    min_recoveries: int | None = None
    if centralized != expected:
        divergences.append(
            {
                "seed": None,
                "transport": "sync",
                "faults": False,
                "crashes": False,
                "fingerprint": expected,
                "note": "sync output differs from centralized Q(I)",
            }
        )
    for transport in transports:
        for faults in fault_modes:
            for crashes in crash_modes:
                if crashes and not faults:
                    continue
                for seed in seeds:
                    actual, run = cluster_fingerprint(
                        workload,
                        nodes=nodes,
                        transport=transport,
                        faults=faults,
                        crashes=crashes,
                        seed=seed,
                    )
                    runs += 1
                    if actual != expected:
                        divergences.append(
                            {
                                "seed": seed,
                                "transport": transport,
                                "faults": faults,
                                "crashes": crashes,
                                "fingerprint": actual,
                            }
                        )
                    if crashes:
                        crash_runs += 1
                        if (
                            min_recoveries is None
                            or run.recoveries < min_recoveries
                        ):
                            min_recoveries = run.recoveries
                        if run.recoveries < 1:
                            divergences.append(
                                {
                                    "seed": seed,
                                    "transport": transport,
                                    "faults": faults,
                                    "crashes": crashes,
                                    "fingerprint": actual,
                                    "note": (
                                        "crash schedule exercised no recovery"
                                    ),
                                }
                            )
    return GateVerdict(
        key=workload.key,
        expected_fingerprint=expected,
        runs=runs,
        divergences=tuple(divergences),
        crash_runs=crash_runs,
        min_recoveries=min_recoveries,
    )
