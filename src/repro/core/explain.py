"""Human-readable program diagnosis: why the analyzer classified a program
the way it did, rule by rule and stratum by stratum.

This is the practitioner-facing face of the paper: point it at a Datalog¬
program and it reports which rules are disconnected, where negation sits,
what the stratification looks like, which fragment that adds up to, and —
when the program misses a coordination-freeness guarantee — exactly which
rules are to blame and what changing them would buy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.connectivity import is_connected_rule, semicon_violations
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.stratification import NotStratifiableError, stratify
from .analyzer import AnalysisResult, analyze

__all__ = ["RuleDiagnosis", "ProgramExplanation", "explain"]


@dataclass(frozen=True)
class RuleDiagnosis:
    """One rule's structural facts."""

    rule: Rule
    stratum: int | None
    connected: bool
    negations: tuple[str, ...]

    def describe(self) -> str:
        notes = []
        if self.stratum is not None:
            notes.append(f"stratum {self.stratum}")
        notes.append("connected" if self.connected else "DISCONNECTED")
        if self.negations:
            notes.append(f"negates {', '.join(self.negations)}")
        return f"{self.rule!r}  [{'; '.join(notes)}]"


@dataclass(frozen=True)
class ProgramExplanation:
    """The full diagnosis: per-rule facts plus the analyzer verdict."""

    analysis: AnalysisResult
    rules: tuple[RuleDiagnosis, ...]
    stratifiable: bool
    depth: int | None
    violations: tuple[str, ...]

    def describe(self) -> str:
        lines = [self.analysis.describe()]
        if self.stratifiable:
            lines.append(f"stratification: {self.depth} stratum/strata")
        else:
            lines.append(
                "not syntactically stratifiable (well-founded semantics applies)"
            )
        lines.append("rules:")
        for diagnosis in self.rules:
            lines.append(f"  {diagnosis.describe()}")
        if self.violations:
            lines.append("semi-connectedness violations:")
            for violation in self.violations:
                lines.append(f"  - {violation}")
        lines.extend(self._advice())
        return "\n".join(lines)

    def _advice(self) -> list[str]:
        analysis = self.analysis
        if analysis.monotonicity is not None:
            return []
        advice = ["advice:"]
        disconnected = [d for d in self.rules if not d.connected]
        if not self.stratifiable and disconnected:
            advice.append(
                "  - the program is unstratifiable AND has disconnected "
                "rules; connecting them would bring the well-founded "
                "evaluation into Mdisjoint (Section 7)"
            )
        elif disconnected and self.violations:
            advice.append(
                "  - negation reaches the disconnected rule(s) above; "
                "if the disconnected work can move to the final stratum the "
                "program becomes semicon-Datalog¬ and earns the F2 guarantee"
            )
        advice.append(
            "  - as written, distributed execution needs a global barrier "
            "(the analyzer will use the All-based coordinating transducer)"
        )
        return advice


def explain(program: Program) -> ProgramExplanation:
    """Diagnose *program* for the report above."""
    analysis = analyze(program)
    stratum_of: dict[str, int] = {}
    depth: int | None = None
    stratifiable = True
    try:
        stratification = stratify(program)
        stratum_of = stratification.stratum_of
        depth = stratification.depth
    except NotStratifiableError:
        stratifiable = False

    diagnoses = tuple(
        RuleDiagnosis(
            rule=rule,
            stratum=stratum_of.get(rule.head.relation),
            connected=is_connected_rule(rule),
            negations=tuple(sorted(a.relation for a in rule.neg)),
        )
        for rule in program
    )
    violations = tuple(semicon_violations(program)) if stratifiable else ()
    return ProgramExplanation(
        analysis=analysis,
        rules=diagnoses,
        stratifiable=stratifiable,
        depth=depth,
        violations=violations,
    )
