"""Executable renditions of the CALM theorems (Sections 4.2 and 4.3).

Two directions per theorem:

* **Membership (⊇)** — the constructive direction: the protocol transducer
  for a class-member query distributedly computes it (sampled over
  networks, policies, schedules) and admits a heartbeat-only witness under
  an ideal policy.  Covered by
  :func:`repro.transducers.coordination.coordination_free_report`.
* **Refutation (⊆)** — the semantic direction, made executable through the
  paper's own proof construction (:func:`refute_by_relocation`): given a
  violation pair Q(I) ⊄ Q(I ∪ J), build the two-node policy P2 that hands
  J to node y while x sees exactly the ideal distribution of I.  Heartbeats
  at x then reproduce x's single-handed computation of Q(I), outputting a
  fact outside Q(I ∪ J) — so *no* transducer that behaves coordination-
  freely on I can distributedly compute Q.  Applied to our protocol
  transducers this demonstrates, run by run, why class-outsiders are not
  coordination-free.

Theorem 4.5 (the no-``All`` variants) reuses the same machinery under
``POLICY_AWARE_NO_ALL``; Corollary 4.6 under ``ORIGINAL`` / ``OBLIVIOUS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..datalog.instance import Instance
from ..monotonicity.classes import violation_on
from ..queries.base import Query
from ..transducers.policy import (
    Network,
    dict_domain_assignment,
    domain_guided_policy,
    override_policy,
    single_node_assignment,
    single_node_policy,
)
from ..transducers.runtime import TransducerNetwork
from ..transducers.transducer import Transducer

__all__ = [
    "RelocationRefutation",
    "refute_by_relocation",
    "relocation_policies",
]


@dataclass(frozen=True)
class RelocationRefutation:
    """The outcome of the proof-construction experiment.

    ``refuted`` is True when heartbeats at x on input I ∪ J (under the
    relocated policy P2) produced a fact outside Q(I ∪ J) — certifying that
    the transducer does not distributedly compute Q.
    """

    refuted: bool
    node: Hashable | None = None
    heartbeats: int = 0
    wrong_facts: Instance = Instance()
    detail: str = ""

    def describe(self) -> str:
        if self.refuted:
            wrong = ", ".join(repr(f) for f in self.wrong_facts.sorted_facts())
            return (
                f"refuted: node {self.node!r} output {wrong} after "
                f"{self.heartbeats} heartbeats — not in Q(I ∪ J)"
            )
        return f"not refuted ({self.detail})"


def relocation_policies(
    query: Query,
    network: Network,
    x: Hashable,
    y: Hashable,
    addition: Instance,
    *,
    domain_guided: bool = False,
):
    """The pair (P1, P2) from the proofs of Theorems 4.3 / 4.4.

    P1 is the ideal all-to-x policy.  P2 relocates J to y: fact overrides
    for arbitrary policies; a value split along adom(J) for domain-guided
    policies (J must be domain-disjoint for the split to be well defined —
    exactly the hypothesis of the domain-guided theorem).
    """
    schema = query.input_schema
    if domain_guided:
        ideal = domain_guided_policy(
            schema, network, single_node_assignment(network, x), name=f"dg-all-to-{x!r}"
        )
        assignment = dict_domain_assignment(
            network, {value: [y] for value in addition.adom()}, default=x
        )
        relocated = domain_guided_policy(
            schema, network, assignment, name=f"dg-J-to-{y!r}"
        )
    else:
        ideal = single_node_policy(schema, network, x)
        relocated = override_policy(
            ideal, {fact: [y] for fact in addition}, name=f"J-to-{y!r}"
        )
    return ideal, relocated


def refute_by_relocation(
    make_transducer: Callable[[Query], Transducer],
    query: Query,
    base: Instance,
    addition: Instance,
    *,
    domain_guided: bool = False,
    max_heartbeats: int = 100,
) -> RelocationRefutation:
    """Run the F1 ⊆ Mdistinct / F2 ⊆ Mdisjoint proof construction.

    Requires a genuine violation pair: Q(base) ⊄ Q(base ∪ addition), with
    *addition* of the appropriate kind.  Steps:

    1. sanity-check the violation and (for domain-guided) disjointness;
    2. build P2 relocating the addition to y;
    3. check x's local input on I ∪ J under P2 equals its local input on I
       under the ideal P1 (the crux of the proof);
    4. run heartbeat-only transitions at x until it outputs a fact outside
       Q(I ∪ J).
    """
    violation = violation_on(query, base, addition)
    if violation is None:
        return RelocationRefutation(
            refuted=False, detail="Q(I) ⊆ Q(I ∪ J): the pair is not a violation"
        )
    if domain_guided and not addition.is_domain_disjoint_from(base):
        return RelocationRefutation(
            refuted=False, detail="J is not domain-disjoint from I"
        )

    x, y = "x_node", "y_node"
    network = Network([x, y])
    transducer = make_transducer(query)
    ideal, relocated = relocation_policies(
        query, network, x, y, addition, domain_guided=domain_guided
    )

    combined = base | addition
    run_ideal = TransducerNetwork(network, transducer, ideal).new_run(base)
    run_relocated = TransducerNetwork(network, transducer, relocated).new_run(combined)
    if run_ideal.local_input(x) != run_relocated.local_input(x):
        return RelocationRefutation(
            refuted=False,
            detail="relocation failed: x's local input differs between P1(I) "
            "and P2(I ∪ J)",
        )

    wrong_target = query(combined)
    for step in range(1, max_heartbeats + 1):
        run_relocated.heartbeat(x)
        produced = run_relocated.state(x).output
        wrong = produced - wrong_target
        if wrong:
            return RelocationRefutation(
                refuted=True,
                node=x,
                heartbeats=step,
                wrong_facts=wrong,
                detail="",
            )
    return RelocationRefutation(
        refuted=False,
        detail=f"no wrong output after {max_heartbeats} heartbeats "
        "(the transducer may be coordinating)",
    )
