"""The CALM analyzer: from a Datalog¬ program to a coordination-free
distributed execution strategy.

This is the paper's story made executable.  Given a program, the analyzer

1. classifies its syntactic *fragment* (Figure 2, left column): positive
   Datalog, Datalog(≠), SP-Datalog, con-Datalog¬, semicon-Datalog¬, general
   stratified Datalog¬, or unstratifiable (well-founded semantics);
2. derives the weakest *monotonicity class* the fragment guarantees
   (Figure 2, middle column): Datalog(≠) ⊆ M, SP-Datalog ⊆ Mdistinct,
   semicon-Datalog¬ ⊆ Mdisjoint, connected Datalog under the well-founded
   semantics ⊆ Mdisjoint (Section 7 remark);
3. picks the matching coordination-free protocol and transducer model
   (Figure 2, right columns): broadcast / F0, absence protocol / F1,
   domain-guided handshake / F2 — or reports that no coordination-free
   strategy is guaranteed and a global barrier is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..datalog.connectivity import is_connected_program, is_semicon_datalog
from ..datalog.instance import Instance
from ..datalog.program import Program
from ..datalog.stratification import is_stratifiable
from ..queries.base import DatalogQuery, Query, WellFoundedQuery
from ..transducers.policy import (
    Network,
    domain_guided_policy,
    hash_domain_assignment,
    hash_policy,
)
from ..transducers.protocols import (
    broadcast_transducer,
    disjoint_protocol_transducer,
    distinct_protocol_transducer,
)
from ..transducers.runtime import Channel, FairScheduler, Run, Scheduler, TransducerNetwork
from ..transducers.transducer import Transducer

__all__ = [
    "Fragment",
    "AnalysisResult",
    "classify_fragment",
    "guaranteed_class",
    "analyze",
    "query_for",
    "DistributedPlan",
    "plan_distribution",
    "network_for_plan",
    "planned_network",
    "plan_ilog_distribution",
    "distributed_run",
    "run_distributed",
]


class Fragment:
    """Fragment name constants (Figure 2 left column, plus WFS cases)."""

    DATALOG = "datalog"
    DATALOG_NEQ = "datalog-neq"
    SP_DATALOG = "sp-datalog"
    CON_DATALOG = "con-datalog"
    SEMICON_DATALOG = "semicon-datalog"
    STRATIFIED = "stratified"
    WFS_CONNECTED = "wfs-connected"
    WFS = "wfs"

    ORDER = (
        DATALOG,
        DATALOG_NEQ,
        SP_DATALOG,
        CON_DATALOG,
        SEMICON_DATALOG,
        STRATIFIED,
        WFS_CONNECTED,
        WFS,
    )


def classify_fragment(program: Program) -> str:
    """The tightest fragment of Figure 2 containing *program*.

    con-Datalog¬ and SP-Datalog overlap without inclusion (Section 5.1);
    when a program is in both, SP-Datalog is reported because it carries the
    stronger (smaller) monotonicity guarantee.
    """
    if not is_stratifiable(program):
        if is_connected_program(program):
            return Fragment.WFS_CONNECTED
        return Fragment.WFS
    if program.is_positive():
        return Fragment.DATALOG_NEQ if program.uses_inequalities() else Fragment.DATALOG
    if program.is_semi_positive():
        return Fragment.SP_DATALOG
    if is_connected_program(program):
        return Fragment.CON_DATALOG
    if is_semicon_datalog(program):
        return Fragment.SEMICON_DATALOG
    return Fragment.STRATIFIED


#: fragment -> the weakest monotonicity class it guarantees (None = none).
_FRAGMENT_GUARANTEES: dict[str, str | None] = {
    Fragment.DATALOG: "M",
    Fragment.DATALOG_NEQ: "M",
    Fragment.SP_DATALOG: "Mdistinct",
    Fragment.CON_DATALOG: "Mdisjoint",
    Fragment.SEMICON_DATALOG: "Mdisjoint",
    Fragment.STRATIFIED: None,
    Fragment.WFS_CONNECTED: "Mdisjoint",  # Section 7, doubled-program remark
    Fragment.WFS: None,
}

#: monotonicity class -> (transducer model, coordination-free class name).
_CLASS_MODELS: dict[str, tuple[str, str]] = {
    "M": ("original", "F0"),
    "Mdistinct": ("policy-aware", "F1"),
    "Mdisjoint": ("domain-guided", "F2"),
}


def guaranteed_class(fragment: str) -> str | None:
    """The weakest monotonicity class guaranteed by a fragment name."""
    return _FRAGMENT_GUARANTEES[fragment]


@dataclass(frozen=True)
class AnalysisResult:
    """The static analysis of one program."""

    fragment: str
    monotonicity: str | None
    model: str | None
    coordination_class: str | None

    @property
    def coordination_free(self) -> bool:
        return self.monotonicity is not None

    def describe(self) -> str:
        if not self.coordination_free:
            return (
                f"fragment={self.fragment}: no monotonicity guarantee — "
                "requires a global coordination barrier"
            )
        return (
            f"fragment={self.fragment}: in {self.monotonicity}, "
            f"coordination-free in the {self.model} model ({self.coordination_class})"
        )


def analyze(program: Program) -> AnalysisResult:
    """Classify *program* and derive its coordination-freeness guarantee."""
    fragment = classify_fragment(program)
    monotonicity = guaranteed_class(fragment)
    if monotonicity is None:
        return AnalysisResult(fragment, None, None, None)
    model, cf_class = _CLASS_MODELS[monotonicity]
    return AnalysisResult(fragment, monotonicity, model, cf_class)


def query_for(program: Program) -> Query:
    """The query computed by *program* under its natural semantics."""
    if is_stratifiable(program):
        return DatalogQuery(program)
    return WellFoundedQuery(program)


@dataclass(frozen=True)
class DistributedPlan:
    """An executable distribution strategy for a program.

    ``requires_barrier`` marks the coordinating fallback: the
    :func:`~repro.transducers.barrier.global_barrier_transducer`, which
    computes any query distributedly by waiting on explicit word from every
    node in ``All`` — correct, but not coordination-free.
    """

    analysis: AnalysisResult
    query: Query
    transducer: Transducer
    requires_domain_guided: bool
    requires_barrier: bool

    def describe(self) -> str:
        if self.requires_barrier:
            return (
                f"{self.query.name}: {self.analysis.describe()}; executing "
                f"via {self.transducer.name} (global All-barrier, coordinating)"
            )
        return f"{self.query.name}: {self.analysis.describe()}; protocol {self.transducer.name}"


def plan_distribution(
    program: Program, *, force_barrier: bool = False
) -> DistributedPlan:
    """Choose the cheapest sound distributed execution strategy.

    ``force_barrier`` overrides the routing and executes via the global
    All-barrier even when a coordination-free protocol applies — the
    coordinating baseline the service's cost comparisons run against.
    """
    from ..transducers.barrier import global_barrier_transducer

    analysis = analyze(program)
    query = query_for(program)
    requires_barrier = False
    if force_barrier or analysis.monotonicity is None:
        transducer: Transducer = global_barrier_transducer(query)
        requires_barrier = True
    elif analysis.monotonicity == "M":
        transducer = broadcast_transducer(query)
    elif analysis.monotonicity == "Mdistinct":
        transducer = distinct_protocol_transducer(query)
    else:  # Mdisjoint
        transducer = disjoint_protocol_transducer(query)
    return DistributedPlan(
        analysis=analysis,
        query=query,
        transducer=transducer,
        requires_domain_guided=(
            not requires_barrier and analysis.monotonicity == "Mdisjoint"
        ),
        requires_barrier=requires_barrier,
    )


def network_for_plan(
    plan: DistributedPlan, nodes: Iterable[Hashable] = ("n1", "n2", "n3")
) -> TransducerNetwork:
    """The transducer network executing an already-computed *plan* on
    *nodes* — shared by the Datalog¬ and ILOG¬ planners, and by the
    service (which plans once, then builds networks per request mode)."""
    network = Network(nodes)
    if plan.requires_domain_guided:
        policy = domain_guided_policy(
            plan.query.input_schema, network, hash_domain_assignment(network)
        )
    else:
        policy = hash_policy(plan.query.input_schema, network)
    return TransducerNetwork(network, plan.transducer, policy)


def planned_network(
    program: Program,
    nodes: Iterable[Hashable] = ("n1", "n2", "n3"),
    *,
    force_barrier: bool = False,
) -> TransducerNetwork:
    """The analyzer's chosen transducer network for *program* on *nodes*,
    ready for either runtime (synchronous ``Run`` or ``repro.cluster``)."""
    return network_for_plan(
        plan_distribution(program, force_barrier=force_barrier), nodes
    )


def distributed_run(
    program: Program,
    instance: Instance,
    *,
    nodes: Iterable[Hashable] = ("n1", "n2", "n3"),
    channel: Channel | None = None,
) -> Run:
    """Build (but do not execute) the analyzer's distributed run.

    Returns the fresh :class:`Run` so callers can pick a scheduler, inject
    channel faults and harvest telemetry — the CLI's ``repro run`` path.
    """
    return planned_network(program, nodes).new_run(instance, channel=channel)


def run_distributed(
    program: Program,
    instance: Instance,
    *,
    nodes: Iterable[Hashable] = ("n1", "n2", "n3"),
    seed: int = 0,
    max_rounds: int = 10_000,
    scheduler: Scheduler | None = None,
    channel: Channel | None = None,
) -> Instance:
    """End-to-end distributed evaluation of *program* on *instance*.

    Coordination-free when the analyzer finds a guarantee; otherwise the
    plan carries the global-barrier transducer — the in-model coordination
    the CALM theorems say cannot be avoided.
    """
    run = distributed_run(program, instance, nodes=nodes, channel=channel)
    return run.run_to_quiescence(
        max_rounds=max_rounds, scheduler=scheduler or FairScheduler(seed)
    )


def plan_ilog_distribution(program) -> DistributedPlan:
    """The ILOG¬ side of the planner (Figure 2's right-hand column).

    Classifies the program with :func:`repro.ilog.fragments.classify_ilog`
    (SP-wILOG -> Mdistinct, (semi)con-wILOG¬ -> Mdisjoint per [18] /
    Theorem 5.4) and picks the matching protocol over the
    :class:`~repro.ilog.demos.ILOGQuery`.  Unsafe or unclassified programs
    fall back to the coordinating barrier strategy.
    """
    from ..ilog.demos import ILOGQuery
    from ..ilog.fragments import classify_ilog
    from ..transducers.barrier import global_barrier_transducer

    report = classify_ilog(program)
    guaranteed = report.guaranteed_class
    query = ILOGQuery(program)
    analysis = AnalysisResult(
        fragment=report.fragment,
        monotonicity=guaranteed,
        model=_CLASS_MODELS[guaranteed][0] if guaranteed else None,
        coordination_class=_CLASS_MODELS[guaranteed][1] if guaranteed else None,
    )
    requires_barrier = False
    if guaranteed == "Mdistinct":
        transducer: Transducer = distinct_protocol_transducer(query)
    elif guaranteed == "Mdisjoint":
        transducer = disjoint_protocol_transducer(query)
    else:
        transducer = global_barrier_transducer(query)
        requires_barrier = True
    return DistributedPlan(
        analysis=analysis,
        query=query,
        transducer=transducer,
        requires_domain_guided=guaranteed == "Mdisjoint",
        requires_barrier=requires_barrier,
    )


def run_with_barrier(
    query: Query,
    network: Network,
    instance: Instance,
    *,
    seed: int = 0,
) -> Instance:
    """The coordinated fallback: collect all data everywhere, *globally
    synchronize*, then evaluate.

    The barrier is implemented by the simulator (it knows when the exchange
    has quiesced), not by the transducer — precisely the knowledge the
    coordination-free models deny their nodes (Sections 4.1.5 and 4.3).
    """
    collector = broadcast_transducer(_collect_only(query))
    policy = hash_policy(query.input_schema, network)
    run = TransducerNetwork(network, collector, policy).new_run(instance)
    run.run_to_quiescence(scheduler=FairScheduler(seed))
    # ---- global barrier: all messages delivered, every node quiescent ----
    coordinator = network.sorted_nodes()[0]
    view = run.view(coordinator, Instance())
    collected = view.local_input | Instance(
        _strip_got_cast(f) for f in view.memory if _is_got_cast(f)
    )
    return query(collected)


def _collect_only(query: Query) -> Query:
    """A query that never outputs — used to drive pure data exchange."""
    from ..datalog.schema import Schema
    from ..queries.base import FunctionQuery

    return FunctionQuery(
        f"collect[{query.name}]",
        query.input_schema,
        Schema({}, allow_nullary=True),
        lambda instance: Instance(),
    )


def _is_got_cast(fact) -> bool:
    return fact.relation.startswith("got_cast_")


def _strip_got_cast(fact):
    from ..datalog.terms import Fact

    return Fact(fact.relation[len("got_cast_"):], fact.values)
