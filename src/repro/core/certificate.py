"""Machine-readable classification certificates.

The human-facing ``repro analyze`` output describes one program on one
terminal; this module produces the same analysis as a versioned JSON
document — the *certificate* — that downstream tooling can consume
without screen-scraping: ``repro analyze --json`` prints it, the service
(:mod:`repro.service`) attaches it to every run it stores, and the
protocol-routing decision the service records is derived from it.

A certificate has three parts:

* **syntactic memberships** — one boolean per Figure-2 fragment, computed
  directly from the program (not just the tightest fragment: a program in
  SP-Datalog is also in con-Datalog when its strata are connected, and
  both facts are useful to a cost-based router);
* **the guarantee** — the weakest monotonicity class the tightest
  fragment guarantees, the matching transducer model and
  coordination-free class (Figure 2's middle and right columns);
* **the protocol decision** — which transducer the planner chose, whether
  it coordinates (global All-barrier) or not, and a human-auditable
  ``reason`` string tying the choice back to the paper's theorems;
* **the per-stratum breakdown** — each stratum classified standalone
  (fragment, memberships, guarantee) plus its role in the composed plan
  (``monotone`` / ``guarded`` / ``residue``) and the head-dominance
  evidence the per-stratum optimizer audits
  (:mod:`repro.optimizer.strata`); empty for unstratifiable programs.

Optionally an **empirical** section cross-checks the guarantee with the
counterexample search of :mod:`repro.monotonicity.checker` over seeded
random (I, J) pairs: a sound certificate must never be refuted, and for
programs without a guarantee the search reports the weakest class that is
still consistent with the pairs examined.
"""

from __future__ import annotations

import json
from typing import Any

from ..datalog.connectivity import is_connected_program, is_semicon_datalog
from ..datalog.program import Program
from ..datalog.stratification import is_stratifiable
from ..monotonicity.checker import check_monotonicity, classify_query, random_pairs
from ..monotonicity.classes import AdditionKind
from ..queries.base import Query
from .analyzer import DistributedPlan, Fragment, plan_distribution

__all__ = [
    "CERTIFICATE_VERSION",
    "certificate",
    "certificate_for_plan",
    "ilog_certificate_for_plan",
    "fragment_memberships",
    "protocol_reason",
    "empirical_section",
    "certificate_to_json",
]

#: Bumped whenever the certificate JSON layout changes incompatibly.
CERTIFICATE_VERSION = 1

#: guaranteed class -> AdditionKind of the defining monotonicity condition.
_CLASS_KINDS = {
    "M": AdditionKind.ANY,
    "Mdistinct": AdditionKind.DOMAIN_DISTINCT,
    "Mdisjoint": AdditionKind.DOMAIN_DISJOINT,
}

#: guaranteed class -> the paper-anchored routing rationale.
_CLASS_REASONS = {
    "M": (
        "monotone (M): every node may emit as soon as it derives — "
        "broadcast protocol, coordination-free in the original model (F0)"
    ),
    "Mdistinct": (
        "domain-distinct-monotone (Mdistinct): policy-aware absence "
        "protocol of Thm 4.3, coordination-free in the policy-aware "
        "model (F1)"
    ),
    "Mdisjoint": (
        "domain-disjoint-monotone (Mdisjoint): domain-guided handshake "
        "protocol of Thm 4.4, coordination-free in the domain-guided "
        "model (F2)"
    ),
}


def fragment_memberships(program: Program) -> dict[str, bool]:
    """One boolean per Figure-2 fragment, each computed from the syntax.

    Memberships are not mutually exclusive — the tightest one is what
    ``analyze`` reports as the fragment, but a router may exploit any of
    them.  ``wfs`` is always True: every Datalog¬ program has a
    well-founded model.
    """
    stratified = is_stratifiable(program)
    connected = is_connected_program(program)
    positive = program.is_positive()
    return {
        Fragment.DATALOG: positive and not program.uses_inequalities(),
        Fragment.DATALOG_NEQ: positive,
        Fragment.SP_DATALOG: program.is_semi_positive(),
        Fragment.CON_DATALOG: stratified and connected,
        Fragment.SEMICON_DATALOG: stratified and is_semicon_datalog(program),
        Fragment.STRATIFIED: stratified,
        Fragment.WFS_CONNECTED: not stratified and connected,
        Fragment.WFS: True,
    }


def protocol_reason(plan: DistributedPlan, *, forced_barrier: bool = False) -> str:
    """The one-line routing rationale recorded with every decision."""
    analysis = plan.analysis
    if forced_barrier:
        return (
            f"barrier forced by the caller: executing {plan.transducer.name} "
            "although a cheaper coordination-free protocol exists"
            if analysis.coordination_free
            else "barrier forced by the caller (it was the only sound choice)"
        )
    if plan.requires_barrier:
        return (
            f"fragment {analysis.fragment} carries no monotonicity "
            "guarantee: global All-barrier (coordinating baseline, waits "
            "on explicit word from every node)"
        )
    return f"fragment {analysis.fragment} is {_CLASS_REASONS[analysis.monotonicity]}"


def empirical_section(
    query: Query, monotonicity: str | None, *, pairs: int, seed: int = 0
) -> dict[str, Any]:
    """Cross-check the guarantee with the checker's counterexample search.

    For a guaranteed class, searches seeded random (I, J) pairs of the
    defining addition kind for a violation — a sound certificate reports
    ``holds: true``.  Without a guarantee, reports the weakest class still
    consistent with the searched pairs (evidence, not proof, exactly like
    the paper's positive claims are relative to the quantified family).
    """
    if monotonicity is not None:
        kind = _CLASS_KINDS[monotonicity]
        verdict = check_monotonicity(
            query,
            kind,
            random_pairs(query.input_schema, kind, count=pairs, seed=seed),
        )
        section: dict[str, Any] = {
            "mode": "verify-guarantee",
            "kind": kind.value,
            "pairs_checked": verdict.pairs_checked,
            "holds": verdict.holds,
        }
        if verdict.violation is not None:
            section["violation"] = verdict.violation.describe()
        return section
    sampled = []
    for kind in AdditionKind:
        sampled.extend(
            random_pairs(query.input_schema, kind, count=pairs, seed=seed)
        )
    weakest = classify_query(query, sampled)
    return {
        "mode": "classify",
        "pairs_checked": len(sampled),
        "weakest_consistent_class": weakest.value,
    }


def certificate_for_plan(
    program: Program,
    plan: DistributedPlan,
    *,
    forced_barrier: bool = False,
    check_pairs: int = 0,
    seed: int = 0,
) -> dict[str, Any]:
    """The certificate for *program* under an already-computed *plan*.

    Split from :func:`certificate` so the service (which plans once and
    may force the barrier for A/B comparisons) never re-derives the plan.
    """
    analysis = plan.analysis
    payload: dict[str, Any] = {
        "version": CERTIFICATE_VERSION,
        "rules": len(program),
        "edb": sorted(program.edb()),
        "output": sorted(program.output_relations),
        "fragment": analysis.fragment,
        "memberships": fragment_memberships(program),
        "monotonicity": analysis.monotonicity,
        "model": analysis.model,
        "coordination_class": analysis.coordination_class,
        "protocol": {
            "name": plan.transducer.name,
            "requires_barrier": plan.requires_barrier or forced_barrier,
            "requires_domain_guided": plan.requires_domain_guided,
            "forced_barrier": forced_barrier,
            "reason": protocol_reason(plan, forced_barrier=forced_barrier),
        },
    }
    # Imported lazily: the optimizer package consumes this module's
    # membership/empirical helpers, so a top-level import would cycle.
    from ..optimizer.strata import stratum_breakdown

    payload["strata"] = [
        stratum.to_dict() for stratum in stratum_breakdown(program)
    ]
    if check_pairs > 0:
        payload["empirical"] = empirical_section(
            plan.query, analysis.monotonicity, pairs=check_pairs, seed=seed
        )
    return payload


def ilog_certificate_for_plan(program, plan: DistributedPlan) -> dict[str, Any]:
    """The certificate for an ILOG¬ program (Figure 2's right column).

    Value invention means the Figure-2 Datalog¬ memberships do not apply
    (``memberships`` is ``None``) and the empirical oracle is ill-defined
    — invented values are fresh per evaluation — so there is no
    ``empirical`` section.  Everything else mirrors
    :func:`certificate_for_plan`.
    """
    analysis = plan.analysis
    return {
        "version": CERTIFICATE_VERSION,
        "rules": len(program),
        "edb": sorted(program.edb()),
        "output": sorted(program.output_relations),
        "invention": sorted(program.invention_relations),
        "fragment": analysis.fragment,
        "memberships": None,
        "monotonicity": analysis.monotonicity,
        "model": analysis.model,
        "coordination_class": analysis.coordination_class,
        "protocol": {
            "name": plan.transducer.name,
            "requires_barrier": plan.requires_barrier,
            "requires_domain_guided": plan.requires_domain_guided,
            "forced_barrier": False,
            "reason": protocol_reason(plan),
        },
    }


def certificate(
    program: Program, *, check_pairs: int = 0, seed: int = 0
) -> dict[str, Any]:
    """Classify *program* and emit its machine-readable certificate."""
    return certificate_for_plan(
        program, plan_distribution(program), check_pairs=check_pairs, seed=seed
    )


def certificate_to_json(payload: dict[str, Any], *, indent: int | None = 2) -> str:
    return json.dumps(payload, indent=indent, sort_keys=True)
