"""Shared experiment drivers: each function regenerates one paper artifact
(figure, theorem, lemma) and returns printable rows.

The benchmark modules under ``benchmarks/`` call these drivers so that the
exact code producing EXPERIMENTS.md is exercised by pytest-benchmark; the
examples reuse them for human-readable walkthroughs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..datalog.connectivity import analyze_connectivity
from ..datalog.instance import Instance
from ..datalog.parser import parse_facts
from ..datalog.stratified import evaluate as evaluate_program
from ..monotonicity.checker import random_pairs
from ..monotonicity.classes import AdditionKind
from ..monotonicity.hierarchy import ClaimResult, membership_verdict, verify_theorem31
from ..queries.base import DatalogQuery, Query
from ..queries.generators import multi_component_instance, random_graph
from ..queries.graph import complement_tc_query, transitive_closure_query, win_move_query
from ..queries.zoo import PROGRAM_ZOO
from ..transducers.coordination import coordination_free_report
from ..transducers.policy import Network, domain_guided_policy, hash_domain_assignment, hash_policy
from ..transducers.protocols import (
    broadcast_transducer,
    disjoint_protocol_transducer,
    distinct_protocol_transducer,
)
from ..transducers.runtime import FairScheduler, RunMetrics, TransducerNetwork
from ..transducers.schema import POLICY_AWARE_NO_ALL
from .analyzer import analyze
from .calm import refute_by_relocation

__all__ = [
    "ExperimentRow",
    "figure1_experiment",
    "figure2_experiment",
    "theorem43_experiment",
    "theorem44_experiment",
    "theorem45_experiment",
    "hierarchy_f_experiment",
    "lemma52_experiment",
    "theorem53_experiment",
    "theorem54_experiment",
    "winmove_experiment",
    "protocol_cost_sweep",
    "protocol_size_sweep",
    "render_rows",
]


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment report: paper claim vs. measured verdict."""

    experiment: str
    claim: str
    verdict: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict in ("verified", "reproduced")


def render_rows(rows: Iterable[ExperimentRow]) -> str:
    """Render rows as an aligned text table (used by benches and examples)."""
    rows = list(rows)
    width_claim = max((len(r.claim) for r in rows), default=0)
    lines = []
    for row in rows:
        lines.append(
            f"  [{row.verdict:^10}] {row.claim:<{width_claim}}  {row.detail}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 1 / Theorem 3.1
# ----------------------------------------------------------------------


def figure1_experiment(*, max_i: int = 2, seed: int = 11) -> list[ExperimentRow]:
    """Regenerate the Figure 1 hierarchy via the Theorem 3.1 claims."""
    results: list[ClaimResult] = verify_theorem31(max_i=max_i, seed=seed)
    return [
        ExperimentRow(
            experiment="FIG1",
            claim=f"{r.claim_id}: {r.statement}",
            verdict="verified" if r.verified else "FAILED",
            detail=r.evidence,
        )
        for r in results
    ]


# ----------------------------------------------------------------------
# Figure 2: fragment classification and class placement of the zoo
# ----------------------------------------------------------------------


def figure2_experiment(*, seed: int = 5) -> list[ExperimentRow]:
    """Check each zoo program lands in its expected fragment and that the
    fragment's guaranteed monotonicity class is empirically respected."""
    from .analyzer import query_for

    rows: list[ExperimentRow] = []
    kind_of = {
        "M": AdditionKind.ANY,
        "Mdistinct": AdditionKind.DOMAIN_DISTINCT,
        "Mdisjoint": AdditionKind.DOMAIN_DISJOINT,
    }
    for entry in PROGRAM_ZOO:
        program = entry.program()
        analysis = analyze(program)
        fragment_ok = analysis.fragment == entry.fragment
        rows.append(
            ExperimentRow(
                experiment="FIG2",
                claim=f"{entry.name} ∈ fragment {entry.fragment}",
                verdict="verified" if fragment_ok else "FAILED",
                detail=f"analyzer says {analysis.fragment}",
            )
        )
        if entry.monotonicity in kind_of:
            query = query_for(program)
            kind = kind_of[entry.monotonicity]
            pairs = list(
                random_pairs(query.input_schema, kind, count=200, seed=seed)
            )
            verdict = membership_verdict(query, kind, pairs=pairs, seed=seed)
            rows.append(
                ExperimentRow(
                    experiment="FIG2",
                    claim=f"{entry.name} respects {entry.monotonicity}",
                    verdict="verified" if verdict.holds else "FAILED",
                    detail=verdict.describe(),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Theorems 4.3 / 4.4 / 4.5
# ----------------------------------------------------------------------


def _membership_half(
    experiment: str,
    query: Query,
    transducer_factory: Callable,
    instance: Instance,
    *,
    domain_guided: bool,
    variant=None,
) -> ExperimentRow:
    transducer = (
        transducer_factory(query)
        if variant is None
        else transducer_factory(query, variant=variant)
    )
    report = coordination_free_report(
        transducer, query, instance, domain_guided=domain_guided, seeds=(0,)
    )
    return ExperimentRow(
        experiment=experiment,
        claim=f"{query.name} coordination-free via {transducer.name}",
        verdict="verified" if report.coordination_free else "FAILED",
        detail=report.describe(),
    )


def theorem43_experiment() -> list[ExperimentRow]:
    """F1 = Mdistinct, both directions on concrete queries.

    Membership uses an SP-Datalog query (SP-Datalog ⊆ Mdistinct, Figure 2);
    the refutation uses coTC ∈ Mdisjoint \\ Mdistinct via the relocation
    construction of the proof.
    """
    rows: list[ExperimentRow] = []
    from ..queries.zoo import zoo_program

    sp_query = DatalogQuery(zoo_program("sp-missing-targets"), "sp-missing-targets")
    sp_instance = Instance(parse_facts("E(1,2). E(2,3). E(3,1). Mark(2)."))
    rows.append(
        _membership_half(
            "THM4.3",
            sp_query,
            distinct_protocol_transducer,
            sp_instance,
            domain_guided=False,
        )
    )
    cotc = complement_tc_query()
    # coTC ∉ Mdistinct, so the distinct protocol must be refutable on it
    # by the relocation construction of the F1 ⊆ Mdistinct proof:
    from ..monotonicity.witnesses import witness_cotc_not_distinct

    witness = witness_cotc_not_distinct()
    refutation = refute_by_relocation(
        distinct_protocol_transducer, witness.query, witness.base, witness.addition
    )
    rows.append(
        ExperimentRow(
            experiment="THM4.3",
            claim="coTC ∉ Mdistinct ⇒ distinct protocol not consistent (relocation)",
            verdict="verified" if refutation.refuted else "FAILED",
            detail=refutation.describe(),
        )
    )
    return rows


def theorem44_experiment() -> list[ExperimentRow]:
    """F2 = Mdisjoint: membership for coTC and win-move; refutation beyond."""
    rows: list[ExperimentRow] = []
    instance = Instance(parse_facts("E(1,2). E(2,1). E(3,4)."))
    cotc = complement_tc_query()
    rows.append(
        _membership_half(
            "THM4.4", cotc, disjoint_protocol_transducer, instance, domain_guided=True
        )
    )
    game = Instance(parse_facts("Move(1,2). Move(2,1). Move(2,3). Move(4,5)."))
    rows.append(
        _membership_half(
            "THM4.4",
            win_move_query(),
            disjoint_protocol_transducer,
            game,
            domain_guided=True,
        )
    )
    from ..monotonicity.witnesses import witness_triangles_not_disjoint

    witness = witness_triangles_not_disjoint()
    refutation = refute_by_relocation(
        disjoint_protocol_transducer,
        witness.query,
        witness.base,
        witness.addition,
        domain_guided=True,
    )
    rows.append(
        ExperimentRow(
            experiment="THM4.4",
            claim="triangles-query ∉ Mdisjoint ⇒ disjoint protocol refutable",
            verdict="verified" if refutation.refuted else "FAILED",
            detail=refutation.describe(),
        )
    )
    return rows


def theorem45_experiment() -> list[ExperimentRow]:
    """A1 = Mdistinct and A2 = Mdisjoint: the protocols run unmodified in
    the no-All variant."""
    rows: list[ExperimentRow] = []
    from ..queries.zoo import zoo_program

    instance = Instance(parse_facts("E(1,2). E(2,1). E(3,4)."))
    sp_query = DatalogQuery(zoo_program("sp-missing-targets"), "sp-missing-targets")
    sp_instance = Instance(parse_facts("E(1,2). E(2,3). E(3,1). Mark(2)."))
    rows.append(
        _membership_half(
            "THM4.5",
            sp_query,
            distinct_protocol_transducer,
            sp_instance,
            domain_guided=False,
            variant=POLICY_AWARE_NO_ALL,
        )
    )
    cotc = complement_tc_query()
    rows.append(
        _membership_half(
            "THM4.5",
            cotc,
            disjoint_protocol_transducer,
            instance,
            domain_guided=True,
            variant=POLICY_AWARE_NO_ALL,
        )
    )
    tc = transitive_closure_query()
    rows.append(
        _membership_half(
            "COR4.6",
            tc,
            broadcast_transducer,
            instance,
            domain_guided=False,
            variant=POLICY_AWARE_NO_ALL,
        )
    )
    # Corollary 4.6 proper: oblivious transducers (no Id, no All) still
    # capture M — the broadcast protocol reads neither relation.
    from ..transducers.schema import OBLIVIOUS

    rows.append(
        _membership_half(
            "COR4.6",
            tc,
            broadcast_transducer,
            instance,
            domain_guided=False,
            variant=OBLIVIOUS,
        )
    )
    return rows


def hierarchy_f_experiment(*, seed: int = 17) -> list[ExperimentRow]:
    """F0 ⊊ F1 ⊊ F2: the strict hierarchy of coordination-free classes
    ([32], completed by this paper's characterizations).

    Strictness is certified through the monotonicity characterizations:
    membership at a level via the level's protocol, exclusion from the level
    below via a monotonicity violation of the matching kind (F0 = M,
    F1 = Mdistinct, F2 = Mdisjoint).
    """
    from ..monotonicity.classes import violation_on
    from ..queries.zoo import zoo_program

    rows: list[ExperimentRow] = []

    # Level F0: TC is monotone and broadcast-computable.
    tc = transitive_closure_query()
    rows.append(
        _membership_half(
            "F-HIER", tc, broadcast_transducer, Instance(parse_facts("E(1,2). E(2,3).")),
            domain_guided=False,
        )
    )

    # Level F1 \ F0: the SP query is computable by the distinct protocol
    # but is NOT monotone (so, by F0 = M, not in F0).
    sp_query = DatalogQuery(zoo_program("sp-missing-targets"), "sp-missing-targets")
    sp_instance = Instance(parse_facts("E(1,2). E(2,3). Mark(3)."))
    rows.append(
        _membership_half(
            "F-HIER", sp_query, distinct_protocol_transducer, sp_instance,
            domain_guided=False,
        )
    )
    violation = violation_on(
        sp_query,
        Instance(parse_facts("E(1,2).")),
        Instance(parse_facts("Mark(2).")),
    )
    rows.append(
        ExperimentRow(
            experiment="F-HIER",
            claim="sp-missing-targets ∉ M (hence ∉ F0 by F0 = M)",
            verdict="verified" if violation is not None else "FAILED",
            detail=violation.describe() if violation else "no violation found",
        )
    )

    # Level F2 \ F1: coTC runs under domain guidance but violates
    # domain-distinct monotonicity (so, by F1 = Mdistinct, not in F1).
    cotc = complement_tc_query()
    rows.append(
        _membership_half(
            "F-HIER", cotc, disjoint_protocol_transducer,
            Instance(parse_facts("E(1,2). E(2,1). E(3,4).")), domain_guided=True,
        )
    )
    from ..monotonicity.witnesses import witness_cotc_not_distinct

    witness = witness_cotc_not_distinct()
    rows.append(
        ExperimentRow(
            experiment="F-HIER",
            claim="coTC ∉ Mdistinct (hence ∉ F1 by F1 = Mdistinct)",
            verdict="verified" if witness.verify() else "FAILED",
            detail=witness.describe(),
        )
    )

    # Beyond F2: the triangle query violates domain-disjoint monotonicity.
    from ..monotonicity.witnesses import witness_triangles_not_disjoint

    beyond = witness_triangles_not_disjoint()
    rows.append(
        ExperimentRow(
            experiment="F-HIER",
            claim="triangles-unless-2-disjoint ∉ Mdisjoint (hence ∉ F2)",
            verdict="verified" if beyond.verify() else "FAILED",
            detail=beyond.describe(),
        )
    )
    return rows


# ----------------------------------------------------------------------
# Lemma 5.2 / Theorem 5.3 / win-move
# ----------------------------------------------------------------------


def lemma52_experiment(*, seeds: Iterable[int] = range(5)) -> list[ExperimentRow]:
    """con-Datalog¬ distributes over components: evaluate a connected
    program on multi-component inputs globally vs componentwise."""
    from ..queries.zoo import zoo_program

    program = zoo_program("example51-p1")
    report = analyze_connectivity(program)
    rows = [
        ExperimentRow(
            experiment="LEM5.2",
            claim="example51-p1 is connected",
            verdict="verified" if report.is_connected else "FAILED",
            detail=f"{len(report.disconnected_rules)} disconnected rules",
        )
    ]
    failures = 0
    trials = 0
    for seed in seeds:
        instance = multi_component_instance([3, 4, 2], seed=seed)
        trials += 1
        whole = evaluate_program(program, instance)
        componentwise = Instance()
        for component in instance.components():
            componentwise = componentwise | evaluate_program(program, component)
        if whole != componentwise:
            failures += 1
    rows.append(
        ExperimentRow(
            experiment="LEM5.2",
            claim="Q(I) = ∪ Q(C) over components, outputs adom-disjoint",
            verdict="verified" if failures == 0 else "FAILED",
            detail=f"{trials} multi-component instances, {failures} mismatches",
        )
    )
    return rows


def theorem53_experiment(*, seed: int = 3) -> list[ExperimentRow]:
    """semicon-Datalog¬ ⊆ Mdisjoint on the zoo's semicon programs."""
    rows: list[ExperimentRow] = []
    for entry in PROGRAM_ZOO:
        if entry.fragment not in ("semicon-datalog", "con-datalog"):
            continue
        query = DatalogQuery(entry.program())
        verdict = membership_verdict(query, AdditionKind.DOMAIN_DISJOINT, seed=seed)
        rows.append(
            ExperimentRow(
                experiment="THM5.3",
                claim=f"{entry.name} ∈ Mdisjoint",
                verdict="verified" if verdict.holds else "FAILED",
                detail=verdict.describe(),
            )
        )
    # The non-semicon program P2 must leave Mdisjoint:
    from ..monotonicity.checker import check_monotonicity
    from ..queries.zoo import zoo_program

    p2 = DatalogQuery(zoo_program("example51-p2"))
    base = Instance(parse_facts("E(1,2). E(2,3). E(3,1)."))
    addition = Instance(parse_facts("E(7,8). E(8,9). E(9,7)."))
    verdict = check_monotonicity(
        p2, AdditionKind.DOMAIN_DISJOINT, [(base, addition)]
    )
    rows.append(
        ExperimentRow(
            experiment="THM5.3",
            claim="example51-p2 ∉ Mdisjoint (two disjoint triangles)",
            verdict="verified" if not verdict.holds else "FAILED",
            detail=verdict.describe(),
        )
    )
    return rows


def winmove_experiment() -> list[ExperimentRow]:
    """win-move ∈ Mdisjoint and coordination-free under domain guidance —
    the headline result of [32], reproved via Section 7's remark."""
    from ..datalog.wellfounded import (
        doubled_program,
        evaluate_doubled,
        evaluate_well_founded,
        winmove_program,
    )

    rows: list[ExperimentRow] = []
    program = winmove_program()
    game = Instance(parse_facts("Move(1,2). Move(2,1). Move(2,3). Move(4,4)."))
    direct = evaluate_well_founded(program, game)
    doubled = evaluate_doubled(program, game)
    rows.append(
        ExperimentRow(
            experiment="WM",
            claim="doubled program reproduces the well-founded model",
            verdict="verified"
            if (direct.true == doubled.true and direct.undefined == doubled.undefined)
            else "FAILED",
            detail=f"|true|={len(direct.true)}, |undef|={len(direct.undefined)}",
        )
    )
    from ..datalog.connectivity import is_connected_rule

    connected = all(is_connected_rule(rule) for rule in doubled_program(program))
    rows.append(
        ExperimentRow(
            experiment="WM",
            claim="doubling preserves rule connectivity",
            verdict="verified" if connected else "FAILED",
        )
    )
    query = win_move_query()
    verdict = membership_verdict(
        query, AdditionKind.DOMAIN_DISJOINT, seed=2,
        pairs=random_pairs(query.input_schema, AdditionKind.DOMAIN_DISJOINT, count=80, seed=2),
    )
    rows.append(
        ExperimentRow(
            experiment="WM",
            claim="win-move ∈ Mdisjoint",
            verdict="verified" if verdict.holds else "FAILED",
            detail=verdict.describe(),
        )
    )
    report = coordination_free_report(
        disjoint_protocol_transducer(query),
        query,
        game,
        domain_guided=True,
        seeds=(0,),
    )
    rows.append(
        ExperimentRow(
            experiment="WM",
            claim="win-move coordination-free under domain guidance",
            verdict="verified" if report.coordination_free else "FAILED",
            detail=report.describe(),
        )
    )
    return rows


def theorem54_experiment(*, seed: int = 13) -> list[ExperimentRow]:
    """Theorem 5.4's reproducible half: (semi-connected) wILOG¬ fragments
    land in their classes, weak safety separates clean programs from
    leaking ones, and divergence is detected."""
    from ..ilog import (
        DivergenceError,
        ILOGQuery,
        classify_ilog,
        diverging_counter,
        evaluate_ilog,
        is_weakly_safe,
        semicon_wilog_cotc,
        sp_wilog_tagged_pairs,
        tc_with_witnesses,
        unsafe_leak,
    )

    rows: list[ExperimentRow] = []
    cases = [
        (semicon_wilog_cotc(), "semicon-wilog", AdditionKind.DOMAIN_DISJOINT),
        (sp_wilog_tagged_pairs(), "sp-wilog", AdditionKind.DOMAIN_DISTINCT),
        (tc_with_witnesses(), "sp-wilog", AdditionKind.ANY),
    ]
    from ..monotonicity.checker import check_monotonicity

    for program, expected_fragment, kind in cases:
        report = classify_ilog(program)
        query = ILOGQuery(program)
        verdict = check_monotonicity(
            query, kind, random_pairs(query.input_schema, kind, count=80, seed=seed)
        )
        ok = report.fragment == expected_fragment and verdict.holds
        rows.append(
            ExperimentRow(
                experiment="THM5.4",
                claim=f"{query.name} ∈ {expected_fragment}, respects its class",
                verdict="verified" if ok else "FAILED",
                detail=f"fragment={report.fragment}; {verdict.describe()}",
            )
        )
    safety_ok = is_weakly_safe(tc_with_witnesses()) and not is_weakly_safe(unsafe_leak())
    rows.append(
        ExperimentRow(
            experiment="THM5.4",
            claim="weak safety separates clean from leaking programs",
            verdict="verified" if safety_ok else "FAILED",
        )
    )
    diverged = False
    try:
        evaluate_ilog(
            diverging_counter(), Instance(parse_facts("Start(1).")), max_depth=5
        )
    except DivergenceError:
        diverged = True
    rows.append(
        ExperimentRow(
            experiment="THM5.4",
            claim="infinite invention detected as undefined output",
            verdict="verified" if diverged else "FAILED",
        )
    )
    return rows


# ----------------------------------------------------------------------
# Protocol cost profiles (Section 4.3 discussion)
# ----------------------------------------------------------------------


def protocol_size_sweep(
    *,
    edge_counts: Iterable[int] = (4, 8, 16),
    nodes: int = 3,
    seed: int = 0,
) -> list[tuple[str, int, RunMetrics]]:
    """The companion sweep: fixed network, growing input — how the three
    protocols' data-driven messaging scales with the instance."""
    network = Network([f"n{i}" for i in range(nodes)])
    tc = transitive_closure_query()
    cotc = complement_tc_query()
    results: list[tuple[str, int, RunMetrics]] = []
    for edges in edge_counts:
        instance = random_graph(max(6, edges), edges, seed=seed)
        configs = [
            ("broadcast/M", broadcast_transducer(tc), hash_policy(tc.input_schema, network)),
            (
                "distinct/Mdistinct",
                distinct_protocol_transducer(cotc),
                hash_policy(cotc.input_schema, network),
            ),
            (
                "disjoint/Mdisjoint",
                disjoint_protocol_transducer(cotc),
                domain_guided_policy(
                    cotc.input_schema, network, hash_domain_assignment(network)
                ),
            ),
        ]
        for label, transducer, policy in configs:
            run = TransducerNetwork(network, transducer, policy).new_run(instance)
            run.run_to_quiescence(scheduler=FairScheduler(seed))
            results.append((label, edges, run.metrics))
    return results


def protocol_cost_sweep(
    *,
    node_counts: Iterable[int] = (1, 2, 3, 4),
    edge_count: int = 8,
    seed: int = 0,
) -> list[tuple[str, int, RunMetrics]]:
    """Measure transitions / messages of the three protocols on the same
    input across network sizes; substantiates the Section 4.3 observation
    that the richer classes pay in (data-driven, not global) coordination."""
    instance = random_graph(6, edge_count, seed=seed)
    tc = transitive_closure_query()
    cotc = complement_tc_query()
    results: list[tuple[str, int, RunMetrics]] = []
    for count in node_counts:
        network = Network([f"n{i}" for i in range(count)])
        configs = [
            ("broadcast/M", broadcast_transducer(tc), hash_policy(tc.input_schema, network)),
            (
                "distinct/Mdistinct",
                distinct_protocol_transducer(cotc),
                hash_policy(cotc.input_schema, network),
            ),
            (
                "disjoint/Mdisjoint",
                disjoint_protocol_transducer(cotc),
                domain_guided_policy(
                    cotc.input_schema, network, hash_domain_assignment(network)
                ),
            ),
        ]
        for label, transducer, policy in configs:
            run = TransducerNetwork(network, transducer, policy).new_run(instance)
            run.run_to_quiescence(scheduler=FairScheduler(seed))
            results.append((label, count, run.metrics))
    return results
