"""repro — a reproduction of "Weaker Forms of Monotonicity for Declarative
Networking: a More Fine-grained Answer to the CALM-conjecture" (PODS 2014).

The package is organized along the paper's sections:

* :mod:`repro.datalog` — Datalog¬ (Section 2): rules, parsing, semi-positive
  and stratified semantics, well-founded semantics, connectivity fragments.
* :mod:`repro.ilog` — ILOG¬ with value invention (Section 5.2).
* :mod:`repro.queries` — generic queries and the paper's witness queries.
* :mod:`repro.monotonicity` — M / Mdistinct / Mdisjoint and the bounded
  hierarchy (Section 3), preservation classes, Theorem 3.1 machinery.
* :mod:`repro.transducers` — relational transducer networks (Section 4):
  distribution policies, the operational semantics, model variants, and the
  three coordination-free evaluation protocols.
* :mod:`repro.core` — the CALM analyzer and the experiment drivers that
  regenerate every figure and theorem.

Quickstart::

    from repro.datalog import Instance, parse_facts, parse_program
    from repro.core import analyze, run_distributed

    program = parse_program('''
        T(x, y) :- E(x, y).
        T(x, z) :- T(x, y), E(y, z).
        O(x, y) :- Adom(x), Adom(y), not T(x, y).
    ''')
    print(analyze(program).describe())
    result = run_distributed(program, Instance(parse_facts("E(1,2). E(2,3).")))
"""

__version__ = "1.0.0"

from . import core, datalog, flags, ilog, kernel, monotonicity, queries, transducers

__all__ = [
    "core",
    "datalog",
    "flags",
    "ilog",
    "kernel",
    "monotonicity",
    "queries",
    "transducers",
    "__version__",
]
