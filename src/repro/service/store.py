"""The persistent run store: tenants, requests, runs, validated reports.

One sqlite database (stdlib :mod:`sqlite3`, WAL mode) holds everything
the service ever executed:

* ``tenants``  — the tenant registry (auto-created on first use);
* ``requests`` — every accepted POST body, verbatim, so any run can be
  re-verified later against a fresh in-process evaluation;
* ``runs``     — one row per execution: the routing decision (protocol,
  barrier or not, why), the classification certificate, the output
  fingerprint, extracted cost columns (messages, rounds, transitions)
  for SQL aggregation, and the full
  :class:`~repro.transducers.telemetry.RunReport` JSON.

Reports are validated against the versioned schema
(:func:`repro.transducers.telemetry.validate_report_dict`) **on write
and on read** — a row that stops validating is corruption, not data.

Per-tenant isolation is structural: every read API takes the tenant
name and scopes the SQL to that tenant's id, so one tenant's run ids
simply do not resolve for another.

The store doubles as the *DataProvider* for report generation
(`scripts/bench_report.py --service` and CI query it instead of
re-running benchmarks): the aggregate methods at the bottom
(:meth:`RunStore.routing_table`, :meth:`RunStore.coordination_comparison`,
:meth:`RunStore.tenant_summary`) are plain SQL over the stored runs —
numbers are never hardcoded downstream.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
import uuid
from typing import Any, Iterable

from ..transducers.telemetry import validate_report_dict

__all__ = ["STORE_SCHEMA_VERSION", "RunStore", "program_sha"]

#: Bumped whenever the sqlite layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tenants (
    id         INTEGER PRIMARY KEY,
    name       TEXT NOT NULL UNIQUE,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS requests (
    id          INTEGER PRIMARY KEY,
    tenant_id   INTEGER NOT NULL REFERENCES tenants(id),
    received_at REAL NOT NULL,
    mode        TEXT NOT NULL,
    program     TEXT NOT NULL,
    facts       TEXT NOT NULL,
    options     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id                 TEXT PRIMARY KEY,
    tenant_id          INTEGER NOT NULL REFERENCES tenants(id),
    request_id         INTEGER NOT NULL REFERENCES requests(id),
    created_at         REAL NOT NULL,
    mode               TEXT NOT NULL,
    status             TEXT NOT NULL,
    program_sha        TEXT NOT NULL,
    protocol           TEXT,
    fragment           TEXT,
    monotonicity       TEXT,
    coordination_class TEXT,
    requires_barrier   INTEGER,
    forced_barrier     INTEGER,
    decision_reason    TEXT,
    output_fingerprint TEXT,
    output_facts       INTEGER,
    messages           INTEGER,
    rounds             INTEGER,
    transitions        INTEGER,
    elapsed_s          REAL,
    certificate        TEXT,
    report             TEXT,
    error              TEXT,
    verified           INTEGER,
    verified_at        REAL
);
CREATE INDEX IF NOT EXISTS runs_by_tenant ON runs(tenant_id, created_at);
CREATE INDEX IF NOT EXISTS runs_by_program ON runs(program_sha, forced_barrier);
"""

#: run mode -> the report-schema flavor it must validate against.
_REPORT_KIND_BY_MODE = {
    "eval": "run",
    "cluster": "cluster",
    "processes": "cluster",
}


def program_sha(text: str) -> str:
    """Content identity of a program: sha256 over the whitespace-normalized
    source, so the same program posted with different formatting groups
    into one row of the routing/cost tables."""
    canonical = " ".join(text.split())
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RunStore:
    """Thread-safe sqlite-backed store (one connection, one lock).

    ``path`` may be ``":memory:"`` for tests; a file path is created on
    first open.  All timestamps are ``time.time()`` floats.
    """

    def __init__(self, path: str | os.PathLike = ":memory:") -> None:
        self._path = os.fspath(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self._path, check_same_thread=False, timeout=30.0
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            if self._path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.executescript(_DDL)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta(key, value) VALUES ('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) != STORE_SCHEMA_VERSION:
                raise ValueError(
                    f"store {self._path} has schema version {row['value']}, "
                    f"this build speaks {STORE_SCHEMA_VERSION}"
                )
            self._conn.commit()

    # -- lifecycle ---------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- tenants -----------------------------------------------------------

    def ensure_tenant(self, name: str) -> int:
        """The tenant's id, creating the tenant on first sight."""
        if not name or not isinstance(name, str):
            raise ValueError("tenant name must be a non-empty string")
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO tenants(name, created_at) VALUES (?, ?)",
                (name, time.time()),
            )
            self._conn.commit()
            row = self._conn.execute(
                "SELECT id FROM tenants WHERE name=?", (name,)
            ).fetchone()
            return int(row["id"])

    def tenant_id(self, name: str) -> int | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT id FROM tenants WHERE name=?", (name,)
            ).fetchone()
            return None if row is None else int(row["id"])

    def tenants(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT name FROM tenants ORDER BY name"
            ).fetchall()
            return [row["name"] for row in rows]

    # -- writes ------------------------------------------------------------

    def record_request(
        self,
        tenant: str,
        *,
        mode: str,
        program: str,
        facts: str,
        options: dict[str, Any],
    ) -> int:
        tenant_id = self.ensure_tenant(tenant)
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO requests(tenant_id, received_at, mode, program,"
                " facts, options) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    tenant_id,
                    time.time(),
                    mode,
                    program,
                    facts,
                    json.dumps(options, sort_keys=True),
                ),
            )
            self._conn.commit()
            return int(cursor.lastrowid)

    def record_run(
        self,
        tenant: str,
        request_id: int,
        *,
        mode: str,
        status: str,
        program: str,
        decision: dict[str, Any] | None = None,
        certificate: dict[str, Any] | None = None,
        report: dict[str, Any] | None = None,
        output_fingerprint: str | None = None,
        output_facts: int | None = None,
        elapsed_s: float | None = None,
        error: str | None = None,
    ) -> str:
        """Persist one finished (or failed) execution; returns the run id.

        A non-None *report* is validated against the mode's report schema
        before it is written — an invalid report is a bug in the caller,
        not a row.
        """
        if report is not None:
            validate_report_dict(report, kind=_REPORT_KIND_BY_MODE[mode])
        tenant_id = self.ensure_tenant(tenant)
        run_id = uuid.uuid4().hex
        decision = decision or {}
        metrics = (report or {}).get("metrics", {})
        with self._lock:
            self._conn.execute(
                "INSERT INTO runs(id, tenant_id, request_id, created_at, mode,"
                " status, program_sha, protocol, fragment, monotonicity,"
                " coordination_class, requires_barrier, forced_barrier,"
                " decision_reason, output_fingerprint, output_facts, messages,"
                " rounds, transitions, elapsed_s, certificate, report, error)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                " ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    tenant_id,
                    request_id,
                    time.time(),
                    mode,
                    status,
                    program_sha(program),
                    decision.get("protocol"),
                    (certificate or {}).get("fragment"),
                    (certificate or {}).get("monotonicity"),
                    (certificate or {}).get("coordination_class"),
                    None
                    if decision.get("requires_barrier") is None
                    else int(bool(decision.get("requires_barrier"))),
                    None
                    if decision.get("forced_barrier") is None
                    else int(bool(decision.get("forced_barrier"))),
                    decision.get("reason"),
                    output_fingerprint,
                    output_facts,
                    metrics.get("message_facts_sent"),
                    metrics.get("rounds"),
                    metrics.get("transitions"),
                    elapsed_s,
                    None
                    if certificate is None
                    else json.dumps(certificate, sort_keys=True),
                    None if report is None else json.dumps(report, sort_keys=True),
                    error,
                ),
            )
            self._conn.commit()
        return run_id

    def set_verified(self, tenant: str, run_id: str, ok: bool) -> bool:
        """Record a re-verification verdict; False when the run is not
        visible to *tenant*."""
        tenant_id = self.tenant_id(tenant)
        if tenant_id is None:
            return False
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE runs SET verified=?, verified_at=? "
                "WHERE id=? AND tenant_id=?",
                (int(ok), time.time(), run_id, tenant_id),
            )
            self._conn.commit()
            return cursor.rowcount == 1

    # -- tenant-scoped reads ----------------------------------------------

    def _run_row(self, tenant: str, run_id: str) -> sqlite3.Row | None:
        tenant_id = self.tenant_id(tenant)
        if tenant_id is None:
            return None
        with self._lock:
            return self._conn.execute(
                "SELECT * FROM runs WHERE id=? AND tenant_id=?",
                (run_id, tenant_id),
            ).fetchone()

    @staticmethod
    def _summary(row: sqlite3.Row) -> dict[str, Any]:
        return {
            "run_id": row["id"],
            "created_at": row["created_at"],
            "mode": row["mode"],
            "status": row["status"],
            "program_sha": row["program_sha"],
            "protocol": row["protocol"],
            "fragment": row["fragment"],
            "monotonicity": row["monotonicity"],
            "coordination_class": row["coordination_class"],
            "requires_barrier": None
            if row["requires_barrier"] is None
            else bool(row["requires_barrier"]),
            "forced_barrier": None
            if row["forced_barrier"] is None
            else bool(row["forced_barrier"]),
            "decision_reason": row["decision_reason"],
            "output_fingerprint": row["output_fingerprint"],
            "output_facts": row["output_facts"],
            "messages": row["messages"],
            "rounds": row["rounds"],
            "transitions": row["transitions"],
            "elapsed_s": row["elapsed_s"],
            "error": row["error"],
            "verified": None if row["verified"] is None else bool(row["verified"]),
        }

    def list_runs(self, tenant: str, *, limit: int = 50) -> list[dict[str, Any]]:
        """Newest-first run summaries for one tenant (no report payloads)."""
        tenant_id = self.tenant_id(tenant)
        if tenant_id is None:
            return []
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM runs WHERE tenant_id=? "
                "ORDER BY created_at DESC, id DESC LIMIT ?",
                (tenant_id, int(limit)),
            ).fetchall()
        return [self._summary(row) for row in rows]

    def get_run(self, tenant: str, run_id: str) -> dict[str, Any] | None:
        """The full run record — summary plus certificate and the report,
        the latter re-validated against the schema on the way out."""
        row = self._run_row(tenant, run_id)
        if row is None:
            return None
        record = self._summary(row)
        record["certificate"] = (
            None if row["certificate"] is None else json.loads(row["certificate"])
        )
        if row["report"] is None:
            record["report"] = None
        else:
            report = json.loads(row["report"])
            validate_report_dict(report, kind=_REPORT_KIND_BY_MODE[row["mode"]])
            record["report"] = report
        return record

    def request_for_run(self, tenant: str, run_id: str) -> dict[str, Any] | None:
        """The originating request (program + facts) for re-verification."""
        row = self._run_row(tenant, run_id)
        if row is None:
            return None
        with self._lock:
            request = self._conn.execute(
                "SELECT * FROM requests WHERE id=?", (row["request_id"],)
            ).fetchone()
        if request is None:
            return None
        return {
            "request_id": int(request["id"]),
            "mode": request["mode"],
            "program": request["program"],
            "facts": request["facts"],
            "options": json.loads(request["options"]),
        }

    # -- aggregates (the DataProvider surface) -----------------------------

    def run_count(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is None:
                row = self._conn.execute("SELECT COUNT(*) AS n FROM runs").fetchone()
            else:
                tenant_id = self.tenant_id(tenant)
                if tenant_id is None:
                    return 0
                row = self._conn.execute(
                    "SELECT COUNT(*) AS n FROM runs WHERE tenant_id=?",
                    (tenant_id,),
                ).fetchone()
            return int(row["n"])

    def tenant_summary(self) -> list[dict[str, Any]]:
        """Per-tenant run counts and mean latency, newest tenants last."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT t.name AS tenant, COUNT(r.id) AS runs,"
                " SUM(CASE WHEN r.status='ok' THEN 1 ELSE 0 END) AS ok_runs,"
                " AVG(r.elapsed_s) AS mean_elapsed_s"
                " FROM tenants t LEFT JOIN runs r ON r.tenant_id = t.id"
                " GROUP BY t.id ORDER BY t.created_at"
            ).fetchall()
        return [
            {
                "tenant": row["tenant"],
                "runs": int(row["runs"]),
                "ok_runs": int(row["ok_runs"] or 0),
                "mean_elapsed_s": row["mean_elapsed_s"],
            }
            for row in rows
        ]

    def routing_table(self) -> list[dict[str, Any]]:
        """How programs were routed: one row per (fragment, monotonicity,
        protocol, barrier) combination with counts and mean costs."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT fragment, monotonicity, protocol, requires_barrier,"
                " forced_barrier, COUNT(*) AS runs, AVG(messages) AS mean_messages,"
                " AVG(rounds) AS mean_rounds, AVG(elapsed_s) AS mean_elapsed_s"
                " FROM runs WHERE status='ok'"
                " GROUP BY fragment, monotonicity, protocol, requires_barrier,"
                " forced_barrier"
                " ORDER BY fragment, protocol"
            ).fetchall()
        return [
            {
                "fragment": row["fragment"],
                "monotonicity": row["monotonicity"],
                "protocol": row["protocol"],
                "requires_barrier": bool(row["requires_barrier"]),
                "forced_barrier": bool(row["forced_barrier"]),
                "runs": int(row["runs"]),
                "mean_messages": row["mean_messages"],
                "mean_rounds": row["mean_rounds"],
                "mean_elapsed_s": row["mean_elapsed_s"],
            }
            for row in rows
        ]

    def coordination_comparison(self) -> list[dict[str, Any]]:
        """The paper's claim as stored data: for every program that ran
        both coordination-free and barrier-forced, the mean cost of each
        arm.  Coordination cost is *rounds* and *transitions* — the
        barrier cannot finish a round before explicit word from every
        node, which is exactly what the Section-4 protocols avoid; they
        pay instead in data-plane announcement facts (``mean_messages``,
        reported for transparency, grows with the active domain).  The
        bench asserts chosen < barrier on (rounds, transitions) for every
        coordination-free-routed program."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT program_sha, fragment, monotonicity,"
                " forced_barrier, protocol, COUNT(*) AS runs,"
                " AVG(messages) AS mean_messages, AVG(rounds) AS mean_rounds,"
                " AVG(transitions) AS mean_transitions"
                " FROM runs WHERE status='ok'"
                " GROUP BY program_sha, forced_barrier"
                " HAVING COUNT(*) > 0 ORDER BY program_sha, forced_barrier"
            ).fetchall()
        by_sha: dict[str, dict[str, Any]] = {}
        for row in rows:
            entry = by_sha.setdefault(
                row["program_sha"],
                {
                    "program_sha": row["program_sha"],
                    "fragment": row["fragment"],
                    "monotonicity": row["monotonicity"],
                },
            )
            arm = "barrier" if row["forced_barrier"] else "chosen"
            entry[arm] = {
                "protocol": row["protocol"],
                "runs": int(row["runs"]),
                "mean_messages": row["mean_messages"],
                "mean_rounds": row["mean_rounds"],
                "mean_transitions": row["mean_transitions"],
            }
        return [
            entry
            for entry in by_sha.values()
            if "chosen" in entry and "barrier" in entry
        ]

    def fingerprints(self, tenant: str | None = None) -> list[tuple[str, str]]:
        """(run_id, output_fingerprint) pairs for verification sweeps."""
        with self._lock:
            if tenant is None:
                rows = self._conn.execute(
                    "SELECT id, output_fingerprint FROM runs"
                    " WHERE output_fingerprint IS NOT NULL"
                ).fetchall()
            else:
                tenant_id = self.tenant_id(tenant)
                if tenant_id is None:
                    return []
                rows = self._conn.execute(
                    "SELECT id, output_fingerprint FROM runs"
                    " WHERE tenant_id=? AND output_fingerprint IS NOT NULL",
                    (tenant_id,),
                ).fetchall()
        return [(row["id"], row["output_fingerprint"]) for row in rows]

    def all_reports(self) -> Iterable[tuple[str, str, dict[str, Any]]]:
        """Every stored (run_id, mode, report) — the CI smoke job's
        validation sweep re-checks each against the schema."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, mode, report FROM runs WHERE report IS NOT NULL"
            ).fetchall()
        for row in rows:
            yield row["id"], row["mode"], json.loads(row["report"])
