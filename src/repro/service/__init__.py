"""repro.service — the multi-tenant query/analysis service.

The paper's central claim (weaker monotonicity classes admit cheaper
coordination-free protocols, Thms 4.3/4.4/4.5) becomes a *per-request
routing decision*: clients POST a Datalog¬/wILOG program plus an input
instance, the service classifies it, picks the cheapest applicable
protocol (or the coordinating All-barrier when nothing weaker is sound),
executes it on one of the existing runtimes, and persists the
classification certificate, the routing decision, the output fingerprint
and the full :class:`~repro.transducers.telemetry.RunReport` in a
sqlite-backed store with per-tenant isolation.

* :mod:`repro.service.store` — the persistent run store;
* :mod:`repro.service.app`   — the HTTP surface (stdlib
  ``ThreadingHTTPServer``), worker pool, rate limiting, and the CLI
  backend for ``repro serve``.

See ``docs/SERVICE.md`` for the API reference and store schema.
"""

from .app import (
    DEFAULT_RATE_LIMIT,
    DEFAULT_RATE_WINDOW,
    SERVICE_VERSION,
    RateLimiter,
    ReproService,
    ServiceConfig,
    execute_request,
)
from .store import STORE_SCHEMA_VERSION, RunStore

__all__ = [
    "DEFAULT_RATE_LIMIT",
    "DEFAULT_RATE_WINDOW",
    "SERVICE_VERSION",
    "STORE_SCHEMA_VERSION",
    "RateLimiter",
    "ReproService",
    "RunStore",
    "ServiceConfig",
    "execute_request",
]
