"""The HTTP surface: a long-running multi-tenant query/analysis service.

Stdlib only — :class:`http.server.ThreadingHTTPServer` accepts
connections, a **bounded worker pool** behind a request queue executes
runs (so a burst of heavy programs cannot fork unbounded work), and a
**sliding-window rate limiter** meters each tenant.  Flow control is
explicit in the status codes:

* ``429`` — the tenant exceeded its request rate (``Retry-After`` set);
* ``503`` — the run queue is full (global back-pressure);
* ``504`` — the run exceeded the synchronous response timeout (it keeps
  executing and is still persisted; poll ``GET /v1/runs``).

Endpoints (see ``docs/SERVICE.md`` for the full reference)::

    GET  /health                      liveness + store counters
    POST /v1/analyze                  classification certificate only
    POST /v1/runs                     classify, route, execute, persist
    GET  /v1/runs?tenant=T            list a tenant's runs (summaries)
    GET  /v1/runs/ID?tenant=T         one run, certificate + full report
    POST /v1/runs/ID/verify?tenant=T  re-verify against a fresh evaluation

Every ``POST /v1/runs`` goes through the same pipeline: parse →
classify (:func:`repro.core.certificate.certificate_for_plan`) → route
(cheapest applicable coordination-free protocol, or the All-barrier
when nothing weaker is sound, or when the caller forces it for an A/B
cost comparison) → execute on the requested runtime (``eval`` = the
synchronous in-process simulator over the columnar kernel, ``cluster``
= the asyncio runtime, ``processes`` = one OS process per node) →
persist certificate, decision, fingerprint and the validated
:class:`~repro.transducers.telemetry.RunReport` in the
:class:`~repro.service.store.RunStore`.
"""

from __future__ import annotations

import json
import math
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..core.analyzer import (
    network_for_plan,
    plan_distribution,
    plan_ilog_distribution,
    query_for,
)
from ..core.certificate import (
    certificate_for_plan,
    ilog_certificate_for_plan,
    protocol_reason,
)
from ..datalog.instance import Instance
from ..datalog.parser import parse_facts, parse_program
from ..transducers.runtime import FairScheduler, QuiescenceError
from ..transducers.telemetry import build_run_report, output_fingerprint
from .store import RunStore

__all__ = [
    "SERVICE_VERSION",
    "DEFAULT_RATE_LIMIT",
    "DEFAULT_RATE_WINDOW",
    "MODES",
    "ServiceConfig",
    "RateLimiter",
    "ReproService",
    "execute_request",
]

#: Reported in /health and the Server header; bumped on breaking changes.
SERVICE_VERSION = 1

#: Default per-tenant rate: at most this many requests per window.
DEFAULT_RATE_LIMIT = 120
DEFAULT_RATE_WINDOW = 10.0

#: Execution modes and the runtime each one maps to.
MODES = ("eval", "cluster", "processes")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 8765
    store_path: str = "repro-service.db"
    workers: int = 4
    queue_capacity: int = 64
    rate_limit: int = DEFAULT_RATE_LIMIT
    rate_window: float = DEFAULT_RATE_WINDOW
    request_timeout: float = 120.0
    default_nodes: int = 3
    max_nodes: int = 8
    max_body_bytes: int = 1 << 20
    quiet: bool = True


class _BadRequest(ValueError):
    """A client error: reported as 400 with the message, never a 500."""


class RateLimiter:
    """Sliding-window per-tenant limiter: at most *limit* requests in any
    trailing *window* seconds.  :meth:`check` returns ``None`` to admit or
    the seconds until the oldest in-window request expires (the
    ``Retry-After`` value)."""

    def __init__(self, limit: int, window: float) -> None:
        self._limit = max(1, int(limit))
        self._window = float(window)
        self._lock = threading.Lock()
        self._events: dict[str, deque[float]] = {}

    def check(self, tenant: str) -> float | None:
        now = time.monotonic()
        with self._lock:
            events = self._events.setdefault(tenant, deque())
            while events and now - events[0] > self._window:
                events.popleft()
            if len(events) >= self._limit:
                return max(self._window - (now - events[0]), 0.001)
            events.append(now)
            return None


# ----------------------------------------------------------------------
# Request execution (pure function of payload + store; also used directly
# by tests and the load benchmark)
# ----------------------------------------------------------------------


def _validated(payload: dict[str, Any], config: ServiceConfig) -> dict[str, Any]:
    if not isinstance(payload, dict):
        raise _BadRequest("request body must be a JSON object")
    tenant = payload.get("tenant")
    if not tenant or not isinstance(tenant, str):
        raise _BadRequest("'tenant' must be a non-empty string")
    program = payload.get("program")
    if not program or not isinstance(program, str):
        raise _BadRequest("'program' must be a non-empty string")
    facts = payload.get("facts", "")
    if not isinstance(facts, str):
        raise _BadRequest("'facts' must be a string of facts")
    mode = payload.get("mode", "eval")
    if mode not in MODES:
        raise _BadRequest(f"'mode' must be one of {', '.join(MODES)}")
    nodes = payload.get("nodes", config.default_nodes)
    if not isinstance(nodes, int) or not 1 <= nodes <= config.max_nodes:
        raise _BadRequest(f"'nodes' must be an integer in 1..{config.max_nodes}")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int):
        raise _BadRequest("'seed' must be an integer")
    force_barrier = bool(payload.get("force_barrier", False))
    optimize = bool(payload.get("optimize", False))
    ilog = bool(payload.get("ilog", False))
    check_pairs = payload.get("check_pairs", 0)
    if not isinstance(check_pairs, int) or not 0 <= check_pairs <= 500:
        raise _BadRequest("'check_pairs' must be an integer in 0..500")
    if ilog and mode != "eval":
        raise _BadRequest("ILOG programs run in mode 'eval' only")
    if ilog and force_barrier:
        raise _BadRequest("'force_barrier' does not combine with 'ilog'")
    if optimize and ilog:
        raise _BadRequest("'optimize' does not combine with 'ilog'")
    if optimize and force_barrier:
        raise _BadRequest(
            "'optimize' does not combine with 'force_barrier' (the "
            "optimizer's whole point is to avoid the barrier)"
        )
    if ilog and check_pairs:
        raise _BadRequest(
            "'check_pairs' does not combine with 'ilog' (value invention "
            "makes the empirical oracle ill-defined)"
        )
    if mode == "processes" and force_barrier:
        raise _BadRequest("'force_barrier' does not combine with mode 'processes'")
    return {
        "tenant": tenant,
        "program": program,
        "facts": facts,
        "mode": mode,
        "nodes": nodes,
        "seed": seed,
        "force_barrier": force_barrier,
        "optimize": optimize,
        "ilog": ilog,
        "check_pairs": check_pairs,
    }


def _plan_and_certificate(request: dict[str, Any]):
    """Parse + classify; returns (plan, certificate, decision)."""
    if request["ilog"]:
        from ..ilog.program import parse_ilog_program

        program = parse_ilog_program(request["program"])
        plan = plan_ilog_distribution(program)
        cert = ilog_certificate_for_plan(program, plan)
    elif request["optimize"]:
        from ..optimizer import plan_certificate, plan_optimized

        program = parse_program(request["program"])
        optimized = plan_optimized(program)
        plan = optimized.plan
        cert = plan_certificate(
            program,
            nodes=request["nodes"],
            facts=len(Instance(parse_facts(request["facts"]))),
            check_pairs=request["check_pairs"],
            seed=request["seed"],
        )
        decision = {
            "protocol": plan.transducer.name,
            "requires_barrier": plan.requires_barrier,
            "forced_barrier": False,
            "model": plan.analysis.model,
            "coordination_class": plan.analysis.coordination_class,
            "reason": optimized.reason,
            "optimized": True,
            "effective_monotonicity": optimized.effective_monotonicity,
            "upgraded": optimized.upgraded,
        }
        return plan, cert, decision
    else:
        program = parse_program(request["program"])
        plan = plan_distribution(
            program, force_barrier=request["force_barrier"]
        )
        cert = certificate_for_plan(
            program,
            plan,
            forced_barrier=request["force_barrier"],
            check_pairs=request["check_pairs"],
            seed=request["seed"],
        )
    decision = {
        "protocol": plan.transducer.name,
        "requires_barrier": plan.requires_barrier,
        "forced_barrier": request["force_barrier"],
        "model": plan.analysis.model,
        "coordination_class": plan.analysis.coordination_class,
        "reason": protocol_reason(plan, forced_barrier=request["force_barrier"]),
    }
    return plan, cert, decision


def _execute_plan(plan, request: dict[str, Any]):
    """Run the planned protocol on the requested runtime.

    Returns (result instance, quiesced, report dict)."""
    instance = Instance(parse_facts(request["facts"]))
    nodes = tuple(f"n{i + 1}" for i in range(request["nodes"]))
    mode = request["mode"]
    if mode == "eval":
        run = network_for_plan(plan, nodes).new_run(instance)
        scheduler = FairScheduler(request["seed"])
        quiesced = True
        try:
            result = run.run_to_quiescence(scheduler=scheduler)
        except QuiescenceError:
            quiesced = False
            result = run.global_output()
        report = build_run_report(run, scheduler=scheduler, quiesced=quiesced)
        return result, quiesced, report.to_dict()
    if mode == "cluster":
        from ..cluster import ClusterRun, build_cluster_report

        run = ClusterRun(
            network_for_plan(plan, nodes),
            instance,
            transport="memory",
            seed=request["seed"],
        )
        quiesced = True
        try:
            result = run.run_to_quiescence()
        except QuiescenceError:
            quiesced = False
            result = run.global_output()
        return result, quiesced, build_cluster_report(run, quiesced=quiesced).to_dict()
    # mode == "processes"
    from ..cluster import ProcessCluster, build_cluster_report

    cluster = ProcessCluster(
        {"kind": "program", "text": request["program"]},
        instance,
        processes=request["nodes"],
        seed=request["seed"],
    )
    quiesced = True
    try:
        result = cluster.run_to_quiescence()
    except QuiescenceError:
        quiesced = False
        result = cluster.global_output()
    return result, quiesced, build_cluster_report(cluster, quiesced=quiesced).to_dict()


def execute_request(
    store: RunStore, payload: dict[str, Any], *, config: ServiceConfig | None = None
) -> tuple[int, dict[str, Any]]:
    """The whole POST /v1/runs pipeline; returns (http_status, body).

    Every accepted request is persisted — including ones that fail to
    parse (status ``rejected``) — so the store is a complete audit log.
    """
    config = config or ServiceConfig()
    started = time.perf_counter()
    try:
        request = _validated(payload, config)
    except _BadRequest as error:
        return 400, {"error": str(error)}
    request_id = store.record_request(
        request["tenant"],
        mode=request["mode"],
        program=request["program"],
        facts=request["facts"],
        options={
            key: request[key]
            for key in (
                "nodes",
                "seed",
                "force_barrier",
                "optimize",
                "ilog",
                "check_pairs",
            )
        },
    )
    try:
        plan, cert, decision = _plan_and_certificate(request)
    except Exception as error:  # parse/classification errors are client errors
        store.record_run(
            request["tenant"],
            request_id,
            mode=request["mode"],
            status="rejected",
            program=request["program"],
            elapsed_s=time.perf_counter() - started,
            error=str(error),
        )
        return 400, {"error": str(error)}
    try:
        result, quiesced, report = _execute_plan(plan, request)
        expected = plan.query(Instance(parse_facts(request["facts"])))
        matches = result == expected
        status = "ok" if matches and quiesced else "failed"
        error_text = None
        if not quiesced:
            error_text = "run did not quiesce"
        elif not matches:
            error_text = "distributed output diverged from centralized evaluation"
        elapsed = time.perf_counter() - started
        run_id = store.record_run(
            request["tenant"],
            request_id,
            mode=request["mode"],
            status=status,
            program=request["program"],
            decision=decision,
            certificate=cert,
            report=report,
            output_fingerprint=output_fingerprint(result),
            output_facts=len(result),
            elapsed_s=elapsed,
            error=error_text,
        )
    except Exception as error:  # execution failure: recorded, surfaced as 500
        store.record_run(
            request["tenant"],
            request_id,
            mode=request["mode"],
            status="failed",
            program=request["program"],
            decision=decision,
            certificate=cert,
            elapsed_s=time.perf_counter() - started,
            error=str(error),
        )
        return 500, {"error": str(error)}
    body = {
        "run_id": run_id,
        "tenant": request["tenant"],
        "mode": request["mode"],
        "status": status,
        "quiesced": quiesced,
        "matches_centralized": matches,
        "certificate": cert,
        "decision": decision,
        "output_fingerprint": output_fingerprint(result),
        "output_facts": len(result),
        "elapsed_s": round(elapsed, 6),
        "report": report,
    }
    if error_text is not None:
        body["error"] = error_text
    return (200 if status == "ok" else 500), body


def _verify_run(store: RunStore, tenant: str, run_id: str) -> tuple[int, dict]:
    """POST /v1/runs/ID/verify: recompute Q(I) in-process and compare."""
    record = store.get_run(tenant, run_id)
    request = store.request_for_run(tenant, run_id)
    if record is None or request is None:
        return 404, {"error": f"no run {run_id!r} for tenant {tenant!r}"}
    if record["output_fingerprint"] is None:
        return 409, {"error": f"run {run_id!r} stored no fingerprint to verify"}
    try:
        instance = Instance(parse_facts(request["facts"]))
        if request["options"].get("ilog"):
            from ..ilog.program import parse_ilog_program

            query = plan_ilog_distribution(
                parse_ilog_program(request["program"])
            ).query
        else:
            query = query_for(parse_program(request["program"]))
        recomputed = output_fingerprint(query(instance))
    except Exception as error:
        return 500, {"error": f"re-evaluation failed: {error}"}
    ok = recomputed == record["output_fingerprint"]
    store.set_verified(tenant, run_id, ok)
    return 200, {
        "run_id": run_id,
        "verified": ok,
        "stored_fingerprint": record["output_fingerprint"],
        "recomputed_fingerprint": recomputed,
    }


def _analyze_only(payload: dict[str, Any]) -> tuple[int, dict]:
    """POST /v1/analyze: the certificate without execution or storage."""
    if not isinstance(payload, dict) or not isinstance(payload.get("program"), str):
        return 400, {"error": "'program' must be a string"}
    check_pairs = payload.get("check_pairs", 0)
    if not isinstance(check_pairs, int) or not 0 <= check_pairs <= 500:
        return 400, {"error": "'check_pairs' must be an integer in 0..500"}
    try:
        if payload.get("ilog"):
            from ..ilog.program import parse_ilog_program

            program = parse_ilog_program(payload["program"])
            cert = ilog_certificate_for_plan(program, plan_ilog_distribution(program))
        else:
            from ..core.certificate import certificate

            cert = certificate(
                parse_program(payload["program"]),
                check_pairs=check_pairs,
                seed=int(payload.get("seed", 0) or 0),
            )
    except Exception as error:
        return 400, {"error": str(error)}
    return 200, {"certificate": cert}


# ----------------------------------------------------------------------
# The server: worker pool + HTTP handler
# ----------------------------------------------------------------------


@dataclass
class _Job:
    payload: dict[str, Any]
    done: threading.Event = field(default_factory=threading.Event)
    status: int = 500
    body: dict[str, Any] = field(default_factory=dict)


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-service/{SERVICE_VERSION}"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> "ReproService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if not self.service.config.quiet:
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _send(self, status: int, body: dict, headers: dict | None = None) -> None:
        blob = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def _json_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.config.max_body_bytes:
            self._send(413, {"error": "request body too large"})
            return None
        try:
            return json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as error:
            self._send(400, {"error": f"invalid JSON body: {error}"})
            return None

    def _tenant_param(self, query: dict) -> str | None:
        tenant = (query.get("tenant") or [None])[0] or self.headers.get(
            "X-Repro-Tenant"
        )
        if not tenant:
            self._send(400, {"error": "pass ?tenant=NAME (or X-Repro-Tenant)"})
            return None
        return tenant

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]
        service = self.service
        if url.path == "/health":
            store = service.store
            self._send(
                200,
                {
                    "status": "ok",
                    "version": SERVICE_VERSION,
                    "store": store.path,
                    "tenants": len(store.tenants()),
                    "runs": store.run_count(),
                    "queue_depth": service.queue_depth(),
                },
            )
            return
        if parts[:2] == ["v1", "runs"] and len(parts) == 2:
            tenant = self._tenant_param(query)
            if tenant is None:
                return
            try:
                limit = int((query.get("limit") or ["50"])[0])
            except ValueError:
                self._send(400, {"error": "'limit' must be an integer"})
                return
            limit = max(1, min(limit, 500))
            self._send(
                200,
                {"tenant": tenant, "runs": service.store.list_runs(tenant, limit=limit)},
            )
            return
        if parts[:2] == ["v1", "runs"] and len(parts) == 3:
            tenant = self._tenant_param(query)
            if tenant is None:
                return
            record = service.store.get_run(tenant, parts[2])
            if record is None:
                self._send(
                    404, {"error": f"no run {parts[2]!r} for tenant {tenant!r}"}
                )
                return
            record["tenant"] = tenant
            self._send(200, record)
            return
        self._send(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]
        service = self.service
        body = self._json_body()
        if body is None:
            return
        if url.path == "/v1/analyze":
            tenant = body.get("tenant") if isinstance(body, dict) else None
            retry = service.limiter.check(tenant or "<anonymous>")
            if retry is not None:
                self._send_rate_limited(retry)
                return
            status, payload = _analyze_only(body)
            self._send(status, payload)
            return
        if url.path == "/v1/runs":
            tenant = body.get("tenant") if isinstance(body, dict) else None
            if not tenant or not isinstance(tenant, str):
                self._send(400, {"error": "'tenant' must be a non-empty string"})
                return
            retry = service.limiter.check(tenant)
            if retry is not None:
                self._send_rate_limited(retry)
                return
            job = _Job(payload=body)
            if not service.submit(job):
                retry_after = service.backpressure_retry_after()
                self._send(
                    503,
                    {
                        "error": "run queue is full; retry later",
                        "retry_after": round(retry_after, 3),
                    },
                    {"Retry-After": str(max(1, math.ceil(retry_after)))},
                )
                return
            if not job.done.wait(service.config.request_timeout):
                self._send(
                    504,
                    {
                        "error": "run still executing; it will be persisted — "
                        "poll GET /v1/runs"
                    },
                )
                return
            self._send(job.status, job.body)
            return
        if parts[:2] == ["v1", "runs"] and len(parts) == 4 and parts[3] == "verify":
            tenant = self._tenant_param(query)
            if tenant is None:
                return
            retry = service.limiter.check(tenant)
            if retry is not None:
                self._send_rate_limited(retry)
                return
            status, payload = _verify_run(service.store, tenant, parts[2])
            self._send(status, payload)
            return
        self._send(404, {"error": f"unknown path {url.path!r}"})

    def _send_rate_limited(self, retry_after: float) -> None:
        self._send(
            429,
            {"error": "rate limit exceeded", "retry_after": round(retry_after, 3)},
            {"Retry-After": str(max(1, math.ceil(retry_after)))},
        )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ReproService:
    """One service instance: HTTP server + worker pool + store.

    Typical embedded use (tests, the load benchmark)::

        service = ReproService(ServiceConfig(port=0, store_path=path))
        service.start_in_thread()
        ... requests against f"http://127.0.0.1:{service.port}" ...
        service.shutdown()

    The CLI (``repro serve``) calls :meth:`serve_forever` on the main
    thread and :meth:`shutdown` from its signal handlers.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.store = RunStore(self.config.store_path)
        self.limiter = RateLimiter(self.config.rate_limit, self.config.rate_window)
        self._queue: queue.Queue[_Job | None] = queue.Queue(
            maxsize=self.config.queue_capacity
        )
        self._workers: list[threading.Thread] = []
        # Recent per-job wall times, appended by the worker pool — the
        # drain-rate estimate behind 503 Retry-After hints.
        self._recent_elapsed: deque[float] = deque(maxlen=32)
        self._elapsed_lock = threading.Lock()
        self._httpd: _Server | None = None
        self._serve_thread: threading.Thread | None = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[1]

    def start(self) -> "ReproService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._httpd = _Server((self.config.host, self.config.port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]
        for index in range(max(1, self.config.workers)):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-svc-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    def serve_forever(self) -> None:
        if self._httpd is None:
            self.start()
        assert self._httpd is not None
        self._httpd.serve_forever(poll_interval=0.2)

    def start_in_thread(self) -> "ReproService":
        self.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,  # type: ignore[union-attr]
            kwargs={"poll_interval": 0.2},
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, drain the workers, close the store."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        self.store.close()

    # -- the worker pool ---------------------------------------------------

    def submit(self, job: _Job) -> bool:
        try:
            self._queue.put_nowait(job)
            return True
        except queue.Full:
            return False

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def backpressure_retry_after(self) -> float:
        """Seconds until the full queue plausibly has room again: the
        backlog ahead of a would-be entrant divided across the worker
        pool, at the observed per-job wall time (the limiter's per-slot
        window when no job has finished yet)."""
        with self._elapsed_lock:
            if self._recent_elapsed:
                per_job = sum(self._recent_elapsed) / len(self._recent_elapsed)
            else:
                per_job = self.config.rate_window / max(1, self.config.rate_limit)
        workers = max(1, len(self._workers) or self.config.workers)
        backlog = max(1, self.queue_depth())
        return max(0.001, backlog * per_job / workers)

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            started = time.monotonic()
            try:
                job.status, job.body = execute_request(
                    self.store, job.payload, config=self.config
                )
            except Exception as error:  # defensive: a worker must never die
                job.status, job.body = 500, {"error": f"internal error: {error}"}
            finally:
                job.done.set()
                with self._elapsed_lock:
                    self._recent_elapsed.append(time.monotonic() - started)
