"""Safety analysis for ILOG¬: unsafe positions and weak safety (Sec. 5.2).

The set of *unsafe positions* is the smallest set S of pairs (R, i) with

* (R, 1) ∈ S for every invention relation R, and
* if (R, i) ∈ S and some rule has ``R(x1..xk)`` as a positive body atom and
  head ``T(y1..yl)`` with ``xi`` and ``yj`` the same variable, then
  (T, j) ∈ S.

A program is *weakly safe* when no output relation has an unsafe position;
weakly safe programs are safe: their outputs never contain invented values.
:func:`check_safety_dynamic` verifies the latter on a concrete evaluation,
which the property-based tests use to validate the static analysis.
"""

from __future__ import annotations

from ..datalog.instance import Instance
from ..datalog.terms import Variable
from .program import ILOGProgram
from .terms import contains_invented

__all__ = ["unsafe_positions", "is_weakly_safe", "unsafe_output_positions", "check_safety_dynamic"]


def unsafe_positions(program: ILOGProgram) -> frozenset[tuple[str, int]]:
    """The least fixed point of the unsafe-position propagation (1-based)."""
    unsafe: set[tuple[str, int]] = {
        (relation, 1) for relation in program.invention_relations
    }
    changed = True
    while changed:
        changed = False
        for ilog_rule in program:
            rule = ilog_rule.rule
            head_relation = ilog_rule.head_relation
            # Positions of the declared head (invention slot included).
            offset = 1 if ilog_rule.invents else 0
            head_terms = rule.head.terms
            for atom in rule.pos:
                for i, term in enumerate(atom.terms, start=1):
                    if not isinstance(term, Variable):
                        continue
                    if (atom.relation, i) not in unsafe:
                        continue
                    for j, head_term in enumerate(head_terms, start=1 + offset):
                        if head_term is term or head_term == term:
                            if (head_relation, j) not in unsafe:
                                unsafe.add((head_relation, j))
                                changed = True
    return frozenset(unsafe)


def unsafe_output_positions(program: ILOGProgram) -> list[tuple[str, int]]:
    """The unsafe positions that land in output relations (sorted)."""
    unsafe = unsafe_positions(program)
    return sorted(
        (relation, position)
        for relation, position in unsafe
        if relation in program.output_relations
    )


def is_weakly_safe(program: ILOGProgram) -> bool:
    """True when no output relation carries an unsafe position (wILOG¬)."""
    return not unsafe_output_positions(program)


def check_safety_dynamic(program: ILOGProgram, output: Instance) -> bool:
    """True when a concrete output contains no invented values.

    Weak safety (static) implies this holds for every input; the converse
    need not hold, which is exactly why weak safety is only a sufficient
    syntactic criterion for the undecidable semantic safety.
    """
    return not any(contains_invented(fact.values) for fact in output)
