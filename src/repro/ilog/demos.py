"""Demonstration ILOG¬ programs exercising every Section 5.2 mechanism:
internal value invention, weak-safety violations, divergence, and the
semi-connected fragment with invention.
"""

from __future__ import annotations

from ..datalog.instance import Instance
from ..queries.base import Query
from .evaluation import ilog_query_output
from .program import ILOGProgram, parse_ilog_program

__all__ = [
    "ILOGQuery",
    "tc_with_witnesses",
    "unsafe_leak",
    "diverging_counter",
    "semicon_wilog_cotc",
    "sp_wilog_tagged_pairs",
]


class ILOGQuery(Query):
    """The query computed by a (safe) ILOG¬ program.

    Output values are checked dynamically: invented values leaking into the
    output raise — a weakly safe program never trips this.
    """

    def __init__(self, program: ILOGProgram, name: str | None = None) -> None:
        super().__init__(
            name or f"ilog[{','.join(sorted(program.output_relations))}]",
            program.edb(),
            program.output_schema(),
        )
        self._program = program

    @property
    def program(self) -> ILOGProgram:
        return self._program

    def evaluate(self, instance: Instance) -> Instance:
        from .safety import check_safety_dynamic
        from .terms import contains_invented

        output = ilog_query_output(self._program, instance)
        if not check_safety_dynamic(self._program, output):
            leaked = next(f for f in output if contains_invented(f.values))
            raise RuntimeError(
                f"unsafe ILOG program leaked an invented value: {leaked!r}"
            )
        return output


def tc_with_witnesses() -> ILOGProgram:
    """Transitive closure with invented path-witness objects.

    Invention is used *internally* (relation ``P`` carries a Skolem witness
    per reachable pair); the output ``O`` projects the real values away from
    the witness, so the program is weakly safe.  Because the Skolem functor
    depends only on (x, z), witnesses deduplicate and the fixpoint is finite.
    """
    return parse_ilog_program(
        """
        P(*, x, y) :- E(x, y).
        P(*, x, z) :- P(p, x, y), E(y, z).
        O(x, y) :- P(p, x, y).
        """
    )


def unsafe_leak() -> ILOGProgram:
    """A *non*-weakly-safe program: the invention position of ``P`` flows
    into the first output position."""
    return parse_ilog_program(
        """
        P(*, x) :- V(x).
        O(p, x) :- P(p, x).
        """
    )


def diverging_counter() -> ILOGProgram:
    """An ILOG¬ program whose fixpoint is infinite: every round re-invents
    on top of the previous invention (``N(f_N(n), n)`` from ``N(n, x)``),
    nesting Skolem terms without bound.  Its output is undefined; the
    evaluator raises :class:`~repro.ilog.evaluation.DivergenceError`."""
    return parse_ilog_program(
        """
        N(*, x) :- Start(x).
        N(*, n) :- N(n, x).
        O(x, x) :- Start(x).
        """
    )


def semicon_wilog_cotc() -> ILOGProgram:
    """A semicon-wILOG¬ program for the complement of transitive closure:
    connected recursive strata (with an invented witness relation) below a
    disconnected final stratum."""
    return parse_ilog_program(
        """
        Adom(x) :- E(x, y).
        Adom(y) :- E(x, y).
        T(x, y) :- E(x, y).
        T(x, z) :- T(x, y), E(y, z).
        W(*, x, y) :- T(x, y).
        O(x, y) :- Adom(x), Adom(y), not T(x, y).
        """
    )


def sp_wilog_tagged_pairs() -> ILOGProgram:
    """An SP-wILOG program: tag each non-marked edge with a fresh object and
    count on weak safety to keep the tags internal."""
    return parse_ilog_program(
        """
        Tag(*, x, y) :- E(x, y), not Mark(x).
        O(x, y) :- Tag(t, x, y).
        """
    )
