"""Skolem terms and the invention symbol for ILOG¬ (Section 5.2).

ILOG¬ associates to each invention relation R a Skolem functor ``f_R`` of
arity ``ar(R) - 1``; the invention symbol ``*`` in a rule head stands for the
functor applied to the remaining head arguments.  Evaluation works over the
Herbrand universe: ground terms built from dom-values and Skolem functors.

A :class:`SkolemTerm` is such a ground term.  It is hashable, so invented
values live inside ordinary :class:`~repro.datalog.terms.Fact` tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

__all__ = ["SkolemTerm", "INVENTION", "term_depth", "contains_invented"]


@dataclass(frozen=True, slots=True)
class SkolemTerm:
    """A ground Skolem term ``f_R(v1, ..., vk)`` of the Herbrand universe."""

    functor: str
    arguments: tuple[Hashable, ...]

    def __init__(self, functor: str, arguments) -> None:
        object.__setattr__(self, "functor", functor)
        object.__setattr__(self, "arguments", tuple(arguments))

    def depth(self) -> int:
        """Nesting depth: 1 + the max depth of Skolem sub-terms."""
        return 1 + max(
            (arg.depth() for arg in self.arguments if isinstance(arg, SkolemTerm)),
            default=0,
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.arguments)
        return f"{self.functor}({inner})"


class _InventionSymbol:
    """The ``*`` placeholder in invention-atom heads (singleton)."""

    _instance: "_InventionSymbol | None" = None

    def __new__(cls) -> "_InventionSymbol":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


INVENTION = _InventionSymbol()


def term_depth(value: Hashable) -> int:
    """The Skolem depth of a value (0 for plain dom-values)."""
    if isinstance(value, SkolemTerm):
        return value.depth()
    return 0


def contains_invented(values) -> bool:
    """True when any of *values* is (or nests) a Skolem term."""
    return any(isinstance(v, SkolemTerm) for v in values)
