"""ILOG¬ programs: Datalog¬ with invention atoms in rule heads.

An invention atom is ``R(*, u1, ..., uk)``: the first position of the
invention relation R is filled by the invention symbol, and evaluation fills
it with the Skolem term ``f_R(V(u1), ..., V(uk))`` (Section 5.2, following
Cabibbo [18]).

An :class:`ILOGRule` stores the head *without* the invention marker plus an
``invents`` flag; :meth:`ILOGProgram.skolemized_head` shows the conventional
Skolemized form.  The parser extension :func:`parse_ilog_program` accepts the
``*`` syntax directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..datalog.parser import INVENTION_MARKER, _Parser, ParseError
from ..datalog.rules import Rule, RuleValidationError
from ..datalog.schema import Schema, SchemaError
from ..datalog.terms import Atom

__all__ = ["ILOGRule", "ILOGProgram", "parse_ilog_program", "skolem_functor_name"]


def skolem_functor_name(relation: str) -> str:
    """The Skolem functor associated with invention relation *relation*."""
    return f"f_{relation}"


@dataclass(frozen=True)
class ILOGRule:
    """One ILOG¬ rule.

    ``rule`` is the underlying Datalog¬ rule whose head *excludes* the
    invention position when ``invents`` is True; the full head of an
    inventing rule for R/k therefore has arity k-1 here, and evaluation
    prepends the Skolem term.
    """

    rule: Rule
    invents: bool

    @property
    def head_relation(self) -> str:
        return self.rule.head.relation

    def head_arity(self) -> int:
        """The declared arity of the head relation (invention slot included)."""
        return self.rule.head.arity + (1 if self.invents else 0)

    def skolemized_head_repr(self) -> str:
        """The Skolemized conventional form of the head, for display."""
        if not self.invents:
            return repr(self.rule.head)
        functor = skolem_functor_name(self.head_relation)
        args = ", ".join(repr(t) for t in self.rule.head.terms)
        return f"{self.head_relation}({functor}({args}), {args})"

    def __repr__(self) -> str:
        body = repr(self.rule).split(" :- ", 1)[1]
        head = self.skolemized_head_repr() if self.invents else repr(self.rule.head)
        return f"{head} :- {body}"


class ILOGProgram:
    """An ILOG¬ program: ILOG rules plus schema bookkeeping.

    Invention relations are those with at least one inventing rule; a
    relation may not mix inventing and non-inventing rules (its first
    position is *the* invention position).
    """

    def __init__(
        self,
        rules: Iterable[ILOGRule],
        output_relations: Iterable[str] | None = None,
        extra_edb: Schema | None = None,
    ) -> None:
        self._rules = tuple(rules)
        if not self._rules:
            raise RuleValidationError("an ILOG program needs at least one rule")
        invention = {r.head_relation for r in self._rules if r.invents}
        plain = {r.head_relation for r in self._rules if not r.invents}
        mixed = invention & plain
        if mixed:
            raise SchemaError(
                f"relation(s) {sorted(mixed)} have both inventing and "
                "non-inventing rules"
            )
        self._invention_relations = frozenset(invention)
        self._schema = self._infer_schema(extra_edb)
        self._idb = frozenset(r.head_relation for r in self._rules)
        if output_relations is None:
            output = frozenset({"O"}) if "O" in self._idb else self._idb
        else:
            output = frozenset(output_relations)
            unknown = output - self._idb
            if unknown:
                raise SchemaError(
                    f"output relations {sorted(unknown)} are not defined by any rule"
                )
        self._output = output

    def _infer_schema(self, extra_edb: Schema | None) -> Schema:
        arities: dict[str, int] = dict(extra_edb or {})

        def record(relation: str, arity: int) -> None:
            known = arities.setdefault(relation, arity)
            if known != arity:
                raise SchemaError(
                    f"relation {relation} used with arities {known} and {arity}"
                )

        for ilog_rule in self._rules:
            record(ilog_rule.head_relation, ilog_rule.head_arity())
            for atom in set(ilog_rule.rule.pos) | set(ilog_rule.rule.neg):
                record(atom.relation, atom.arity)
        return Schema(arities, allow_nullary=True)

    # ------------------------------------------------------------------

    @property
    def rules(self) -> tuple[ILOGRule, ...]:
        return self._rules

    @property
    def invention_relations(self) -> frozenset[str]:
        return self._invention_relations

    @property
    def output_relations(self) -> frozenset[str]:
        return self._output

    def sch(self) -> Schema:
        return self._schema

    def idb(self) -> Schema:
        return self._schema.restrict(self._idb)

    def edb(self) -> Schema:
        return self._schema.without(self._idb)

    def output_schema(self) -> Schema:
        return self._schema.restrict(self._output)

    def is_semi_positive(self) -> bool:
        """SP-wILOG: negation restricted to edb relations."""
        return all(
            atom.relation not in self._idb
            for ilog_rule in self._rules
            for atom in ilog_rule.rule.neg
        )

    def __iter__(self) -> Iterator[ILOGRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        lines = "\n".join(repr(rule) for rule in self._rules)
        return f"ILOGProgram(\n{lines}\n)"


def parse_ilog_program(
    text: str,
    output_relations: Iterable[str] | None = None,
    extra_edb: Schema | None = None,
) -> ILOGProgram:
    """Parse an ILOG¬ program; invention atoms use ``*`` in the first head
    position: ``R(*, x, y) :- E(x, y).``"""
    parser = _Parser(text, allow_invention=True)
    rules: list[ILOGRule] = []
    while not parser.at_end():
        raw = parser.parse_rule()
        for atom in set(raw.pos) | set(raw.neg):
            if any(term is INVENTION_MARKER for term in atom.terms):
                raise ParseError(
                    f"invention symbol may not occur in rule bodies "
                    f"(atom {atom.relation} in a rule for {raw.head.relation})"
                )
        head = raw.head
        marker_positions = [
            index for index, term in enumerate(head.terms) if term is INVENTION_MARKER
        ]
        if not marker_positions:
            rules.append(ILOGRule(rule=raw, invents=False))
            continue
        if marker_positions != [0]:
            raise ParseError(
                f"invention symbol must appear exactly once, in the first "
                f"position of the head (rule for {head.relation})"
            )
        reduced_head = Atom(head.relation, head.terms[1:])
        reduced = Rule(reduced_head, raw.pos, raw.neg, raw.ineq)
        rules.append(ILOGRule(rule=reduced, invents=True))
    # Re-check: the body of any rule may mention invention relations at
    # their full arity; the schema inference below will catch mismatches.
    return ILOGProgram(rules, output_relations=output_relations, extra_edb=extra_edb)
