"""Stratified evaluation of ILOG¬ programs over the Herbrand universe.

Valuations are computed exactly as for Datalog¬ (the join machinery of
:mod:`repro.datalog.evaluation` is reused); an inventing rule's head fact is
completed with the Skolem term ``f_R(V(u1), ..., V(uk))`` in its first
position.  Since Skolem terms are hashable values, invented facts flow
through subsequent rules like ordinary facts.

Value invention can make the fixpoint infinite (Cabibbo: the program's
output is then *undefined*).  The evaluator guards with a fact budget and a
Skolem-depth budget and raises :class:`DivergenceError` when either is
exceeded.
"""

from __future__ import annotations

from typing import Iterable

from ..datalog.evaluation import FactIndex, PlanCache, match_rule
from ..datalog.instance import Instance
from ..datalog.stratification import (
    NotStratifiableError,
    PrecedenceGraph,
    _strongly_connected_components,
)
from ..datalog.terms import Fact
from .program import ILOGProgram, ILOGRule, skolem_functor_name
from .terms import SkolemTerm, term_depth

__all__ = [
    "DivergenceError",
    "ilog_precedence_graph",
    "stratify_ilog",
    "evaluate_ilog",
    "ilog_query_output",
]


class DivergenceError(RuntimeError):
    """The fixpoint would be infinite: the program's output is undefined."""


def ilog_precedence_graph(program: ILOGProgram) -> PrecedenceGraph:
    """The idb-restricted precedence graph of an ILOG¬ program."""
    idb = set(program.idb())
    positive: dict[str, set[str]] = {}
    negative: dict[str, set[str]] = {}
    for ilog_rule in program:
        head = ilog_rule.head_relation
        for atom in ilog_rule.rule.pos:
            if atom.relation in idb:
                positive.setdefault(atom.relation, set()).add(head)
        for atom in ilog_rule.rule.neg:
            if atom.relation in idb:
                negative.setdefault(atom.relation, set()).add(head)
    return PrecedenceGraph(
        nodes=frozenset(idb),
        positive={k: frozenset(v) for k, v in positive.items()},
        negative={k: frozenset(v) for k, v in negative.items()},
    )


def stratify_ilog(program: ILOGProgram) -> list[list[ILOGRule]]:
    """Group the rules of *program* into strata (same algorithm as for
    Datalog¬; raises :class:`NotStratifiableError` on recursion through
    negation)."""
    graph = ilog_precedence_graph(program)
    successors = {node: set(graph.successors(node)) for node in graph.nodes}
    components = _strongly_connected_components(sorted(graph.nodes), successors)
    component_of: dict[str, int] = {}
    for number, members in enumerate(components):
        for member in members:
            component_of[member] = number
    for source, target, is_negative in graph.edges():
        if is_negative and component_of[source] == component_of[target]:
            raise NotStratifiableError(
                f"recursion through negation between {source} and {target}"
            )
    level = {number: 1 for number in range(len(components))}
    for component in list(range(len(components)))[::-1]:
        for member in components[component]:
            for target in graph.positive.get(member, ()):
                tc = component_of[target]
                if tc != component:
                    level[tc] = max(level[tc], level[component])
            for target in graph.negative.get(member, ()):
                tc = component_of[target]
                level[tc] = max(level[tc], level[component] + 1)
    stratum_of = {node: level[component_of[node]] for node in graph.nodes}
    depth = max(stratum_of.values(), default=1)
    buckets: list[list[ILOGRule]] = [[] for _ in range(depth)]
    for ilog_rule in program:
        buckets[stratum_of[ilog_rule.head_relation] - 1].append(ilog_rule)
    return [bucket for bucket in buckets if bucket]


def _derive(ilog_rule: ILOGRule, valuation) -> Fact:
    """The head fact for one satisfying valuation, invention included."""
    base = ilog_rule.rule.head.apply(valuation)
    if not ilog_rule.invents:
        return base
    skolem = SkolemTerm(skolem_functor_name(base.relation), base.values)
    return Fact(base.relation, (skolem,) + base.values)


def _fixpoint(
    rules: Iterable[ILOGRule],
    index: FactIndex,
    *,
    max_facts: int,
    max_depth: int,
    plan_cache: PlanCache | None = None,
) -> None:
    """Naive fixpoint of one stratum, in place on *index*.

    Negation within a stratum refers only to lower strata (stratification
    guarantees it), whose facts are already frozen inside *index*; the naive
    loop therefore converges — or trips a divergence guard.
    """
    rules = list(rules)
    changed = True
    while changed:
        changed = False
        derived: list[Fact] = []
        for ilog_rule in rules:
            for valuation in match_rule(
                ilog_rule.rule, index, plan_cache=plan_cache
            ):
                fact = _derive(ilog_rule, valuation)
                if any(term_depth(v) > max_depth for v in fact.values):
                    raise DivergenceError(
                        f"Skolem nesting exceeded depth {max_depth} in "
                        f"relation {fact.relation}: output undefined"
                    )
                derived.append(fact)
        for fact in derived:
            if index.add(fact):
                changed = True
                if len(index) > max_facts:
                    raise DivergenceError(
                        f"fixpoint exceeded {max_facts} facts: output undefined"
                    )


def evaluate_ilog(
    program: ILOGProgram,
    instance: Instance,
    *,
    max_facts: int = 100_000,
    max_depth: int = 8,
) -> Instance:
    """The full output P(I) of an ILOG¬ program (all relations).

    Raises :class:`DivergenceError` when the fixpoint would be infinite and
    :class:`NotStratifiableError` for recursion through negation.
    """
    index = FactIndex(instance)
    plan_cache = PlanCache()
    for stratum in stratify_ilog(program):
        _fixpoint(
            stratum,
            index,
            max_facts=max_facts,
            max_depth=max_depth,
            plan_cache=plan_cache,
        )
    return index.to_instance()


def ilog_query_output(
    program: ILOGProgram,
    instance: Instance,
    *,
    max_facts: int = 100_000,
    max_depth: int = 8,
) -> Instance:
    """The designated output relations of P(I), projected per Section 2."""
    result = evaluate_ilog(
        program, instance, max_facts=max_facts, max_depth=max_depth
    )
    return result.restrict(program.output_schema())
