"""ILOG¬ fragments: SP-wILOG, connected and semi-connected wILOG¬ (Sec. 5.2).

Connectivity of an ILOG rule is connectivity of its positive-body variable
graph — the invention symbol plays no role (it never occurs in bodies).  The
semi-connected condition mirrors the Datalog¬ one: some stratification puts
every disconnected rule in the last stratum; equivalently, no relation in
the upward positive closure of the disconnected heads is negated.

Theorem 5.4: semi-connected wILOG¬ computes precisely Mdisjoint.  The
empirical half reproduced here: every semicon-wILOG¬ program's query is
domain-disjoint-monotone (checked by the benchmarks over instance families).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.connectivity import is_connected_rule
from ..datalog.stratification import NotStratifiableError
from .evaluation import stratify_ilog
from .program import ILOGProgram, ILOGRule
from .safety import is_weakly_safe

__all__ = [
    "is_connected_ilog_rule",
    "is_connected_ilog",
    "is_semicon_ilog",
    "ILOGFragmentReport",
    "classify_ilog",
]


def is_connected_ilog_rule(ilog_rule: ILOGRule) -> bool:
    """graph+ connectivity of the underlying rule."""
    return is_connected_rule(ilog_rule.rule)


def is_connected_ilog(program: ILOGProgram) -> bool:
    return all(is_connected_ilog_rule(rule) for rule in program)


def _is_stratifiable(program: ILOGProgram) -> bool:
    try:
        stratify_ilog(program)
    except NotStratifiableError:
        return False
    return True


def _must_be_top(program: ILOGProgram) -> set[str]:
    idb = set(program.idb())
    forced = {
        rule.head_relation for rule in program if not is_connected_ilog_rule(rule)
    }
    changed = True
    while changed:
        changed = False
        for ilog_rule in program:
            head = ilog_rule.head_relation
            if head in forced:
                continue
            if any(
                atom.relation in forced
                for atom in ilog_rule.rule.pos
                if atom.relation in idb
            ):
                forced.add(head)
                changed = True
    return forced


def is_semicon_ilog(program: ILOGProgram) -> bool:
    """Semi-connected wILOG¬ membership (stratification existence test)."""
    if not _is_stratifiable(program):
        return False
    forced = _must_be_top(program)
    return not any(
        atom.relation in forced
        for ilog_rule in program
        for atom in ilog_rule.rule.neg
    )


@dataclass(frozen=True)
class ILOGFragmentReport:
    """Fragment placement of one ILOG¬ program (Figure 2 right-hand side)."""

    weakly_safe: bool
    semi_positive: bool
    connected: bool
    semi_connected: bool
    stratifiable: bool
    uses_invention: bool

    @property
    def fragment(self) -> str:
        """The tightest Figure 2 ILOG fragment, or a diagnostic label."""
        if not self.stratifiable:
            return "not-stratifiable"
        if not self.weakly_safe:
            return "unsafe-ilog"
        if self.semi_positive:
            return "sp-wilog"
        if self.connected:
            return "con-wilog"
        if self.semi_connected:
            return "semicon-wilog"
        return "stratified-wilog"

    @property
    def guaranteed_class(self) -> str | None:
        """The monotonicity class guaranteed by the fragment
        (SP-wILOG = Mdistinct, semicon-wILOG¬ = Mdisjoint per [18] / Thm 5.4)."""
        return {
            "sp-wilog": "Mdistinct",
            "con-wilog": "Mdisjoint",
            "semicon-wilog": "Mdisjoint",
        }.get(self.fragment)


def classify_ilog(program: ILOGProgram) -> ILOGFragmentReport:
    """Full fragment classification of an ILOG¬ program."""
    return ILOGFragmentReport(
        weakly_safe=is_weakly_safe(program),
        semi_positive=program.is_semi_positive(),
        connected=is_connected_ilog(program),
        semi_connected=is_semicon_ilog(program),
        stratifiable=_is_stratifiable(program),
        uses_invention=bool(program.invention_relations),
    )
