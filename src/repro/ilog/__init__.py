"""ILOG¬: stratified Datalog with value invention (Section 5.2)."""

from .terms import INVENTION, SkolemTerm, contains_invented, term_depth
from .program import ILOGProgram, ILOGRule, parse_ilog_program, skolem_functor_name
from .evaluation import (
    DivergenceError,
    evaluate_ilog,
    ilog_precedence_graph,
    ilog_query_output,
    stratify_ilog,
)
from .safety import (
    check_safety_dynamic,
    is_weakly_safe,
    unsafe_output_positions,
    unsafe_positions,
)
from .fragments import (
    ILOGFragmentReport,
    classify_ilog,
    is_connected_ilog,
    is_connected_ilog_rule,
    is_semicon_ilog,
)
from .demos import (
    ILOGQuery,
    diverging_counter,
    semicon_wilog_cotc,
    sp_wilog_tagged_pairs,
    tc_with_witnesses,
    unsafe_leak,
)

__all__ = [
    "INVENTION",
    "SkolemTerm",
    "contains_invented",
    "term_depth",
    "ILOGProgram",
    "ILOGRule",
    "parse_ilog_program",
    "skolem_functor_name",
    "DivergenceError",
    "evaluate_ilog",
    "ilog_precedence_graph",
    "ilog_query_output",
    "stratify_ilog",
    "check_safety_dynamic",
    "is_weakly_safe",
    "unsafe_output_positions",
    "unsafe_positions",
    "ILOGFragmentReport",
    "classify_ilog",
    "is_connected_ilog",
    "is_connected_ilog_rule",
    "is_semicon_ilog",
    "ILOGQuery",
    "diverging_counter",
    "semicon_wilog_cotc",
    "sp_wilog_tagged_pairs",
    "tc_with_witnesses",
    "unsafe_leak",
]
