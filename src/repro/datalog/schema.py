"""Database schemas: finite maps from relation names to arities.

The paper assumes all relations have arity at least one (nullary relations
are excluded; see Section 7 of the paper).  :class:`Schema` enforces that by
default but can be constructed with ``allow_nullary=True`` for the engine's
internal use.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .terms import Fact

__all__ = ["Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised on malformed schemas or schema violations."""


class Schema(Mapping[str, int]):
    """An immutable database schema: relation name -> arity.

    Construct from a mapping or from ``(name, arity)`` pairs::

        Schema({"E": 2, "V": 1})
        Schema([("E", 2)])
    """

    __slots__ = ("_relations",)

    def __init__(
        self,
        relations: Mapping[str, int] | Iterable[tuple[str, int]] = (),
        *,
        allow_nullary: bool = False,
    ) -> None:
        items = dict(relations)
        for name, arity in items.items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"invalid relation name: {name!r}")
            if not isinstance(arity, int) or arity < 0:
                raise SchemaError(f"invalid arity for {name}: {arity!r}")
            if arity == 0 and not allow_nullary:
                raise SchemaError(
                    f"relation {name} is nullary; the paper restricts schemas "
                    "to arity >= 1 (see Section 7)"
                )
        self._relations: dict[str, int] = items

    # Mapping interface -------------------------------------------------

    def __getitem__(self, name: str) -> int:
        return self._relations[name]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    # Schema operations --------------------------------------------------

    def arity(self, name: str) -> int:
        """The arity of relation *name* (raises SchemaError when absent)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"relation {name} is not in the schema") from None

    def contains_fact(self, fact: Fact) -> bool:
        """Paper Sec. 2: a fact is *over* the schema when its relation is in
        the schema with matching arity."""
        return self._relations.get(fact.relation) == fact.arity

    def union(self, other: "Schema") -> "Schema":
        """Union of two schemas; conflicting arities raise SchemaError."""
        merged = dict(self._relations)
        for name, arity in other._relations.items():
            if merged.get(name, arity) != arity:
                raise SchemaError(
                    f"arity conflict for {name}: {merged[name]} vs {arity}"
                )
            merged[name] = arity
        return Schema(merged, allow_nullary=True)

    def restrict(self, names: Iterable[str]) -> "Schema":
        """The sub-schema containing only the given relation names."""
        keep = set(names)
        return Schema(
            {n: a for n, a in self._relations.items() if n in keep},
            allow_nullary=True,
        )

    def without(self, names: Iterable[str]) -> "Schema":
        """The sub-schema dropping the given relation names."""
        drop = set(names)
        return Schema(
            {n: a for n, a in self._relations.items() if n not in drop},
            allow_nullary=True,
        )

    def disjoint_from(self, other: "Schema") -> bool:
        """True when the two schemas share no relation names."""
        return not (set(self._relations) & set(other._relations))

    def __or__(self, other: "Schema") -> "Schema":
        return self.union(other)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}/{arity}" for name, arity in sorted(self._relations.items()))
        return f"Schema({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))
