"""Core term-level objects for the Datalog engine.

The paper (Section 2) assumes an infinite universe ``dom`` of data values and
a disjoint universe ``var`` of variables.  We model data values as arbitrary
hashable Python objects (ints and strings in practice) and variables as
instances of :class:`Variable`.  An :class:`Atom` is a relation name applied
to a tuple of terms; a :class:`Fact` is a relation name applied to a tuple of
data values.

The paper restricts atoms to contain only variables.  The engine is slightly
more liberal and also accepts constants inside rule atoms (a standard Datalog
convenience); the fragment checkers in :mod:`repro.datalog.connectivity` and
the transducer machinery never rely on that extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Variable",
    "Atom",
    "Fact",
    "Inequality",
    "is_variable",
    "variables_of",
    "make_variables",
]


@dataclass(frozen=True, slots=True)
class Variable:
    """A Datalog variable, identified by its name.

    Two variables with the same name are the same variable.  Variable names
    are conventionally lowercase (``x``, ``y``, ``z1``) but any non-empty
    string is accepted.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __repr__(self) -> str:
        return self.name


def is_variable(term: object) -> bool:
    """Return True when *term* is a :class:`Variable` (else it is a constant)."""
    return isinstance(term, Variable)


def make_variables(names: str) -> tuple[Variable, ...]:
    """Convenience constructor: ``make_variables("x y z")`` -> three variables."""
    return tuple(Variable(part) for part in names.split())


@dataclass(frozen=True, slots=True)
class Atom:
    """A relation name applied to a tuple of terms (variables or constants)."""

    relation: str
    terms: tuple[Hashable, ...]

    def __init__(self, relation: str, terms: Iterable[Hashable]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        if not self.relation:
            raise ValueError("relation name must be non-empty")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[Variable]:
        """The set of variables occurring in this atom."""
        return {term for term in self.terms if isinstance(term, Variable)}

    def constants(self) -> set[Hashable]:
        """The set of constants (non-variable terms) occurring in this atom."""
        return {term for term in self.terms if not isinstance(term, Variable)}

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return not any(isinstance(term, Variable) for term in self.terms)

    def apply(self, valuation: Mapping[Variable, Hashable]) -> "Fact":
        """Apply a (total, for this atom) valuation, producing a fact.

        Raises ``KeyError`` when the valuation does not cover all variables
        of the atom — callers are expected to supply total valuations, as in
        the paper's definition of rule satisfaction.
        """
        values = tuple(
            valuation[term] if isinstance(term, Variable) else term
            for term in self.terms
        )
        return Fact(self.relation, values)

    def substitute(self, binding: Mapping[Variable, Hashable]) -> "Atom":
        """Apply a partial substitution, producing another (possibly ground) atom."""
        return Atom(
            self.relation,
            tuple(binding.get(t, t) if isinstance(t, Variable) else t for t in self.terms),
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({inner})"


def variables_of(atoms: Iterable[Atom]) -> set[Variable]:
    """Union of the variables of all *atoms*."""
    result: set[Variable] = set()
    for atom in atoms:
        result |= atom.variables()
    return result


@dataclass(frozen=True, slots=True)
class Fact:
    """A ground fact ``R(d1, ..., dk)`` over data values.

    Facts are immutable and hashable so that instances are plain Python sets
    of facts, matching the paper's set-of-facts definition of an instance.
    """

    relation: str
    values: tuple[Hashable, ...]

    def __init__(self, relation: str, values: Iterable[Hashable]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "values", tuple(values))
        if not relation:
            raise ValueError("relation name must be non-empty")
        for value in self.values:
            if isinstance(value, Variable):
                raise TypeError(
                    "facts must be ground; found a Variable argument"
                )

    @classmethod
    def unchecked(cls, relation: str, values: tuple) -> "Fact":
        """Construct without groundness validation (hot-path constructor).

        Callers must guarantee *relation* is non-empty and *values* is a
        tuple of ground data values — e.g. values drawn from existing facts,
        as in the compiled-plan derivation loop.
        """
        fact = cls.__new__(cls)
        object.__setattr__(fact, "relation", relation)
        object.__setattr__(fact, "values", values)
        return fact

    @property
    def arity(self) -> int:
        return len(self.values)

    def adom(self) -> frozenset[Hashable]:
        """The active domain of this single fact: the set of its values."""
        return frozenset(self.values)

    def rename(self, mapping: Mapping[Hashable, Hashable]) -> "Fact":
        """Apply a (partial) domain mapping to all values of the fact.

        Values absent from *mapping* are left untouched, so the identity on
        the rest of the domain is implicit — convenient for genericity and
        homomorphism tests.
        """
        return Fact(self.relation, tuple(mapping.get(v, v) for v in self.values))

    def as_atom(self) -> Atom:
        """View the fact as a ground atom (useful when seeding rule bodies)."""
        return Atom(self.relation, self.values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(value) for value in self.values)
        return f"{self.relation}({inner})"

    def __lt__(self, other: "Fact") -> bool:
        """A deterministic order for display purposes.

        Falls back to comparing printable representations so heterogeneous
        domains (ints mixed with strings) still sort deterministically.
        """
        if not isinstance(other, Fact):
            return NotImplemented
        return (self.relation, _sort_key(self.values)) < (
            other.relation,
            _sort_key(other.values),
        )


def _sort_key(values: Sequence[Hashable]) -> tuple[tuple[str, str], ...]:
    return tuple((type(v).__name__, repr(v)) for v in values)


@dataclass(frozen=True, slots=True)
class Inequality:
    """An inequality ``u != v`` between two rule variables."""

    left: Variable
    right: Variable

    def __post_init__(self) -> None:
        if not isinstance(self.left, Variable) or not isinstance(self.right, Variable):
            raise TypeError("inequalities relate two variables")

    def variables(self) -> set[Variable]:
        return {self.left, self.right}

    def satisfied_by(self, valuation: Mapping[Variable, Hashable]) -> bool:
        """True when the valuation maps the two sides to distinct values."""
        return valuation[self.left] != valuation[self.right]

    def __repr__(self) -> str:
        return f"{self.left!r} != {self.right!r}"

    def __iter__(self) -> Iterator[Variable]:
        yield self.left
        yield self.right
