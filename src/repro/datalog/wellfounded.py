"""Well-founded semantics via the alternating fixpoint, plus the doubled
program transformation.

Section 7 of the paper remarks that *connected* Datalog under the
well-founded semantics stays within Mdisjoint, "making use of the well-known
'doubled program' approach", which yields a simpler proof that win-move is in
Mdisjoint.  This module supplies both ingredients:

* :func:`evaluate_well_founded` — Van Gelder's alternating fixpoint.  Facts
  are partitioned into *true*, *undefined* and (implicitly) false.
* :func:`doubled_program` — the over/under syntactic transform: each idb
  relation R gets an over-approximation twin ``R__over``; negation in the
  under-rules consults the over twin and vice versa.  Iterating the doubled
  program's two halves reproduces the alternating fixpoint, and when the
  source program is connected both halves are connected — the structural
  fact behind the Section 7 remark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .evaluation import FactIndex, PlanCache, match_rule
from .instance import Instance
from .program import Program
from .rules import Rule
from .terms import Atom, Fact

__all__ = [
    "WellFoundedModel",
    "evaluate_well_founded",
    "doubled_program",
    "OVER_SUFFIX",
]

OVER_SUFFIX = "__over"


@dataclass(frozen=True)
class WellFoundedModel:
    """The three-valued well-founded model of a program on an input.

    ``true`` contains the input facts plus every derived fact that is true;
    ``undefined`` contains the derived facts with undefined truth value.
    Everything else (over the Herbrand base) is false.
    """

    true: Instance
    undefined: Instance

    def total(self) -> bool:
        """True when the model is two-valued (no undefined facts)."""
        return not self.undefined

    def possible(self) -> Instance:
        """The over-approximation: true ∪ undefined."""
        return self.true | self.undefined


def _gamma(
    program: Program,
    base: Instance,
    assumed: FactIndex,
    plan_cache: PlanCache | None = None,
) -> FactIndex:
    """The Gelder operator Γ(S): the least fixpoint of *program* on *base*
    where a negated atom ¬A is considered satisfied iff A ∉ S (= *assumed*).

    Because the negative information is frozen, this is a plain monotone
    fixpoint and a naive loop converges.  Callers iterating Γ pass a shared
    *plan_cache* so join plans survive across the alternating fixpoint.
    """
    index = FactIndex(base)
    changed = True
    while changed:
        changed = False
        derived = [
            rule.derive(valuation)
            for rule in program
            for valuation in match_rule(
                rule, index, negative_index=assumed, plan_cache=plan_cache
            )
        ]
        for fact in derived:
            if index.add(fact):
                changed = True
    return index


def evaluate_well_founded(
    program: Program, instance: Instance, *, max_rounds: int = 10_000
) -> WellFoundedModel:
    """Compute the well-founded model by the alternating fixpoint.

    The sequence ``K_0 = ∅``, ``K_{i+1} = Γ(Γ(K_i))`` increases to the set of
    true facts W; ``Γ(W)`` is the over-approximation (true ∪ undefined).
    """
    plan_cache = PlanCache()
    under = FactIndex(instance)
    for _ in range(max_rounds):
        over = _gamma(program, instance, under, plan_cache)
        new_under = _gamma(program, instance, over, plan_cache)
        if len(new_under) == len(under):
            true_facts = new_under.to_instance()
            possible = _gamma(program, instance, new_under, plan_cache).to_instance()
            return WellFoundedModel(
                true=true_facts, undefined=possible - true_facts
            )
        under = new_under
    raise RuntimeError(
        f"alternating fixpoint did not converge within {max_rounds} rounds"
    )


def _over_atom(atom: Atom, idb: frozenset[str]) -> Atom:
    if atom.relation in idb:
        return Atom(atom.relation + OVER_SUFFIX, atom.terms)
    return atom


def doubled_program(program: Program) -> Program:
    """The doubled (over/under) program of *program*.

    For every rule ``H <- pos, not neg`` two rules are produced:

    * an under-rule ``H <- pos, not neg_over`` — H is derived when the body
      holds with negation checked against the over-approximation;
    * an over-rule ``H_over <- pos_over, not neg`` — the over twin is derived
      when the body holds with positive atoms read from the over twins and
      negation checked against the under-approximation.

    Each produced rule has exactly the variable co-occurrence structure of
    its source rule, so connectivity is preserved rule by rule — the
    observation behind the Section 7 remark that connected Datalog under the
    well-founded semantics remains in Mdisjoint.
    """
    idb = frozenset(program.idb())
    doubled: list[Rule] = []
    for rule in program:
        over_neg = frozenset(_over_atom(a, idb) for a in rule.neg)
        doubled.append(Rule(rule.head, rule.pos, over_neg, rule.ineq))
        over_head = _over_atom(rule.head, idb)
        over_pos = frozenset(_over_atom(a, idb) for a in rule.pos)
        doubled.append(Rule(over_head, over_pos, rule.neg, rule.ineq))
    outputs = set(program.output_relations)
    return Program(doubled, output_relations=outputs)


def evaluate_doubled(
    program: Program, instance: Instance, *, max_rounds: int = 10_000
) -> WellFoundedModel:
    """Evaluate the well-founded model through the doubled program.

    The two halves of :func:`doubled_program` are iterated against each
    other: the under half uses the previous over estimate for its negations
    and vice versa.  The result coincides with
    :func:`evaluate_well_founded`; the tests assert that equivalence.
    """
    idb = frozenset(program.idb())
    plan_cache = PlanCache()
    under = FactIndex(instance)
    over = _gamma(program, instance, under, plan_cache)
    for _ in range(max_rounds):
        new_under = _gamma(program, instance, over, plan_cache)
        new_over = _gamma(program, instance, new_under, plan_cache)
        if len(new_under) == len(under) and len(new_over) == len(over):
            true_facts = new_under.to_instance()
            possible = new_over.to_instance()
            return WellFoundedModel(true=true_facts, undefined=possible - true_facts)
        under, over = new_under, new_over
    raise RuntimeError(
        f"doubled-program iteration did not converge within {max_rounds} rounds"
    )


def winmove_program() -> Program:
    """The win-move program: ``Win(x) <- Move(x, y), not Win(y).``

    Not stratifiable; its meaning is given by the well-founded semantics.
    ``Win`` is the output relation.  A position is *won* when Win is true,
    *lost* when false, *drawn* when undefined.
    """
    from .parser import parse_rules

    rules = parse_rules("Win(x) :- Move(x, y), not Win(y).")
    return Program(rules, output_relations=["Win"])


def winmove_truths(instance: Instance) -> tuple[Instance, Instance, Instance]:
    """Won / drawn / lost positions of the game graph in *instance*.

    *instance* holds ``Move``-facts.  Returns three instances of unary
    ``Win`` / ``Drawn`` / ``Lost`` facts over the game positions.
    """
    program = winmove_program()
    model = evaluate_well_founded(program, instance)
    positions = instance.adom()
    won = {f.values[0] for f in model.true if f.relation == "Win"}
    drawn = {f.values[0] for f in model.undefined if f.relation == "Win"}
    lost = positions - won - drawn
    return (
        Instance(Fact("Win", (p,)) for p in won),
        Instance(Fact("Drawn", (p,)) for p in drawn),
        Instance(Fact("Lost", (p,)) for p in lost),
    )
