"""Database instances: finite sets of facts, with active-domain machinery.

An :class:`Instance` is an immutable wrapper around a ``frozenset`` of
:class:`~repro.datalog.terms.Fact` objects.  It provides the operations the
paper uses throughout:

* ``adom(I)`` — the active domain (all values occurring in facts);
* ``I|_sigma`` — restriction to the facts over a schema;
* ``co(I)`` — the decomposition into *components* (Definition before
  Lemma 5.2): maximal nonempty subsets whose active domains are disjoint
  from the rest of the instance;
* induced subinstances (Definition 2);
* domain-distinct / domain-disjoint tests (Section 3.1).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Mapping

from .schema import Schema
from .terms import Fact

__all__ = ["Instance"]


class Instance:
    """An immutable set of facts.

    Instances support the standard set algebra (``|``, ``&``, ``-``,
    ``<=`` for subset) and iteration, plus the database-specific operations
    described in the module docstring.
    """

    __slots__ = ("_facts", "_adom")

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        if isinstance(facts, Instance):
            self._facts: frozenset[Fact] = facts._facts
        else:
            self._facts = frozenset(facts)
        for fact in self._facts:
            if not isinstance(fact, Fact):
                raise TypeError(f"instances contain Facts, got {fact!r}")
        self._adom: frozenset[Hashable] | None = None

    @classmethod
    def _wrap(cls, facts: frozenset) -> "Instance":
        """Wrap an already-validated fact set without re-checking every
        element (the set-algebra fast path: both operands were validated
        when first constructed)."""
        instance = cls.__new__(cls)
        instance._facts = facts
        instance._adom = None
        return instance

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *facts: Fact) -> "Instance":
        """Variadic constructor: ``Instance.of(f, g, h)``."""
        return cls(facts)

    @classmethod
    def from_tuples(cls, relation: str, tuples: Iterable[tuple]) -> "Instance":
        """Build a single-relation instance from raw value tuples."""
        return cls(Fact(relation, values) for values in tuples)

    @classmethod
    def from_dict(cls, relations: Mapping[str, Iterable[tuple]]) -> "Instance":
        """Build an instance from ``{relation: [tuple, ...]}``."""
        facts: list[Fact] = []
        for relation, tuples in relations.items():
            facts.extend(Fact(relation, values) for values in tuples)
        return cls(facts)

    # ------------------------------------------------------------------
    # Set interface
    # ------------------------------------------------------------------

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __bool__(self) -> bool:
        return bool(self._facts)

    def __or__(self, other: "Instance | Iterable[Fact]") -> "Instance":
        if isinstance(other, Instance):
            return Instance._wrap(self._facts | other._facts)
        return Instance(self._facts | _factset(other))

    def __and__(self, other: "Instance | Iterable[Fact]") -> "Instance":
        # An intersection is a subset of self, hence already validated.
        return Instance._wrap(self._facts & _factset(other))

    def __sub__(self, other: "Instance | Iterable[Fact]") -> "Instance":
        # A difference is a subset of self, hence already validated.
        return Instance._wrap(self._facts - _factset(other))

    def __le__(self, other: "Instance | Iterable[Fact]") -> bool:
        return self._facts <= _factset(other)

    def __lt__(self, other: "Instance | Iterable[Fact]") -> bool:
        return self._facts < _factset(other)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._facts)

    def add(self, *facts: Fact) -> "Instance":
        """Return a new instance with the given facts added."""
        return Instance(self._facts | frozenset(facts))

    # ------------------------------------------------------------------
    # Database operations from the paper
    # ------------------------------------------------------------------

    def adom(self) -> frozenset[Hashable]:
        """The active domain: every value occurring in some fact."""
        if self._adom is None:
            values: set[Hashable] = set()
            for fact in self._facts:
                values.update(fact.values)
            self._adom = frozenset(values)
        return self._adom

    def restrict(self, schema: Schema | Iterable[str]) -> "Instance":
        """``I|_sigma``: the maximal subset of I over the given schema.

        Accepts either a :class:`Schema` (arity-checked) or a bare iterable
        of relation names (name-checked only).
        """
        if isinstance(schema, Schema):
            return Instance._wrap(
                frozenset(f for f in self._facts if schema.contains_fact(f))
            )
        names = set(schema)
        return Instance._wrap(
            frozenset(f for f in self._facts if f.relation in names)
        )

    def relations(self) -> frozenset[str]:
        """The set of relation names with at least one fact."""
        return frozenset(fact.relation for fact in self._facts)

    def tuples(self, relation: str) -> frozenset[tuple]:
        """All value tuples of the given relation."""
        return frozenset(f.values for f in self._facts if f.relation == relation)

    def inferred_schema(self) -> Schema:
        """The minimal schema this instance is over.

        Raises :class:`~repro.datalog.schema.SchemaError` when the same
        relation name occurs with two different arities.
        """
        arities: dict[str, int] = {}
        for fact in sorted(self._facts):
            if arities.setdefault(fact.relation, fact.arity) != fact.arity:
                from .schema import SchemaError

                raise SchemaError(
                    f"relation {fact.relation} used with arities "
                    f"{arities[fact.relation]} and {fact.arity}"
                )
        return Schema(arities, allow_nullary=True)

    def rename(self, mapping: Mapping[Hashable, Hashable]) -> "Instance":
        """Apply a domain mapping to every fact (identity outside *mapping*)."""
        return Instance(fact.rename(mapping) for fact in self._facts)

    def map_values(self, function: Callable[[Hashable], Hashable]) -> "Instance":
        """Apply *function* to every value of every fact."""
        return Instance(
            Fact(f.relation, tuple(function(v) for v in f.values)) for f in self._facts
        )

    def induced_subinstance(self, values: Iterable[Hashable]) -> "Instance":
        """The induced subinstance on *values* (Definition 2):
        all facts whose active domain is contained in *values*."""
        keep = frozenset(values)
        return Instance(f for f in self._facts if f.adom() <= keep)

    def is_induced_subinstance_of(self, other: "Instance") -> bool:
        """Definition 2: J is an induced subinstance of I when
        J = { f in I | adom(f) ⊆ adom(J) }."""
        return self._facts == frozenset(
            f for f in other._facts if f.adom() <= self.adom()
        )

    # ------------------------------------------------------------------
    # Domain-distinctness (Section 3.1)
    # ------------------------------------------------------------------

    def fact_is_domain_distinct(self, fact: Fact) -> bool:
        """True when *fact* contains at least one value outside adom(self)."""
        return bool(fact.adom() - self.adom())

    def fact_is_domain_disjoint(self, fact: Fact) -> bool:
        """True when *fact* shares no value with adom(self).

        Per the Section 7 convention, a nullary fact is *never* domain
        disjoint from any instance (even though its empty active domain
        intersects nothing).
        """
        if fact.arity == 0:
            return False
        return not (fact.adom() & self.adom())

    def is_domain_distinct_from(self, base: "Instance") -> bool:
        """Every fact of self contains a value new w.r.t. *base*."""
        return all(base.fact_is_domain_distinct(f) for f in self._facts)

    def is_domain_disjoint_from(self, base: "Instance") -> bool:
        """Every fact of self is value-disjoint from *base*."""
        return all(base.fact_is_domain_disjoint(f) for f in self._facts)

    # ------------------------------------------------------------------
    # Components (Section 5.1)
    # ------------------------------------------------------------------

    def components(self) -> list["Instance"]:
        """``co(I)``: the partition of I into components.

        A component is a minimal nonempty subset J ⊆ I with
        ``adom(J) ∩ adom(I \\ J) = ∅``.  Equivalently: group facts by the
        connected components of the "shares a value" graph on facts.
        Computed by union-find over values.

        Nullary facts follow the extended Section 7 definition: every
        component includes all nullary facts (an instance of only nullary
        facts is a single component).
        """
        parent: dict[Hashable, Hashable] = {}

        def find(value: Hashable) -> Hashable:
            root = value
            while parent[root] != root:
                root = parent[root]
            while parent[value] != root:
                parent[value], value = root, parent[value]
            return root

        def union(a: Hashable, b: Hashable) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for fact in self._facts:
            values = list(fact.values)
            for value in values:
                parent.setdefault(value, value)
            for other in values[1:]:
                union(values[0], other)

        nullary = {fact for fact in self._facts if not fact.values}
        groups: dict[Hashable, set[Fact]] = {}
        for fact in self._facts:
            if not fact.values:
                continue
            groups.setdefault(find(fact.values[0]), set()).add(fact)
        if not groups:
            return [Instance(nullary)] if nullary else []
        return [Instance(facts | nullary) for facts in groups.values()]

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def sorted_facts(self) -> list[Fact]:
        """The facts in a deterministic display order."""
        return sorted(self._facts)

    def __repr__(self) -> str:
        if not self._facts:
            return "Instance()"
        inner = ", ".join(repr(f) for f in self.sorted_facts())
        return f"Instance({{{inner}}})"


def _factset(value: "Instance | Iterable[Fact]") -> frozenset[Fact]:
    if isinstance(value, Instance):
        return value._facts
    return frozenset(value)
