"""Datalog¬ programs: sets of rules with schema bookkeeping.

A :class:`Program` carries its rules plus the derived schemas the paper uses:
``sch(P)`` (the minimal schema the program is over), ``idb(P)`` (relations in
rule heads) and ``edb(P) = sch(P) \\ idb(P)``.  Programs also record which
idb relations are the *intended output* — by the paper's convention the
relation ``O`` when present, but any set can be designated.

The ``Adom`` convention (Section 2): example programs use a unary idb
relation ``Adom`` holding the active domain of the input.  The paper omits
the rules computing it; :meth:`Program.with_adom_rules` materializes them
(one projection rule per position of each edb relation).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .rules import Rule, RuleValidationError
from .schema import Schema, SchemaError
from .terms import Atom, Variable

__all__ = ["Program", "ADOM_RELATION"]

ADOM_RELATION = "Adom"
DEFAULT_OUTPUT_RELATION = "O"


class Program:
    """An immutable Datalog¬ program.

    Parameters
    ----------
    rules:
        The rules of the program.
    output_relations:
        The idb relations designated as output.  Defaults to ``{"O"}`` when a
        rule defines ``O``, else to all idb relations.
    extra_edb:
        Relation names (with arities) that belong to the edb even when no
        rule mentions them — needed when a program ignores part of its input
        schema.
    """

    __slots__ = ("_rules", "_schema", "_idb", "_output")

    def __init__(
        self,
        rules: Iterable[Rule],
        output_relations: Iterable[str] | None = None,
        extra_edb: Schema | None = None,
    ) -> None:
        self._rules: tuple[Rule, ...] = tuple(rules)
        if not self._rules:
            raise RuleValidationError("a program must contain at least one rule")
        self._schema = self._infer_schema(extra_edb)
        self._idb = frozenset(rule.head.relation for rule in self._rules)
        if output_relations is None:
            if DEFAULT_OUTPUT_RELATION in self._idb:
                output = frozenset({DEFAULT_OUTPUT_RELATION})
            else:
                output = self._idb
        else:
            output = frozenset(output_relations)
            unknown = output - self._idb
            if unknown:
                raise SchemaError(
                    f"output relations {sorted(unknown)} are not defined by any rule"
                )
        self._output = output

    def _infer_schema(self, extra_edb: Schema | None) -> Schema:
        arities: dict[str, int] = dict(extra_edb or {})
        for rule in self._rules:
            for atom in {rule.head} | set(rule.pos) | set(rule.neg):
                known = arities.setdefault(atom.relation, atom.arity)
                if known != atom.arity:
                    raise SchemaError(
                        f"relation {atom.relation} used with arities "
                        f"{known} and {atom.arity}"
                    )
        return Schema(arities, allow_nullary=True)

    # ------------------------------------------------------------------
    # Schema accessors (paper notation)
    # ------------------------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def sch(self) -> Schema:
        """``sch(P)``: the minimal schema the program is over."""
        return self._schema

    def idb(self) -> Schema:
        """``idb(P)``: relations occurring in rule heads."""
        return self._schema.restrict(self._idb)

    def edb(self) -> Schema:
        """``edb(P) = sch(P) \\ idb(P)``."""
        return self._schema.without(self._idb)

    def output_schema(self) -> Schema:
        """The schema of the designated output relations."""
        return self._schema.restrict(self._output)

    @property
    def output_relations(self) -> frozenset[str]:
        return self._output

    def is_idb(self, relation: str) -> bool:
        return relation in self._idb

    def is_edb(self, relation: str) -> bool:
        return relation in self._schema and relation not in self._idb

    # ------------------------------------------------------------------
    # Fragment predicates (Section 2)
    # ------------------------------------------------------------------

    def is_positive(self) -> bool:
        """True for positive Datalog¬: no rule has negated body atoms."""
        return all(rule.is_positive() for rule in self._rules)

    def uses_inequalities(self) -> bool:
        return any(rule.has_inequalities() for rule in self._rules)

    def is_semi_positive(self) -> bool:
        """True for SP-Datalog: every negated atom is over ``edb(P)``."""
        return all(
            atom.relation not in self._idb
            for rule in self._rules
            for atom in rule.neg
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def with_rules(self, extra: Iterable[Rule]) -> "Program":
        """A new program with additional rules (output designation is kept
        when still valid, else recomputed)."""
        rules = self._rules + tuple(extra)
        return Program(rules, output_relations=self._output)

    def with_output(self, output_relations: Iterable[str]) -> "Program":
        return Program(self._rules, output_relations=output_relations)

    def with_adom_rules(self, input_schema: Schema | None = None) -> "Program":
        """Materialize the ``Adom`` convention.

        Adds, for every position of every edb relation (of *input_schema*
        when given, else of ``edb(P)`` minus ``Adom``), the projection rule
        ``Adom(x_i) <- R(x_1, ..., x_k)``.  No-op when the program does not
        mention ``Adom``.
        """
        if ADOM_RELATION not in self._schema:
            return self
        if self._schema.arity(ADOM_RELATION) != 1:
            raise SchemaError("the Adom convention requires Adom to be unary")
        source = input_schema if input_schema is not None else self.edb().without([ADOM_RELATION])
        extra: list[Rule] = []
        for relation in source:
            arity = source.arity(relation)
            variables = [Variable(f"x{i}") for i in range(1, arity + 1)]
            body = Atom(relation, variables)
            for variable in variables:
                extra.append(Rule(Atom(ADOM_RELATION, [variable]), [body]))
        return Program(self._rules + tuple(extra), output_relations=self._output)

    # ------------------------------------------------------------------
    # Iteration / display
    # ------------------------------------------------------------------

    def rules_for(self, relation: str) -> tuple[Rule, ...]:
        """All rules whose head predicate is *relation*."""
        return tuple(rule for rule in self._rules if rule.head.relation == relation)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return (
            frozenset(self._rules) == frozenset(other._rules)
            and self._output == other._output
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._rules), self._output))

    def __repr__(self) -> str:
        lines = "\n".join(repr(rule) for rule in self._rules)
        return f"Program(\n{lines}\n)"
