"""The Datalog¬ substrate: terms, rules, programs, parsing and evaluation.

This package implements Section 2 of the paper (syntax, semi-positive and
stratified semantics), the connectivity fragments of Section 5.1, and the
well-founded semantics used by the Section 7 win-move remark.
"""

from .terms import Atom, Fact, Inequality, Variable, make_variables
from .rules import Rule, RuleValidationError
from .schema import Schema, SchemaError
from .instance import Instance
from .program import Program, ADOM_RELATION
from .parser import ParseError, parse_facts, parse_program, parse_rule, parse_rules
from .evaluation import (
    EvaluationError,
    FactIndex,
    PlanCache,
    RulePlan,
    SemiNaiveEvaluator,
    evaluate_semipositive,
    immediate_consequence,
    match_rule,
)
from .stratification import (
    NotStratifiableError,
    PrecedenceGraph,
    Stratification,
    is_stratifiable,
    precedence_graph,
    stratify,
)
from .stratified import StratifiedEvaluator, evaluate, evaluate_stratified
from .connectivity import (
    ConnectivityReport,
    analyze_connectivity,
    is_con_datalog,
    is_connected_program,
    is_connected_rule,
    is_semicon_datalog,
    rule_variable_graph,
    semicon_violations,
)
from .games import (
    GameSolution,
    distance_to_win,
    optimal_move,
    solve_game,
)
from .containment import (
    canonical_instance,
    cq_contained_in,
    cq_equivalent,
    is_conjunctive_query,
    minimize_cq,
)
from .wellfounded import (
    WellFoundedModel,
    doubled_program,
    evaluate_doubled,
    evaluate_well_founded,
    winmove_program,
    winmove_truths,
)

__all__ = [
    "Atom",
    "Fact",
    "Inequality",
    "Variable",
    "make_variables",
    "Rule",
    "RuleValidationError",
    "Schema",
    "SchemaError",
    "Instance",
    "Program",
    "ADOM_RELATION",
    "ParseError",
    "parse_facts",
    "parse_program",
    "parse_rule",
    "parse_rules",
    "EvaluationError",
    "FactIndex",
    "PlanCache",
    "RulePlan",
    "SemiNaiveEvaluator",
    "evaluate_semipositive",
    "immediate_consequence",
    "match_rule",
    "NotStratifiableError",
    "PrecedenceGraph",
    "Stratification",
    "is_stratifiable",
    "precedence_graph",
    "stratify",
    "StratifiedEvaluator",
    "evaluate",
    "evaluate_stratified",
    "ConnectivityReport",
    "analyze_connectivity",
    "is_con_datalog",
    "is_connected_program",
    "is_connected_rule",
    "is_semicon_datalog",
    "rule_variable_graph",
    "semicon_violations",
    "GameSolution",
    "distance_to_win",
    "optimal_move",
    "solve_game",
    "canonical_instance",
    "cq_contained_in",
    "cq_equivalent",
    "is_conjunctive_query",
    "minimize_cq",
    "WellFoundedModel",
    "doubled_program",
    "evaluate_doubled",
    "evaluate_well_founded",
    "winmove_program",
    "winmove_truths",
]
