"""Syntactic stratification of Datalog¬ programs (Section 2 of the paper).

A program P is syntactically stratifiable when there is a stratum-number
assignment ``rho : idb(P) -> {1..|idb(P)|}`` such that for every rule with
head predicate T:

* ``rho(R) <= rho(T)`` for every idb relation R occurring positively, and
* ``rho(R) <  rho(T)`` for every idb relation R occurring negatively.

Equivalently: the *precedence graph* on idb predicates (positive and negative
edges) has no cycle through a negative edge.  We compute the canonical
minimal stratification by longest-negative-path over the condensation of the
precedence graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .program import Program
from .rules import Rule

__all__ = [
    "PrecedenceGraph",
    "Stratification",
    "NotStratifiableError",
    "precedence_graph",
    "stratify",
    "is_stratifiable",
]


class NotStratifiableError(ValueError):
    """Raised for programs with recursion through negation."""


@dataclass(frozen=True)
class PrecedenceGraph:
    """The predicate dependency graph of a program, restricted to idb nodes.

    ``positive`` and ``negative`` map a body predicate R to the set of head
    predicates T of rules in which R occurs positively / negatively (i.e.
    edges point from the dependency to the dependent head).
    """

    nodes: frozenset[str]
    positive: dict[str, frozenset[str]]
    negative: dict[str, frozenset[str]]

    def successors(self, node: str) -> frozenset[str]:
        return self.positive.get(node, frozenset()) | self.negative.get(
            node, frozenset()
        )

    def edges(self) -> Iterator[tuple[str, str, bool]]:
        """Yield ``(source, target, is_negative)`` triples."""
        for source, targets in self.positive.items():
            for target in targets:
                yield source, target, False
        for source, targets in self.negative.items():
            for target in targets:
                yield source, target, True


def precedence_graph(program: Program) -> PrecedenceGraph:
    """Build the idb-restricted precedence graph of *program*."""
    idb = set(program.idb())
    positive: dict[str, set[str]] = {}
    negative: dict[str, set[str]] = {}
    for rule in program:
        head = rule.head.relation
        for atom in rule.pos:
            if atom.relation in idb:
                positive.setdefault(atom.relation, set()).add(head)
        for atom in rule.neg:
            if atom.relation in idb:
                negative.setdefault(atom.relation, set()).add(head)
    return PrecedenceGraph(
        nodes=frozenset(idb),
        positive={k: frozenset(v) for k, v in positive.items()},
        negative={k: frozenset(v) for k, v in negative.items()},
    )


def _strongly_connected_components(
    nodes: Iterable[str], successors: dict[str, set[str]]
) -> list[list[str]]:
    """Tarjan's algorithm, iterative to avoid recursion limits."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    for start in nodes:
        if start in indices:
            continue
        work: list[tuple[str, Iterator[str]]] = [(start, iter(successors.get(start, ())))]
        indices[start] = lowlink[start] = index_counter
        index_counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in indices:
                    indices[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclass(frozen=True)
class Stratification:
    """A stratification of a program.

    ``stratum_of`` maps each idb predicate to its 1-based stratum number;
    ``strata`` is the induced sequence of semi-positive subprograms
    P1, ..., Pk (rules grouped by head stratum).
    """

    program: Program
    stratum_of: dict[str, int]
    strata: tuple[Program, ...]

    @property
    def depth(self) -> int:
        return len(self.strata)

    def stratum_rules(self, level: int) -> tuple[Rule, ...]:
        """Rules of the 1-based *level* (conveniently re-exposed)."""
        return self.strata[level - 1].rules

    def last_stratum_heads(self) -> frozenset[str]:
        top = self.depth
        return frozenset(
            name for name, level in self.stratum_of.items() if level == top
        )


def stratify(program: Program) -> Stratification:
    """Compute the canonical minimal stratification of *program*.

    Raises :class:`NotStratifiableError` when the precedence graph has a
    cycle through a negative edge.
    """
    graph = precedence_graph(program)
    successors: dict[str, set[str]] = {
        node: set(graph.successors(node)) for node in graph.nodes
    }
    components = _strongly_connected_components(sorted(graph.nodes), successors)
    component_of: dict[str, int] = {}
    for number, members in enumerate(components):
        for member in members:
            component_of[member] = number

    # A negative edge inside one SCC = recursion through negation.
    for source, target, is_negative in graph.edges():
        if is_negative and component_of[source] == component_of[target]:
            raise NotStratifiableError(
                f"recursion through negation between {source} and {target}"
            )

    # Longest path over the condensation, counting negative edges.
    # Tarjan emits SCCs in reverse topological order, so iterate as-is:
    # by the time we process an SCC all its dependencies are done... the
    # opposite actually: successors are finished first.  We therefore
    # compute stratum numbers by propagating *forward* in topological order
    # (reverse of the emission order).
    level: dict[int, int] = {number: 1 for number in range(len(components))}
    order = list(range(len(components)))[::-1]  # topological order
    for component in order:
        for member in components[component]:
            for target in graph.positive.get(member, ()):  # rho(R) <= rho(T)
                tc = component_of[target]
                if tc != component:
                    level[tc] = max(level[tc], level[component])
            for target in graph.negative.get(member, ()):  # rho(R) < rho(T)
                tc = component_of[target]
                level[tc] = max(level[tc], level[component] + 1)

    stratum_of = {
        node: level[component_of[node]] for node in graph.nodes
    }
    depth = max(stratum_of.values(), default=1)

    buckets: list[list[Rule]] = [[] for _ in range(depth)]
    for rule in program:
        buckets[stratum_of[rule.head.relation] - 1].append(rule)
    strata = tuple(
        Program(bucket, output_relations=None) for bucket in buckets if bucket
    )
    # Re-normalize stratum numbers when some level ended up empty (possible
    # when minimal levels skip an integer after condensation).
    if len(strata) != depth:
        occupied = sorted({stratum_of[r.head.relation] for r in program})
        renumber = {old: new + 1 for new, old in enumerate(occupied)}
        stratum_of = {name: renumber[lvl] for name, lvl in stratum_of.items()}
        depth = len(occupied)
    return Stratification(program=program, stratum_of=stratum_of, strata=strata)


def is_stratifiable(program: Program) -> bool:
    """True when *program* admits a syntactic stratification."""
    try:
        stratify(program)
    except NotStratifiableError:
        return False
    return True
