"""A parser for the conventional Datalog¬ rule syntax used in the paper.

Grammar (informal)::

    program  := (rule)*
    rule     := atom ( ":-" | "<-" ) literal ("," literal)* "."
    literal  := atom | ("not" | "¬" | "!") atom | term "!=" term
    atom     := IDENT "(" term ("," term)* ")"
    term     := IDENT            -- a variable (paper convention: lowercase)
              | INTEGER          -- a constant
              | quoted string    -- a constant

Comments start with ``%`` or ``#`` and run to end of line.  ``≠`` and ``<>``
are accepted for ``!=``.  Relation names and variables are both identifiers;
following the paper we treat *every* bare identifier term as a variable and
require constants to be written as integers or quoted strings.

Example::

    parse_program('''
        T(x, y) :- E(x, y).
        T(x, z) :- T(x, y), E(y, z).
        O(x, y) :- Adom(x), Adom(y), not T(x, y).
    ''')
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from .program import Program
from .rules import Rule
from .schema import Schema
from .terms import Atom, Fact, Inequality, Variable

__all__ = ["parse_program", "parse_rule", "parse_rules", "parse_facts", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed Datalog source text."""

    def __init__(self, message: str, position: int | None = None, text: str = "") -> None:
        if position is not None and text:
            line = text.count("\n", 0, position) + 1
            column = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"[%#][^\n]*"),
    ("ARROW", r":-|<-|←"),
    ("NEQ", r"!=|≠|<>"),
    ("NOT", r"not\b|¬|!"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("STAR", r"\*"),
    ("INT", r"-?\d+"),
    ("STRING", r"\"[^\"]*\"|'[^']*'"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int) -> None:
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position, text)
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str, *, allow_invention: bool = False) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0
        self._allow_invention = allow_invention

    # Token-stream primitives -------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(
                f"unexpected end of input (expected {expected})"
                if expected
                else "unexpected end of input",
                len(self._text),
                self._text,
            )
        if expected is not None and token.kind != expected:
            raise ParseError(
                f"expected {expected}, found {token.value!r}", token.position, self._text
            )
        self._index += 1
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)

    # Grammar -------------------------------------------------------------

    def parse_term(self):
        token = self._peek()
        if token is None:
            raise ParseError("expected a term", len(self._text), self._text)
        if token.kind == "IDENT":
            self._next()
            return Variable(token.value)
        if token.kind == "INT":
            self._next()
            return int(token.value)
        if token.kind == "STRING":
            self._next()
            return token.value[1:-1]
        if token.kind == "STAR" and self._allow_invention:
            self._next()
            return INVENTION_MARKER
        raise ParseError(f"expected a term, found {token.value!r}", token.position, self._text)

    def parse_atom(self) -> Atom:
        name = self._next("IDENT").value
        self._next("LPAREN")
        if self._accept("RPAREN"):
            # Nullary atoms (Section 7 of the paper lifts the arity >= 1
            # restriction; see repro.datalog docs for the adapted rules).
            return Atom(name, ())
        terms = [self.parse_term()]
        while self._accept("COMMA"):
            terms.append(self.parse_term())
        self._next("RPAREN")
        return Atom(name, terms)

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        self._next("ARROW")
        pos: list[Atom] = []
        neg: list[Atom] = []
        ineq: list[Inequality] = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("rule is missing its terminating '.'", len(self._text), self._text)
            if token.kind == "NOT":
                self._next()
                neg.append(self.parse_atom())
            elif token.kind == "IDENT" and self._lookahead_is_inequality():
                left = self.parse_term()
                self._next("NEQ")
                right = self.parse_term()
                if not isinstance(left, Variable) or not isinstance(right, Variable):
                    raise ParseError(
                        "inequalities must relate two variables", token.position, self._text
                    )
                ineq.append(Inequality(left, right))
            else:
                pos.append(self.parse_atom())
            if self._accept("COMMA"):
                continue
            self._next("DOT")
            break
        return Rule(head, pos, neg, ineq)

    def _lookahead_is_inequality(self) -> bool:
        after = self._index + 1
        return after < len(self._tokens) and self._tokens[after].kind == "NEQ"

    def parse_fact(self) -> Fact:
        atom = self.parse_atom()
        self._next("DOT")
        if not atom.is_ground():
            raise ParseError(f"fact {atom!r} contains variables")
        return Fact(atom.relation, atom.terms)


#: Sentinel used by the ILOG parser extension for the invention symbol ``*``.
class _InventionMarker:
    __slots__ = ()

    def __repr__(self) -> str:
        return "*"


INVENTION_MARKER = _InventionMarker()


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``parse_rule("T(x,y) :- E(x,y).")``."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"trailing input after rule: {token.value!r}", token.position, text)
    return rule


def parse_rules(text: str) -> list[Rule]:
    """Parse a sequence of rules."""
    parser = _Parser(text)
    rules: list[Rule] = []
    while not parser.at_end():
        rules.append(parser.parse_rule())
    return rules


def parse_program(
    text: str,
    output_relations: Iterable[str] | None = None,
    extra_edb: Schema | None = None,
    *,
    add_adom_rules: bool = True,
) -> Program:
    """Parse a full program.

    By default, when the source mentions the ``Adom`` relation without
    defining it, the projection rules of the Adom convention are added
    automatically (Section 2 of the paper omits them from examples).
    """
    rules = parse_rules(text)
    program = Program(rules, output_relations=output_relations, extra_edb=extra_edb)
    if add_adom_rules and "Adom" in program.edb():
        program = program.with_adom_rules()
    return program


def parse_facts(text: str) -> Iterator[Fact]:
    """Parse a sequence of ground facts: ``E(1, 2). E(2, 3).``"""
    parser = _Parser(text)
    while not parser.at_end():
        yield parser.parse_fact()
