"""Fixpoint evaluation for (semi-)positive Datalog¬ programs.

Implements the semantics of Section 2 of the paper: the immediate consequence
operator ``T_P`` and its minimal fixpoint, computed semi-naively.  Negation
is permitted only over relations whose content is *fixed* during the fixpoint
(the edb for semi-positive programs; lower strata for stratified programs —
see :mod:`repro.datalog.stratified`).

The join machinery (:func:`match_rule`) is shared by the stratified and
well-founded evaluators and by the transducer runtime.  Joins run through
*compiled plans*: a :class:`RulePlan` is built once per ``(rule,
required_atom)`` pair — a static atom order chosen by bound-variable
propagation with selectivity estimates from :meth:`FactIndex.count`, plus
per-atom precomputed lookup/check/bind positions — and executed by an
iterative (non-recursive) join loop.  :class:`PlanCache` holds the compiled
plans; evaluators own one so plan compilation is paid once per program, not
once per fixpoint iteration.  Setting ``REPRO_DISABLE_PLANS=1`` in the
environment (or ``PLANS_ENABLED = False`` on this module) falls back to the
original recursive join, which the property tests use as an oracle.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from ..flags import kernel_enabled, plans_enabled
from .instance import Instance
from .program import Program
from .rules import Rule
from .terms import Atom, Fact, Variable

__all__ = [
    "FactIndex",
    "RulePlan",
    "PlanCache",
    "clear_default_plan_cache",
    "match_rule",
    "immediate_consequence",
    "evaluate_semipositive",
    "SemiNaiveEvaluator",
    "EvaluationError",
]

#: When False, :func:`match_rule` uses the legacy recursive join instead of
#: compiled plans.  Tests and the conformance stacks flip this module
#: attribute directly; the ``REPRO_DISABLE_PLANS`` environment kill switch
#: is consulted at *call time* through :func:`repro.flags.plans_enabled`
#: (which also honors this attribute), so flipping the env mid-process
#: takes effect immediately.
PLANS_ENABLED = True


class EvaluationError(RuntimeError):
    """Raised when a program is handed to an evaluator that cannot run it."""


class FactIndex:
    """A mutable index of facts: relation name -> set of value tuples.

    Provides the membership tests and scans the join engine needs, plus
    *lazy* per-column inverted indexes for bound-value lookups: the column
    for ``(relation, position)`` is materialized on the first
    :meth:`lookup` that probes it, and maintained incrementally by
    :meth:`add` from then on.

    An earlier version eagerly indexed every ``(relation, position,
    value)`` triple on insert, so every fact paid for columns no plan
    ever binds — and the semi-naive *delta* indexes, which are rebuilt
    each iteration and only ever scanned, paid the full indexing cost for
    nothing.  Columns a plan does probe cost the same as before after the
    one-off build.
    """

    __slots__ = ("_tuples", "_columns", "_size")

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._tuples: dict[str, set[tuple]] = {}
        # relation -> {position -> {value -> set of tuples}}; only columns
        # some plan has probed exist here.
        self._columns: dict[str, dict[int, dict[Hashable, set[tuple]]]] = {}
        # Running total of facts across all relation buckets.  ``__len__``
        # is the semi-naive loop condition (``while len(delta)``), so it
        # must not re-sum every bucket on each call.
        self._size = 0
        self.add_all(facts)

    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns True when it was new."""
        bucket = self._tuples.setdefault(fact.relation, set())
        if fact.values in bucket:
            return False
        bucket.add(fact.values)
        self._size += 1
        columns = self._columns.get(fact.relation)
        if columns:
            values = fact.values
            arity = len(values)
            for position, column in columns.items():
                if position < arity:
                    column.setdefault(values[position], set()).add(values)
        return True

    def add_all(self, facts: Iterable[Fact]) -> list[Fact]:
        """Insert many facts; returns the ones that were new."""
        return [fact for fact in facts if self.add(fact)]

    def contains(self, relation: str, values: tuple) -> bool:
        bucket = self._tuples.get(relation)
        return bucket is not None and values in bucket

    def scan(self, relation: str) -> Iterable[tuple]:
        return self._tuples.get(relation, ())

    def lookup(self, relation: str, position: int, value: Hashable) -> Iterable[tuple]:
        """Tuples of *relation* having *value* at *position*.

        Builds the ``(relation, position)`` column on first probe — rows
        too short for the column are skipped, so a lookup past a tuple's
        arity never matches it (same contract as the eager index).
        """
        columns = self._columns.setdefault(relation, {})
        column = columns.get(position)
        if column is None:
            column = {}
            for values in self._tuples.get(relation, ()):
                if position < len(values):
                    column.setdefault(values[position], set()).add(values)
            columns[position] = column
        return column.get(value, ())

    def indexed_columns(self, relation: str) -> tuple[int, ...]:
        """The positions of *relation* with a built column (tests/observability)."""
        return tuple(sorted(self._columns.get(relation, ())))

    def count(self, relation: str) -> int:
        return len(self._tuples.get(relation, ()))

    def relations(self) -> set[str]:
        return {name for name, bucket in self._tuples.items() if bucket}

    def to_instance(self) -> Instance:
        return Instance(
            Fact(relation, values)
            for relation, bucket in self._tuples.items()
            for values in bucket
        )

    def __len__(self) -> int:
        return self._size


def _candidate_tuples(
    index: FactIndex, atom: Atom, binding: Mapping[Variable, Hashable]
) -> Iterable[tuple]:
    """Tuples that could match *atom* given the current partial binding.

    Consults the inverted index on *every* bound position and returns the
    smallest posting list (one ``len`` comparison per bound position) — an
    earlier version returned the first bound position's posting list, which
    can be arbitrarily larger than the best one.
    """
    best: Iterable[tuple] | None = None
    best_len = 0
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term not in binding:
                continue
            value = binding[term]
        else:
            value = term
        postings = index.lookup(atom.relation, position, value)
        size = len(postings)
        if size == 0:
            return ()
        if best is None or size < best_len:
            best, best_len = postings, size
    if best is None:
        return index.scan(atom.relation)
    return best


def _extend_binding(
    atom: Atom, values: tuple, binding: dict[Variable, Hashable]
) -> dict[Variable, Hashable] | None:
    """Unify *atom* with the ground tuple *values* under *binding*.

    Returns the extended binding, or None on mismatch.

    Aliasing contract: when the match binds no *new* variable, the result
    IS *binding* itself — no defensive copy is made, since this runs once
    per candidate tuple in the innermost join loop.  Callers (and the
    consumers of :func:`match_rule`) must treat yielded bindings as frozen:
    read or copy them, never mutate them in place.
    """
    if len(values) != atom.arity:
        return None
    extended = binding
    copied = False
    for term, value in zip(atom.terms, values):
        if isinstance(term, Variable):
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _join(
    atoms: list[Atom], index: FactIndex, binding: dict[Variable, Hashable]
) -> Iterator[dict[Variable, Hashable]]:
    """Enumerate all bindings extending *binding* that match every atom.

    At each step the atom with the most already-bound variables is matched
    next (a greedy bound-first join order).
    """
    if not atoms:
        yield binding
        return

    def boundness(atom: Atom) -> int:
        return sum(
            1
            for term in atom.terms
            if not isinstance(term, Variable) or term in binding
        )

    best = max(range(len(atoms)), key=lambda i: boundness(atoms[i]))
    atom = atoms[best]
    rest = atoms[:best] + atoms[best + 1 :]
    for values in _candidate_tuples(index, atom, binding):
        extended = _extend_binding(atom, values, binding)
        if extended is not None:
            yield from _join(rest, index, extended)


# ----------------------------------------------------------------------
# Compiled join plans
# ----------------------------------------------------------------------


class _AtomStep:
    """One positive atom of a plan, with its checks/binds precomputed.

    Given the set of variables bound *before* this atom in the plan order,
    every position of the atom falls into exactly one class:

    * a constant — candidate tuples must carry that value there;
    * an already-bound variable — candidate tuples must agree with the
      current binding there (also usable for an inverted-index lookup);
    * a repeated new variable — must equal its first occurrence;
    * a first-occurrence new variable — binds it.

    The classification is done once at compile time; :meth:`match` then
    runs straight down precomputed position lists.
    """

    __slots__ = (
        "relation",
        "arity",
        "const_checks",
        "bound_checks",
        "eq_checks",
        "new_vars",
        "prefiltered",
    )

    def __init__(self, atom: Atom, bound: set[Variable]) -> None:
        self.relation = atom.relation
        self.arity = atom.arity
        const_checks: list[tuple[int, Hashable]] = []
        bound_checks: list[tuple[int, Variable]] = []
        eq_checks: list[tuple[int, int]] = []
        new_vars: list[tuple[int, Variable]] = []
        first_seen: dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if not isinstance(term, Variable):
                const_checks.append((position, term))
            elif term in bound:
                bound_checks.append((position, term))
            elif term in first_seen:
                eq_checks.append((position, first_seen[term]))
            else:
                first_seen[term] = position
                new_vars.append((position, term))
        self.const_checks = tuple(const_checks)
        self.bound_checks = tuple(bound_checks)
        self.eq_checks = tuple(eq_checks)
        self.new_vars = tuple(new_vars)
        # With exactly one const/bound position and no repeated variables,
        # every tuple drawn from :meth:`candidates` already passed that one
        # check via its posting list — :meth:`match_filtered` may skip it.
        self.prefiltered = not eq_checks and (
            len(const_checks) + len(bound_checks) == 1
        )

    def candidates(
        self, index: FactIndex, binding: Mapping[Variable, Hashable]
    ) -> Iterable[tuple]:
        """The smallest posting list over the bound positions, else a scan."""
        best: Iterable[tuple] | None = None
        best_len = 0
        for position, value in self.const_checks:
            postings = index.lookup(self.relation, position, value)
            size = len(postings)
            if size == 0:
                return ()
            if best is None or size < best_len:
                best, best_len = postings, size
        for position, variable in self.bound_checks:
            postings = index.lookup(self.relation, position, binding[variable])
            size = len(postings)
            if size == 0:
                return ()
            if best is None or size < best_len:
                best, best_len = postings, size
        if best is None:
            return index.scan(self.relation)
        return best

    def match(
        self, values: tuple, binding: dict[Variable, Hashable]
    ) -> dict[Variable, Hashable] | None:
        """Unify a candidate tuple; returns the extended binding or None.

        Preserves the :func:`_extend_binding` aliasing contract: when the
        atom binds no new variable the result IS *binding* itself.
        """
        if len(values) != self.arity:
            return None
        for position, value in self.const_checks:
            if values[position] != value:
                return None
        for position, variable in self.bound_checks:
            if binding[variable] != values[position]:
                return None
        for position, first in self.eq_checks:
            if values[position] != values[first]:
                return None
        if not self.new_vars:
            return binding
        extended = dict(binding)
        for position, variable in self.new_vars:
            extended[variable] = values[position]
        return extended

    def match_filtered(
        self, values: tuple, binding: dict[Variable, Hashable]
    ) -> dict[Variable, Hashable] | None:
        """:meth:`match` for tuples that came from :meth:`candidates`.

        Such tuples were selected through a posting list on one of the
        const/bound positions; when that is the *only* check the step
        would perform (``prefiltered``), it can be skipped wholesale.
        """
        if not self.prefiltered:
            return self.match(values, binding)
        if len(values) != self.arity:
            return None
        if not self.new_vars:
            return binding
        extended = dict(binding)
        for position, variable in self.new_vars:
            extended[variable] = values[position]
        return extended


class RulePlan:
    """A compiled join plan for one ``(rule, required_atom)`` pair.

    Compilation fixes a *static* atom order by greedy bound-variable
    propagation: starting from the variables of the required atom (the
    semi-naive delta seed), repeatedly pick the remaining atom with the
    most bound terms, breaking ties toward the relation with the smallest
    :meth:`FactIndex.count` in the index the plan was compiled against.
    The legacy engine recomputed this order recursively for every partial
    binding; a plan pays for it once.

    Execution is an iterative (non-recursive) nested-loop join over the
    precomputed :class:`_AtomStep`s, followed by inequality filters and
    negated-atom probes whose value extractors are also precompiled.
    """

    __slots__ = (
        "rule",
        "required_atom",
        "_seed_step",
        "_steps",
        "_ineq",
        "_neg",
        "_head",
    )

    def __init__(
        self,
        rule: Rule,
        required_atom: Atom | None,
        steps: tuple[_AtomStep, ...],
        seed_step: _AtomStep | None,
    ) -> None:
        self.rule = rule
        self.required_atom = required_atom
        self._steps = steps
        self._seed_step = seed_step
        self._head = (
            rule.head.relation,
            tuple(
                (isinstance(term, Variable), term) for term in rule.head.terms
            ),
        )
        self._ineq = tuple(sorted(rule.ineq, key=repr))
        self._neg = tuple(
            (
                atom.relation,
                tuple(
                    (isinstance(term, Variable), term) for term in atom.terms
                ),
            )
            for atom in sorted(rule.neg, key=repr)
        )

    @classmethod
    def compile(
        cls, rule: Rule, required_atom: Atom | None, index: FactIndex
    ) -> "RulePlan":
        """Compile the plan, estimating selectivity from *index*."""
        bound: set[Variable] = set()
        seed_step: _AtomStep | None = None
        if required_atom is not None:
            seed_step = _AtomStep(required_atom, set())
            bound |= required_atom.variables()
            remaining = sorted(
                (atom for atom in rule.pos if atom != required_atom), key=repr
            )
        else:
            remaining = sorted(rule.pos, key=repr)

        steps: list[_AtomStep] = []
        while remaining:
            best_position = 0
            best_key: tuple[int, int] | None = None
            for position, atom in enumerate(remaining):
                boundness = sum(
                    1
                    for term in atom.terms
                    if not isinstance(term, Variable) or term in bound
                )
                key = (boundness, -index.count(atom.relation))
                if best_key is None or key > best_key:
                    best_position, best_key = position, key
            atom = remaining.pop(best_position)
            steps.append(_AtomStep(atom, bound))
            bound |= atom.variables()
        return cls(rule, required_atom, tuple(steps), seed_step)

    def derive(self, valuation: Mapping[Variable, Hashable]) -> Fact:
        """V(head) through the precompiled extractor — equivalent to
        ``rule.derive(valuation)`` without re-classifying head terms or
        re-validating groundness (valuation values come from ground facts).
        """
        relation, extractor = self._head
        return Fact.unchecked(
            relation,
            tuple(
                valuation[term] if is_variable else term
                for is_variable, term in extractor
            ),
        )

    def seed_bindings(
        self, required_index: FactIndex
    ) -> Iterator[dict[Variable, Hashable]]:
        """Seeds for the semi-naive delta: one binding per matching delta
        tuple of the required atom."""
        seed_step = self._seed_step
        assert seed_step is not None
        for values in required_index.scan(seed_step.relation):
            binding = seed_step.match(values, {})
            if binding is not None:
                yield binding

    def join(
        self, index: FactIndex, seed: dict[Variable, Hashable]
    ) -> Iterator[dict[Variable, Hashable]]:
        """All bindings extending *seed* that match every positive atom."""
        steps = self._steps
        depth_count = len(steps)
        if depth_count == 0:
            yield seed
            return
        bindings: list[dict[Variable, Hashable]] = [seed]
        iterators: list[Iterator[tuple]] = [
            iter(steps[0].candidates(index, seed))
        ]
        while iterators:
            depth = len(iterators) - 1
            step = steps[depth]
            binding = bindings[depth]
            extended = None
            for values in iterators[depth]:
                extended = step.match_filtered(values, binding)
                if extended is not None:
                    break
            if extended is None:
                iterators.pop()
                bindings.pop()
                continue
            if depth + 1 == depth_count:
                yield extended
            else:
                bindings.append(extended)
                iterators.append(
                    iter(steps[depth + 1].candidates(index, extended))
                )

    def valuations(
        self,
        positive_index: FactIndex,
        negative_index: FactIndex,
        seed: dict[Variable, Hashable],
    ) -> Iterator[dict[Variable, Hashable]]:
        """Satisfying valuations extending *seed*: join, then inequality
        and negated-atom filters."""
        ineqs = self._ineq
        negs = self._neg
        for valuation in self.join(positive_index, seed):
            satisfied = True
            for ineq in ineqs:
                if valuation[ineq.left] == valuation[ineq.right]:
                    satisfied = False
                    break
            if not satisfied:
                continue
            for relation, extractor in negs:
                values = tuple(
                    valuation[term] if is_variable else term
                    for is_variable, term in extractor
                )
                if negative_index.contains(relation, values):
                    satisfied = False
                    break
            if satisfied:
                yield valuation

    def fire(
        self,
        positive_index: FactIndex,
        negative_index: FactIndex,
        required_index: FactIndex | None = None,
    ) -> list[Fact]:
        """Fused plan execution: seed, iterative join, inequality and
        negation filters, and head derivation in one loop.

        Semantically identical to ``derive() over valuations() over
        seed_bindings()`` but without the per-valuation generator hops and
        method calls — this is the hot path of the semi-naive evaluators.
        Returns derived facts (possibly with duplicates; callers dedupe).
        """
        derived: list[Fact] = []
        append = derived.append
        steps = self._steps
        depth_count = len(steps)
        ineqs = self._ineq
        negs = self._neg
        head_relation, head_extractor = self._head
        unchecked = Fact.unchecked
        neg_contains = negative_index.contains

        seed_step = self._seed_step
        if seed_step is None:
            seeds: Iterable[dict[Variable, Hashable]] = ({},)
        else:
            if required_index is None:
                raise ValueError("plan with a seed step needs required_index")
            seeds = (
                binding
                for values in required_index.scan(seed_step.relation)
                if (binding := seed_step.match(values, {})) is not None
            )

        for seed in seeds:
            if depth_count == 0:
                valuation = seed
                ok = True
                for ineq in ineqs:
                    if valuation[ineq.left] == valuation[ineq.right]:
                        ok = False
                        break
                if ok:
                    for relation, extractor in negs:
                        if neg_contains(
                            relation,
                            tuple(
                                valuation[term] if is_variable else term
                                for is_variable, term in extractor
                            ),
                        ):
                            ok = False
                            break
                if ok:
                    append(
                        unchecked(
                            head_relation,
                            tuple(
                                [
                                    valuation[term] if is_variable else term
                                    for is_variable, term in head_extractor
                                ]
                            ),
                        )
                    )
                continue

            bindings = [seed]
            iterators = [iter(steps[0].candidates(positive_index, seed))]
            last_depth = depth_count - 1
            while iterators:
                depth = len(iterators) - 1
                step = steps[depth]
                binding = bindings[depth]
                extended = None
                for values in iterators[depth]:
                    extended = step.match_filtered(values, binding)
                    if extended is not None:
                        break
                if extended is None:
                    iterators.pop()
                    bindings.pop()
                    continue
                if depth != last_depth:
                    bindings.append(extended)
                    iterators.append(
                        iter(steps[depth + 1].candidates(positive_index, extended))
                    )
                    continue
                valuation = extended
                ok = True
                for ineq in ineqs:
                    if valuation[ineq.left] == valuation[ineq.right]:
                        ok = False
                        break
                if ok:
                    for relation, extractor in negs:
                        if neg_contains(
                            relation,
                            tuple(
                                valuation[term] if is_variable else term
                                for is_variable, term in extractor
                            ),
                        ):
                            ok = False
                            break
                if ok:
                    append(
                        unchecked(
                            head_relation,
                            tuple(
                                [
                                    valuation[term] if is_variable else term
                                    for is_variable, term in head_extractor
                                ]
                            ),
                        )
                    )
        return derived


class PlanCache:
    """Compiled plans, keyed by ``(rule, required_atom)``.

    Evaluators own one cache per program so every fixpoint iteration (and
    every re-evaluation on a new input) reuses the same plans.  A bounded
    FIFO keeps the module-level default cache from growing without limit
    under generated-program workloads; ``compiled`` counts compilations and
    is surfaced as ``plans_compiled`` in the run telemetry.
    """

    __slots__ = ("_plans", "max_plans", "compiled")

    def __init__(self, max_plans: int = 4096) -> None:
        self._plans: dict[tuple[Rule, Atom | None], RulePlan] = {}
        self.max_plans = max_plans
        self.compiled = 0

    def get(
        self, rule: Rule, required_atom: Atom | None, index: FactIndex
    ) -> RulePlan:
        key = (rule, required_atom)
        plan = self._plans.get(key)
        if plan is None:
            plan = RulePlan.compile(rule, required_atom, index)
            self.compiled += 1
            if len(self._plans) >= self.max_plans:
                del self._plans[next(iter(self._plans))]
            self._plans[key] = plan
        return plan

    def clear(self) -> None:
        """Drop every cached plan (the ``compiled`` counter is preserved)."""
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)


#: The shared cache behind bare :func:`match_rule` calls (evaluators pass
#: their own).  Bare calls come from generated-program workloads — the
#: well-founded alternating fixpoint, ad-hoc analysis queries, fuzzing —
#: where rules rarely repeat, so this cache is kept much smaller than the
#: per-evaluator default and the fuzz loop additionally calls
#: :func:`clear_default_plan_cache` between iterations.
_DEFAULT_PLAN_CACHE = PlanCache(max_plans=256)


def clear_default_plan_cache() -> int:
    """Drop the module-level plan cache; returns the number of entries dropped.

    Long-lived processes that churn through many distinct generated
    programs (``repro fuzz`` above all) call this between iterations so
    the shared cache cannot accumulate plans for rules that will never be
    seen again.
    """
    dropped = len(_DEFAULT_PLAN_CACHE)
    _DEFAULT_PLAN_CACHE.clear()
    return dropped


def match_rule(
    rule: Rule,
    positive_index: FactIndex,
    negative_index: FactIndex | None = None,
    *,
    required_atom: Atom | None = None,
    required_index: FactIndex | None = None,
    plan_cache: PlanCache | None = None,
) -> Iterator[dict[Variable, Hashable]]:
    """Enumerate the satisfying valuations of *rule*.

    Positive atoms are matched against *positive_index*; negated atoms are
    checked against *negative_index* (defaults to the positive index, as in
    the single-instance semantics of the paper).  When *required_atom* is
    given, that occurrence is matched against *required_index* instead —
    the hook used for semi-naive delta rules.

    The join runs through a compiled :class:`RulePlan` drawn from
    *plan_cache* (the module-level default when omitted); with
    ``PLANS_ENABLED`` off it falls back to the legacy recursive join.

    Yielded valuations may alias each other and internal join state (see
    the :func:`_extend_binding` aliasing contract): consume them read-only,
    or copy before mutating.
    """
    if negative_index is None:
        negative_index = positive_index
    if required_atom is not None and required_index is None:
        raise ValueError("required_atom needs required_index")

    if not plans_enabled():
        yield from _match_rule_recursive(
            rule,
            positive_index,
            negative_index,
            required_atom=required_atom,
            required_index=required_index,
        )
        return

    cache = plan_cache if plan_cache is not None else _DEFAULT_PLAN_CACHE
    plan = cache.get(rule, required_atom, positive_index)
    seeds: Iterable[dict[Variable, Hashable]]
    if required_atom is not None:
        assert required_index is not None
        seeds = plan.seed_bindings(required_index)
    else:
        seeds = ({},)
    for seed in seeds:
        yield from plan.valuations(positive_index, negative_index, seed)


def _match_rule_recursive(
    rule: Rule,
    positive_index: FactIndex,
    negative_index: FactIndex,
    *,
    required_atom: Atom | None = None,
    required_index: FactIndex | None = None,
) -> Iterator[dict[Variable, Hashable]]:
    """The pre-plan join engine, kept as the oracle for the property tests
    and as the ``REPRO_DISABLE_PLANS`` fallback."""
    atoms = list(rule.pos)
    seeds: Iterable[dict[Variable, Hashable]]
    if required_atom is not None:
        assert required_index is not None
        atoms = [a for a in atoms if a is not required_atom]
        seeds = (
            extended
            for values in required_index.scan(required_atom.relation)
            if (extended := _extend_binding(required_atom, values, {})) is not None
        )
    else:
        seeds = ({},)

    for seed in seeds:
        for valuation in _join(atoms, positive_index, seed):
            if any(
                not ineq.satisfied_by(valuation) for ineq in rule.ineq
            ):
                continue
            if any(
                negative_index.contains(
                    atom.relation, atom.apply(valuation).values
                )
                for atom in rule.neg
            ):
                continue
            yield valuation


def immediate_consequence(program: Program, instance: Instance) -> Instance:
    """One application of the T_P operator: J ∪ {facts derived from J}."""
    index = FactIndex(instance)
    derived: set[Fact] = set(instance)
    for rule in program:
        for valuation in match_rule(rule, index):
            derived.add(rule.derive(valuation))
    return Instance(derived)


class SemiNaiveEvaluator:
    """Semi-naive fixpoint evaluation of a (semi-)positive program.

    Negated atoms are evaluated against the full current database, which is
    sound exactly because semi-positive programs negate only edb relations,
    whose content never changes during the fixpoint.  The class is reused by
    the stratified evaluator with ``frozen_negation`` carrying the facts of
    lower strata.
    """

    def __init__(
        self,
        program: Program,
        *,
        check_semipositive: bool = True,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if check_semipositive and not program.is_semi_positive():
            raise EvaluationError(
                "program negates idb relations; use the stratified evaluator"
            )
        self._program = program
        self._plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self._kernel = None

    @property
    def plan_cache(self) -> PlanCache:
        return self._plan_cache

    @property
    def plans_compiled(self) -> int:
        """Rule specializations compiled by this evaluator: tuple-engine
        plans plus kernel codegen (the kernel compiles per rule occurrence
        up front, so either engine reports > 0 once it has run)."""
        return self._plan_cache.compiled + self.kernel_compiled

    @property
    def kernel_compiled(self) -> int:
        """Kernel rule specializations generated by this evaluator (0 until
        the kernel path has dispatched at least once)."""
        return self._kernel.compiled if self._kernel is not None else 0

    def run(self, instance: Instance, *, max_iterations: int | None = None) -> Instance:
        """Compute the minimal fixpoint of T_P containing *instance*."""
        if plans_enabled() and kernel_enabled():
            # The interned columnar kernel (repro.kernel) — same fixpoint,
            # same iteration counts, byte-identical results (fuzzed
            # differentially as the "kernel" conformance stack).  Riding
            # behind plans_enabled keeps REPRO_DISABLE_PLANS the master
            # switch back to the legacy oracle engine.
            if self._kernel is None:
                from ..kernel.engine import KernelEvaluator

                self._kernel = KernelEvaluator(
                    self._program, check_semipositive=False
                )
            return self._kernel.run(instance, max_iterations=max_iterations)
        index = FactIndex(instance)
        delta = FactIndex(instance)
        # Rules with an empty positive body (ground rules, e.g.
        # ``Init(1) :- not Off().``) have no delta atom to seed the
        # semi-naive join, so the delta loop below would never fire them —
        # diverging from `immediate_consequence`, which derives them.
        # Their bodies read only fixed (edb) relations, so firing them
        # exactly once up front is complete.
        for rule in self._program:
            if rule.pos:
                continue
            if plans_enabled():
                plan = self._plan_cache.get(rule, None, index)
                for fact in plan.fire(index, index):
                    if index.add(fact):
                        delta.add(fact)
            else:
                for valuation in match_rule(
                    rule, index, plan_cache=self._plan_cache
                ):
                    fact = rule.derive(valuation)
                    if index.add(fact):
                        delta.add(fact)
        iterations = 0
        while len(delta):
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise EvaluationError(
                    f"fixpoint did not converge within {max_iterations} iterations"
                )
            fresh: set[Fact] = set()
            for rule in self._program:
                fresh.update(self._fire_rule(rule, index, delta))
            new_facts = [fact for fact in fresh if not index.contains(fact.relation, fact.values)]
            delta = FactIndex()
            for fact in new_facts:
                index.add(fact)
                delta.add(fact)
        return index.to_instance()

    def _fire_rule(self, rule: Rule, index: FactIndex, delta: FactIndex) -> set[Fact]:
        """All facts derivable by *rule* with at least one body atom in delta."""
        produced: set[Fact] = set()
        delta_relations = delta.relations()
        seen_relations: set[str] = set()
        for atom in rule.pos:
            if atom.relation not in delta_relations:
                continue
            # Fire once per distinct delta relation occurrence; duplicates
            # across identical atoms are harmless but wasteful.
            key = atom.relation + "/" + repr(atom.terms)
            if key in seen_relations:
                continue
            seen_relations.add(key)
            if plans_enabled():
                plan = self._plan_cache.get(rule, atom, index)
                produced.update(plan.fire(index, index, delta))
            else:
                for valuation in match_rule(
                    rule,
                    index,
                    required_atom=atom,
                    required_index=delta,
                    plan_cache=self._plan_cache,
                ):
                    produced.add(rule.derive(valuation))
        return produced


def evaluate_semipositive(
    program: Program, instance: Instance, *, max_iterations: int | None = None
) -> Instance:
    """Evaluate a semi-positive program on *instance* (Section 2 semantics).

    The result contains the input facts plus all derived idb facts, mirroring
    the paper's ``P(I)`` which includes I itself.
    """
    return SemiNaiveEvaluator(program).run(instance, max_iterations=max_iterations)
