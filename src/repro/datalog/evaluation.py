"""Fixpoint evaluation for (semi-)positive Datalog¬ programs.

Implements the semantics of Section 2 of the paper: the immediate consequence
operator ``T_P`` and its minimal fixpoint, computed semi-naively.  Negation
is permitted only over relations whose content is *fixed* during the fixpoint
(the edb for semi-positive programs; lower strata for stratified programs —
see :mod:`repro.datalog.stratified`).

The join machinery (:func:`match_rule`) is shared by the stratified and
well-founded evaluators and by the transducer runtime.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from .instance import Instance
from .program import Program
from .rules import Rule
from .terms import Atom, Fact, Variable

__all__ = [
    "FactIndex",
    "match_rule",
    "immediate_consequence",
    "evaluate_semipositive",
    "SemiNaiveEvaluator",
    "EvaluationError",
]


class EvaluationError(RuntimeError):
    """Raised when a program is handed to an evaluator that cannot run it."""


class FactIndex:
    """A mutable index of facts: relation name -> set of value tuples.

    Provides the membership tests and scans the join engine needs, and an
    inverted index from (relation, position, value) to tuples for bound-value
    lookups.
    """

    __slots__ = ("_tuples", "_by_value")

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._tuples: dict[str, set[tuple]] = {}
        self._by_value: dict[tuple[str, int, Hashable], set[tuple]] = {}
        self.add_all(facts)

    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns True when it was new."""
        bucket = self._tuples.setdefault(fact.relation, set())
        if fact.values in bucket:
            return False
        bucket.add(fact.values)
        for position, value in enumerate(fact.values):
            self._by_value.setdefault((fact.relation, position, value), set()).add(
                fact.values
            )
        return True

    def add_all(self, facts: Iterable[Fact]) -> list[Fact]:
        """Insert many facts; returns the ones that were new."""
        return [fact for fact in facts if self.add(fact)]

    def contains(self, relation: str, values: tuple) -> bool:
        bucket = self._tuples.get(relation)
        return bucket is not None and values in bucket

    def scan(self, relation: str) -> Iterable[tuple]:
        return self._tuples.get(relation, ())

    def lookup(self, relation: str, position: int, value: Hashable) -> Iterable[tuple]:
        """Tuples of *relation* having *value* at *position*."""
        return self._by_value.get((relation, position, value), ())

    def count(self, relation: str) -> int:
        return len(self._tuples.get(relation, ()))

    def relations(self) -> set[str]:
        return {name for name, bucket in self._tuples.items() if bucket}

    def to_instance(self) -> Instance:
        return Instance(
            Fact(relation, values)
            for relation, bucket in self._tuples.items()
            for values in bucket
        )

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._tuples.values())


def _candidate_tuples(
    index: FactIndex, atom: Atom, binding: Mapping[Variable, Hashable]
) -> Iterable[tuple]:
    """Tuples that could match *atom* given the current partial binding,
    using the inverted index on the first bound position when possible."""
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in binding:
                return index.lookup(atom.relation, position, binding[term])
        else:
            return index.lookup(atom.relation, position, term)
    return index.scan(atom.relation)


def _extend_binding(
    atom: Atom, values: tuple, binding: dict[Variable, Hashable]
) -> dict[Variable, Hashable] | None:
    """Unify *atom* with the ground tuple *values* under *binding*.

    Returns the extended binding, or None on mismatch.

    Aliasing contract: when the match binds no *new* variable, the result
    IS *binding* itself — no defensive copy is made, since this runs once
    per candidate tuple in the innermost join loop.  Callers (and the
    consumers of :func:`match_rule`) must treat yielded bindings as frozen:
    read or copy them, never mutate them in place.
    """
    if len(values) != atom.arity:
        return None
    extended = binding
    copied = False
    for term, value in zip(atom.terms, values):
        if isinstance(term, Variable):
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                if not copied:
                    extended = dict(extended)
                    copied = True
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _join(
    atoms: list[Atom], index: FactIndex, binding: dict[Variable, Hashable]
) -> Iterator[dict[Variable, Hashable]]:
    """Enumerate all bindings extending *binding* that match every atom.

    At each step the atom with the most already-bound variables is matched
    next (a greedy bound-first join order).
    """
    if not atoms:
        yield binding
        return

    def boundness(atom: Atom) -> int:
        return sum(
            1
            for term in atom.terms
            if not isinstance(term, Variable) or term in binding
        )

    best = max(range(len(atoms)), key=lambda i: boundness(atoms[i]))
    atom = atoms[best]
    rest = atoms[:best] + atoms[best + 1 :]
    for values in _candidate_tuples(index, atom, binding):
        extended = _extend_binding(atom, values, binding)
        if extended is not None:
            yield from _join(rest, index, extended)


def match_rule(
    rule: Rule,
    positive_index: FactIndex,
    negative_index: FactIndex | None = None,
    *,
    required_atom: Atom | None = None,
    required_index: FactIndex | None = None,
) -> Iterator[dict[Variable, Hashable]]:
    """Enumerate the satisfying valuations of *rule*.

    Positive atoms are matched against *positive_index*; negated atoms are
    checked against *negative_index* (defaults to the positive index, as in
    the single-instance semantics of the paper).  When *required_atom* is
    given, that occurrence is matched against *required_index* instead —
    the hook used for semi-naive delta rules.

    Yielded valuations may alias each other and internal join state (see
    the :func:`_extend_binding` aliasing contract): consume them read-only,
    or copy before mutating.
    """
    if negative_index is None:
        negative_index = positive_index

    atoms = list(rule.pos)
    seeds: Iterable[dict[Variable, Hashable]]
    if required_atom is not None:
        if required_index is None:
            raise ValueError("required_atom needs required_index")
        atoms = [a for a in atoms if a is not required_atom]
        seeds = (
            extended
            for values in required_index.scan(required_atom.relation)
            if (extended := _extend_binding(required_atom, values, {})) is not None
        )
    else:
        seeds = ({},)

    for seed in seeds:
        for valuation in _join(atoms, positive_index, seed):
            if any(
                not ineq.satisfied_by(valuation) for ineq in rule.ineq
            ):
                continue
            if any(
                negative_index.contains(
                    atom.relation, atom.apply(valuation).values
                )
                for atom in rule.neg
            ):
                continue
            yield valuation


def immediate_consequence(program: Program, instance: Instance) -> Instance:
    """One application of the T_P operator: J ∪ {facts derived from J}."""
    index = FactIndex(instance)
    derived: set[Fact] = set(instance)
    for rule in program:
        for valuation in match_rule(rule, index):
            derived.add(rule.derive(valuation))
    return Instance(derived)


class SemiNaiveEvaluator:
    """Semi-naive fixpoint evaluation of a (semi-)positive program.

    Negated atoms are evaluated against the full current database, which is
    sound exactly because semi-positive programs negate only edb relations,
    whose content never changes during the fixpoint.  The class is reused by
    the stratified evaluator with ``frozen_negation`` carrying the facts of
    lower strata.
    """

    def __init__(self, program: Program, *, check_semipositive: bool = True) -> None:
        if check_semipositive and not program.is_semi_positive():
            raise EvaluationError(
                "program negates idb relations; use the stratified evaluator"
            )
        self._program = program

    def run(self, instance: Instance, *, max_iterations: int | None = None) -> Instance:
        """Compute the minimal fixpoint of T_P containing *instance*."""
        index = FactIndex(instance)
        delta = FactIndex(instance)
        # Rules with an empty positive body (ground rules, e.g.
        # ``Init(1) :- not Off().``) have no delta atom to seed the
        # semi-naive join, so the delta loop below would never fire them —
        # diverging from `immediate_consequence`, which derives them.
        # Their bodies read only fixed (edb) relations, so firing them
        # exactly once up front is complete.
        for rule in self._program:
            if rule.pos:
                continue
            for valuation in match_rule(rule, index):
                fact = rule.derive(valuation)
                if index.add(fact):
                    delta.add(fact)
        iterations = 0
        while len(delta):
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise EvaluationError(
                    f"fixpoint did not converge within {max_iterations} iterations"
                )
            fresh: set[Fact] = set()
            for rule in self._program:
                fresh.update(self._fire_rule(rule, index, delta))
            new_facts = [fact for fact in fresh if not index.contains(fact.relation, fact.values)]
            delta = FactIndex()
            for fact in new_facts:
                index.add(fact)
                delta.add(fact)
        return index.to_instance()

    def _fire_rule(self, rule: Rule, index: FactIndex, delta: FactIndex) -> set[Fact]:
        """All facts derivable by *rule* with at least one body atom in delta."""
        produced: set[Fact] = set()
        delta_relations = delta.relations()
        seen_relations: set[str] = set()
        for atom in rule.pos:
            if atom.relation not in delta_relations:
                continue
            # Fire once per distinct delta relation occurrence; duplicates
            # across identical atoms are harmless but wasteful.
            key = atom.relation + "/" + repr(atom.terms)
            if key in seen_relations:
                continue
            seen_relations.add(key)
            for valuation in match_rule(
                rule, index, required_atom=atom, required_index=delta
            ):
                produced.add(rule.derive(valuation))
        return produced


def evaluate_semipositive(
    program: Program, instance: Instance, *, max_iterations: int | None = None
) -> Instance:
    """Evaluate a semi-positive program on *instance* (Section 2 semantics).

    The result contains the input facts plus all derived idb facts, mirroring
    the paper's ``P(I)`` which includes I itself.
    """
    return SemiNaiveEvaluator(program).run(instance, max_iterations=max_iterations)
