"""Datalog¬ rules, faithful to the paper's quadruple definition.

Section 2 of the paper defines a Datalog¬ rule as a quadruple
``(head, pos, neg, ineq)`` where ``head`` is an atom, ``pos`` and ``neg`` are
sets of atoms, ``ineq`` is a set of inequalities between variables, and every
variable of the rule occurs in ``pos`` (range restriction / safety).  ``pos``
must be non-empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from .terms import Atom, Inequality, Variable, variables_of

__all__ = ["Rule", "RuleValidationError"]


class RuleValidationError(ValueError):
    """Raised when a rule violates the well-formedness conditions of Sec. 2."""


@dataclass(frozen=True)
class Rule:
    """A Datalog¬ rule ``head <- pos, not neg, ineq``.

    The components mirror the paper exactly:

    * ``head`` — a single atom;
    * ``pos`` — the positive body atoms;
    * ``neg`` — the negated body atoms (plain atoms; negation is implicit);
    * ``ineq`` — inequalities ``u != v`` between variables of the rule.

    Safety is enforced at construction: every variable of the rule (head,
    negative atoms, inequalities) must appear in some positive body atom.
    The paper states rules with a non-empty ``pos``; we additionally admit
    *ground* rules with an empty positive body (no variables anywhere, e.g.
    ``Init(1) :- not Off().``) — T_P is well-defined on them and both
    evaluators derive them identically.  Non-ground empty-``pos`` rules
    remain unsafe and are rejected.
    """

    head: Atom
    pos: frozenset[Atom]
    neg: frozenset[Atom] = field(default_factory=frozenset)
    ineq: frozenset[Inequality] = field(default_factory=frozenset)

    def __init__(
        self,
        head: Atom,
        pos: Iterable[Atom],
        neg: Iterable[Atom] = (),
        ineq: Iterable[Inequality] = (),
    ) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "pos", frozenset(pos))
        object.__setattr__(self, "neg", frozenset(neg))
        object.__setattr__(self, "ineq", frozenset(ineq))
        self._validate()

    def _validate(self) -> None:
        if not isinstance(self.head, Atom):
            raise RuleValidationError("rule head must be an Atom")
        bound = variables_of(self.pos)
        loose = (self.head.variables() | variables_of(self.neg)) - bound
        for inequality in self.ineq:
            loose |= inequality.variables() - bound
        if loose:
            names = ", ".join(sorted(v.name for v in loose))
            raise RuleValidationError(
                f"unsafe rule for {self.head.relation}: variable(s) {names} "
                "do not occur in any positive body atom"
            )

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    @property
    def body_atoms(self) -> frozenset[Atom]:
        """All body atoms, positive and negative (paper: pos ∪ neg)."""
        return self.pos | self.neg

    def variables(self) -> set[Variable]:
        """All variables of the rule (they all occur in ``pos`` by safety)."""
        return variables_of(self.pos)

    def predicates(self) -> set[str]:
        """Every relation name mentioned by the rule, head included."""
        return {self.head.relation} | {atom.relation for atom in self.body_atoms}

    def body_predicates(self) -> set[str]:
        return {atom.relation for atom in self.body_atoms}

    def is_positive(self) -> bool:
        """True when the rule has no negated body atoms (paper: neg = ∅)."""
        return not self.neg

    def has_inequalities(self) -> bool:
        return bool(self.ineq)

    # ------------------------------------------------------------------
    # Semantics helpers
    # ------------------------------------------------------------------

    def satisfied(
        self,
        valuation: Mapping[Variable, Hashable],
        instance: "frozenset | set",
    ) -> bool:
        """Paper Sec. 2: valuation V is satisfying for this rule on *instance*
        when V(pos) ⊆ I, V(neg) ∩ I = ∅ and all inequalities hold."""
        if any(atom.apply(valuation) not in instance for atom in self.pos):
            return False
        if any(atom.apply(valuation) in instance for atom in self.neg):
            return False
        return all(ineq.satisfied_by(valuation) for ineq in self.ineq)

    def derive(self, valuation: Mapping[Variable, Hashable]):
        """The fact derived by this rule under *valuation* (V(head))."""
        return self.head.apply(valuation)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        parts = [repr(atom) for atom in sorted(self.pos, key=repr)]
        parts += [f"not {atom!r}" for atom in sorted(self.neg, key=repr)]
        parts += [repr(ineq) for ineq in sorted(self.ineq, key=repr)]
        return f"{self.head!r} :- {', '.join(parts)}."
