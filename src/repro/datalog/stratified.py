"""Stratified semantics for Datalog¬ (Section 2 of the paper).

Given a syntactic stratification P1, ..., Pk of a program P, the output of P
on input I is ``Pk(P(k-1)(... P1(I) ...))``: each stratum is evaluated as a
semi-positive program over the result of the strata below it.  The paper
notes that the output does not depend on the chosen stratification; the tests
exercise this by comparing against brute-force alternatives.
"""

from __future__ import annotations

from .evaluation import PlanCache, SemiNaiveEvaluator
from .instance import Instance
from .program import Program
from .stratification import Stratification, stratify

__all__ = ["evaluate_stratified", "StratifiedEvaluator", "evaluate"]


class StratifiedEvaluator:
    """Evaluator for stratified Datalog¬ programs.

    The stratification is computed once at construction, so a single
    evaluator can be reused across many inputs (as the transducer runtime
    and the benchmarks do).  All strata share one :class:`PlanCache`, so
    join plans are compiled once per rule for the evaluator's lifetime.
    """

    def __init__(self, program: Program, stratification: Stratification | None = None) -> None:
        self._program = program
        self._stratification = stratification or stratify(program)
        self._plan_cache = PlanCache()
        self._stages = tuple(
            SemiNaiveEvaluator(
                stage, check_semipositive=False, plan_cache=self._plan_cache
            )
            for stage in self._stratification.strata
        )

    @property
    def stratification(self) -> Stratification:
        return self._stratification

    @property
    def plans_compiled(self) -> int:
        """Rule specializations compiled by this evaluator: shared-cache
        tuple plans (counted once — the cache is shared across strata)
        plus any per-stage kernel codegen."""
        kernel_compiled = sum(stage.kernel_compiled for stage in self._stages)
        return self._plan_cache.compiled + kernel_compiled

    def run(self, instance: Instance, *, max_iterations: int | None = None) -> Instance:
        """The full fixpoint P(I) (input facts included, per the paper)."""
        current = instance
        for stage in self._stages:
            current = stage.run(current, max_iterations=max_iterations)
        return current

    def output(self, instance: Instance) -> Instance:
        """Only the designated output relations: ``P(I)|_{sigma_out}``."""
        return self.run(instance).restrict(self._program.output_schema())


def evaluate_stratified(program: Program, instance: Instance) -> Instance:
    """One-shot stratified evaluation of *program* on *instance*."""
    return StratifiedEvaluator(program).run(instance)


def evaluate(program: Program, instance: Instance) -> Instance:
    """Evaluate *program* under the appropriate semantics and project to its
    output relations.

    This is the "compute the query expressed by P" operation of Section 2:
    ``Q(I) = P(I)|_{sigma'}`` for the designated output schema.
    """
    return StratifiedEvaluator(program).output(instance)
