"""Conjunctive queries and containment via the homomorphism theorem.

Single positive nonrecursive Datalog rules are conjunctive queries (CQs).
The Chandra–Merlin homomorphism theorem decides containment: Q1 ⊆ Q2 iff
there is a homomorphism from Q2's canonical (frozen) instance to Q1's that
maps Q2's head to Q1's head.  CQs are preserved under homomorphisms — the
class H of Definition 2 — which is how this module ties into the paper's
Section 3.2: the strictly monotone end of Figure 1's hierarchy is populated
by exactly these queries (and their unions / recursive closure, Datalog).

Provided:

* :func:`canonical_instance` — freeze a CQ's body into an instance;
* :func:`cq_contained_in` — containment of one CQ in another;
* :func:`cq_equivalent` — mutual containment;
* :func:`minimize_cq` — the core of a CQ (removing redundant body atoms).
"""

from __future__ import annotations

from typing import Hashable

from .instance import Instance
from .rules import Rule
from .terms import Fact, Variable

__all__ = [
    "FrozenCQ",
    "is_conjunctive_query",
    "canonical_instance",
    "cq_contained_in",
    "cq_equivalent",
    "minimize_cq",
]


class _FrozenVariable:
    """A frozen variable: a fresh constant standing for a CQ variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"~{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _FrozenVariable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("frozen", self.name))


class FrozenCQ:
    """The canonical instance of a CQ plus its frozen head tuple."""

    def __init__(self, instance: Instance, head: Fact) -> None:
        self.instance = instance
        self.head = head


def is_conjunctive_query(rule: Rule) -> bool:
    """True when *rule* is a plain CQ: positive, no inequalities."""
    return rule.is_positive() and not rule.has_inequalities()


def _freeze(term: Hashable) -> Hashable:
    if isinstance(term, Variable):
        return _FrozenVariable(term.name)
    return term


def canonical_instance(rule: Rule) -> FrozenCQ:
    """Freeze the body of a CQ into its canonical instance.

    Variables become fresh frozen constants; real constants stay themselves
    (so containment respects constants, per the standard extension of the
    homomorphism theorem).
    """
    if not is_conjunctive_query(rule):
        raise ValueError("containment machinery handles plain CQs only")
    body = Instance(
        Fact(atom.relation, tuple(_freeze(t) for t in atom.terms))
        for atom in rule.pos
    )
    head = Fact(rule.head.relation, tuple(_freeze(t) for t in rule.head.terms))
    return FrozenCQ(instance=body, head=head)


def cq_contained_in(first: Rule, second: Rule) -> bool:
    """Chandra–Merlin: Q1 ⊆ Q2 iff a homomorphism maps frozen(Q2) into
    frozen(Q1) sending Q2's head tuple to Q1's head tuple."""
    if first.head.relation != second.head.relation:
        return False
    if first.head.arity != second.head.arity:
        return False
    target = canonical_instance(first)
    source = canonical_instance(second)
    return _head_preserving_homomorphism_exists(source, target)


def _head_preserving_homomorphism_exists(source: FrozenCQ, target: FrozenCQ) -> bool:
    from ..monotonicity.preservation import homomorphisms

    required = {}
    for from_value, to_value in zip(source.head.values, target.head.values):
        if isinstance(from_value, _FrozenVariable):
            if required.setdefault(from_value, to_value) != to_value:
                return False  # one head variable forced to two images
        elif from_value != to_value:
            return False
    for mapping in homomorphisms(source.instance, target.instance):
        # Constants of the source must stay fixed (homomorphisms() ranges
        # over adom(target), so an absent constant can never satisfy this).
        if any(
            not isinstance(value, _FrozenVariable) and mapping[value] != value
            for value in source.instance.adom()
        ):
            continue
        # Head variables occur in the body by safety, hence in the mapping.
        if all(mapping[var] == image for var, image in required.items()):
            return True
    return False


def cq_equivalent(first: Rule, second: Rule) -> bool:
    """Mutual containment."""
    return cq_contained_in(first, second) and cq_contained_in(second, first)


def minimize_cq(rule: Rule) -> Rule:
    """The core of a CQ: greedily drop body atoms while preserving
    equivalence.  The result is a minimal equivalent CQ (unique up to
    isomorphism by the classical core theorem)."""
    if not is_conjunctive_query(rule):
        raise ValueError("containment machinery handles plain CQs only")
    atoms = list(rule.pos)
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        for index in range(len(atoms)):
            candidate_atoms = atoms[:index] + atoms[index + 1 :]
            try:
                candidate = Rule(rule.head, candidate_atoms)
            except Exception:
                continue  # dropping the atom breaks safety
            if cq_equivalent(candidate, rule):
                atoms = candidate_atoms
                changed = True
                break
    return Rule(rule.head, atoms)
