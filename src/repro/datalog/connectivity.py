"""Rule connectivity and the (semi-)connected Datalog¬ fragments (Sec. 5.1).

For a rule phi, ``graph+(phi)`` is the graph whose nodes are the variables of
the *positive* body atoms, with an edge between two variables when they occur
together in a positive body atom.  A rule is *connected* when graph+ is
connected.

* **con-Datalog¬** — stratifiable programs admitting a stratification in
  which every stratum is a connected SP-Datalog program.  Since
  connectivity is a per-rule property, this holds iff the program is
  stratifiable and every rule is connected.
* **semicon-Datalog¬** — stratifiable programs admitting a stratification in
  which every stratum *except possibly the last* is connected.  This holds
  iff the program is stratifiable and the disconnected rules can all be
  pushed into a single top stratum: no relation that (transitively,
  positively) depends on the head of a disconnected rule may occur negated
  anywhere in the program.
"""

from __future__ import annotations

from dataclasses import dataclass

from .program import Program
from .rules import Rule
from .stratification import is_stratifiable
from .terms import Variable

__all__ = [
    "rule_variable_graph",
    "is_connected_rule",
    "is_connected_program",
    "is_con_datalog",
    "is_semicon_datalog",
    "semicon_violations",
    "ConnectivityReport",
    "analyze_connectivity",
]


def rule_variable_graph(rule: Rule) -> dict[Variable, set[Variable]]:
    """``graph+(rule)``: adjacency over the variables of positive body atoms."""
    adjacency: dict[Variable, set[Variable]] = {}
    for atom in rule.pos:
        variables = sorted(atom.variables(), key=lambda v: v.name)
        for variable in variables:
            adjacency.setdefault(variable, set())
        for i, left in enumerate(variables):
            for right in variables[i + 1 :]:
                adjacency[left].add(right)
                adjacency[right].add(left)
    return adjacency


def is_connected_rule(rule: Rule) -> bool:
    """True when graph+(rule) is connected (vacuously true without variables)."""
    adjacency = rule_variable_graph(rule)
    if len(adjacency) <= 1:
        return True
    start = next(iter(adjacency))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(adjacency)


def is_connected_program(program: Program) -> bool:
    """True when every rule of *program* is connected."""
    return all(is_connected_rule(rule) for rule in program)


def is_con_datalog(program: Program) -> bool:
    """Membership in con-Datalog¬ (stratifiable + all rules connected)."""
    return is_connected_program(program) and is_stratifiable(program)


def _must_be_top(program: Program) -> set[str]:
    """The upward positive closure of the heads of disconnected rules.

    These are the idb relations forced into the last stratum once every
    disconnected rule is placed there.
    """
    idb = set(program.idb())
    forced = {
        rule.head.relation for rule in program if not is_connected_rule(rule)
    }
    changed = True
    while changed:
        changed = False
        for rule in program:
            head = rule.head.relation
            if head in forced:
                continue
            if any(atom.relation in forced for atom in rule.pos if atom.relation in idb):
                forced.add(head)
                changed = True
    return forced


def semicon_violations(program: Program) -> list[str]:
    """Human-readable reasons why *program* fails to be semicon-Datalog¬.

    Empty list == the program is semi-connected.
    """
    reasons: list[str] = []
    if not is_stratifiable(program):
        reasons.append("program is not syntactically stratifiable")
        return reasons
    forced = _must_be_top(program)
    for rule in program:
        for atom in rule.neg:
            if atom.relation in forced:
                reasons.append(
                    f"relation {atom.relation} must live in the last stratum "
                    f"(it depends on a disconnected rule) but is negated in a "
                    f"rule for {rule.head.relation}"
                )
    return reasons


def is_semicon_datalog(program: Program) -> bool:
    """Membership in semicon-Datalog¬.

    Every SP-Datalog program is semi-connected (its single stratum is the
    last one); every con-Datalog¬ program is semi-connected as well.
    """
    return not semicon_violations(program)


@dataclass(frozen=True)
class ConnectivityReport:
    """A full connectivity classification of a program."""

    connected_rules: tuple[Rule, ...]
    disconnected_rules: tuple[Rule, ...]
    is_connected: bool
    is_con_datalog: bool
    is_semicon_datalog: bool
    violations: tuple[str, ...]


def analyze_connectivity(program: Program) -> ConnectivityReport:
    """Classify *program* against the Section 5.1 fragments."""
    connected = tuple(rule for rule in program if is_connected_rule(rule))
    disconnected = tuple(rule for rule in program if not is_connected_rule(rule))
    violations = tuple(semicon_violations(program))
    return ConnectivityReport(
        connected_rules=connected,
        disconnected_rules=disconnected,
        is_connected=not disconnected,
        is_con_datalog=not disconnected and is_stratifiable(program),
        is_semicon_datalog=not violations,
        violations=violations,
    )
