"""Direct game-theoretic solving of win-move games: retrograde analysis.

The win-move query's semantics is game-theoretic: on the graph of ``Move``
facts, a position is *won* when some move reaches a lost position, *lost*
when every move reaches a won position (dead ends are lost), *drawn*
otherwise.  Retrograde analysis computes this classification directly by
backward induction from the dead ends — completely independently of the
well-founded semantics, which makes it the perfect cross-validation oracle
for :func:`repro.datalog.wellfounded.evaluate_well_founded` (and it is the
standard algorithm a practitioner would actually use).

Also provided: :func:`optimal_move` (a winning strategy witness) and
:func:`distance_to_win` (the number of moves an optimal player needs),
which the examples use to make the distributed win-move output tangible.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping

from .instance import Instance
from .terms import Fact

__all__ = [
    "GameSolution",
    "solve_game",
    "optimal_move",
    "distance_to_win",
]


class GameSolution:
    """The full classification of a win-move game.

    ``won`` / ``lost`` / ``drawn`` partition the positions; ``depth`` maps
    each decided position to its backward-induction depth (0 for dead ends,
    the optimal game length otherwise).
    """

    __slots__ = ("won", "lost", "drawn", "depth", "_moves")

    def __init__(
        self,
        won: frozenset,
        lost: frozenset,
        drawn: frozenset,
        depth: Mapping[Hashable, int],
        moves: Mapping[Hashable, frozenset],
    ) -> None:
        self.won = won
        self.lost = lost
        self.drawn = drawn
        self.depth = dict(depth)
        self._moves = {k: frozenset(v) for k, v in moves.items()}

    def status(self, position: Hashable) -> str:
        if position in self.won:
            return "won"
        if position in self.lost:
            return "lost"
        if position in self.drawn:
            return "drawn"
        raise KeyError(f"{position!r} is not a position of this game")

    def winning_moves(self, position: Hashable) -> frozenset:
        """The moves from a won position that reach a lost position."""
        return frozenset(
            target for target in self._moves.get(position, ()) if target in self.lost
        )

    def as_instances(self) -> tuple[Instance, Instance, Instance]:
        """(Win, Drawn, Lost) unary instances, matching winmove_truths."""
        return (
            Instance(Fact("Win", (p,)) for p in self.won),
            Instance(Fact("Drawn", (p,)) for p in self.drawn),
            Instance(Fact("Lost", (p,)) for p in self.lost),
        )


def solve_game(instance: Instance, *, relation: str = "Move") -> GameSolution:
    """Classify every position of the game graph by retrograde analysis.

    Runs in O(positions + moves): each position counts its undecided
    successors; a position becomes *lost* when the counter hits zero (all
    successors won), and *won* the moment one successor is lost.
    Positions never decided are *drawn*.
    """
    moves: dict[Hashable, set] = {}
    predecessors: dict[Hashable, set] = {}
    positions: set = set()
    for fact in instance:
        if fact.relation != relation:
            continue
        source, target = fact.values
        positions.update((source, target))
        moves.setdefault(source, set()).add(target)
        predecessors.setdefault(target, set()).add(source)

    undecided_successors = {p: len(moves.get(p, ())) for p in positions}
    status: dict[Hashable, str] = {}
    depth: dict[Hashable, int] = {}
    queue: deque = deque()

    for position in positions:
        if undecided_successors[position] == 0:
            status[position] = "lost"
            depth[position] = 0
            queue.append(position)

    while queue:
        position = queue.popleft()
        for predecessor in predecessors.get(position, ()):
            if predecessor in status:
                continue
            if status[position] == "lost":
                # One losing successor suffices: predecessor is won.
                status[predecessor] = "won"
                depth[predecessor] = depth[position] + 1
                queue.append(predecessor)
            else:
                undecided_successors[predecessor] -= 1
                if undecided_successors[predecessor] == 0:
                    # Every successor turned out won: predecessor is lost.
                    status[predecessor] = "lost"
                    depth[predecessor] = 1 + max(
                        depth[s] for s in moves[predecessor]
                    )
                    queue.append(predecessor)

    won = frozenset(p for p, s in status.items() if s == "won")
    lost = frozenset(p for p, s in status.items() if s == "lost")
    drawn = frozenset(positions) - won - lost
    return GameSolution(won=won, lost=lost, drawn=drawn, depth=depth, moves=moves)


def optimal_move(solution: GameSolution, position: Hashable) -> Hashable | None:
    """A fastest winning move from a won position (None elsewhere)."""
    if position not in solution.won:
        return None
    candidates = solution.winning_moves(position)
    return min(
        candidates,
        key=lambda target: (solution.depth.get(target, 0), repr(target)),
    )


def distance_to_win(solution: GameSolution, position: Hashable) -> int | None:
    """Optimal game length from a won position (None elsewhere)."""
    if position not in solution.won:
        return None
    return solution.depth[position]
