"""Per-stratum classification and the distinct-safe refinement.

The whole-program fragments of Figure 2 are per-*program*: a single
disconnected rule feeding a negated relation pushes a program out of
semicon-Datalog¬ and onto the All-barrier, no matter how harmless the
rest of its strata are.  This module looks at the strata individually
and at the *dependency cone of negation* specifically:

* :func:`negation_feeders` — the idb relations from which some negated
  idb relation is reachable in the precedence graph.  Only facts of
  these relations can ever flip a negated atom; everything outside the
  cone is ordinary monotone growth.
* :func:`is_head_dominant` — a rule whose head carries *every* variable
  of its body (and whose body atoms are constant-free).  Under a
  domain-distinct addition every added fact carries a value outside
  ``adom(I)``; a head-dominant rule propagates that fresh value into its
  head, so the derived relation gains only fresh-valued facts.
* :func:`is_distinct_safe` — every rule deriving a relation in the
  negation cone is head-dominant.  By induction over the strata the
  whole cone then gains only fresh-valued facts and loses nothing, so
  negated atoms over old values never flip: the query is in
  **Mdistinct** even when the feeder rules are disconnected (where the
  paper's semicon criterion gives up).  This is the optimizer's
  "Complete CALM"-style step past the three syntactic classes.

The induction is airtight because the feeder set is transitively closed:
every body relation (positive or negated) of a feeder rule is itself a
feeder (its precedence edge points into the cone), so the invariant
"gains only fresh-valued facts, loses nothing" propagates stratum by
stratum from the edb (where domain-distinctness holds by definition).
Soundness is additionally fuzz-gated by the eighth conformance dimension
(:mod:`repro.conformance.optimizer`), which tries to refute every
upgraded certificate with counterexample pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.analyzer import analyze, classify_fragment, guaranteed_class
from ..core.certificate import fragment_memberships
from ..datalog.connectivity import is_connected_rule, is_semicon_datalog
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.stratification import precedence_graph, stratify
from ..datalog.terms import Variable

__all__ = [
    "CLASS_STRENGTH",
    "StratumCertificate",
    "effective_class",
    "is_distinct_safe",
    "is_head_dominant",
    "negation_feeders",
    "stratum_breakdown",
]

#: Monotonicity class -> guarantee strength (higher = stronger guarantee;
#: ``None`` marks the absence of any guarantee).  Downward consistency of a
#: per-stratum certificate is phrased over this order.
CLASS_STRENGTH: dict[str | None, int] = {
    None: 0,
    "Mdisjoint": 1,
    "Mdistinct": 2,
    "M": 3,
}


def negated_idb_relations(program: Program) -> frozenset[str]:
    """The idb relations that occur negated in some rule of *program*."""
    idb = set(program.idb())
    return frozenset(
        atom.relation
        for rule in program
        for atom in rule.neg
        if atom.relation in idb
    )


def negation_feeders(program: Program) -> frozenset[str]:
    """The dependency cone of negation: every idb relation from which a
    negated idb relation is reachable in the precedence graph (through
    edges of either polarity), including the negated relations themselves.

    Only facts of these relations can ever flip a negated atom; rules
    with heads outside the cone are plain monotone growth no matter what
    shape they have.
    """
    negated = set(negated_idb_relations(program))
    if not negated:
        return frozenset()
    graph = precedence_graph(program)
    # Walk the precedence edges backwards from the negated relations.
    predecessors: dict[str, set[str]] = {}
    for source, target, _negative in graph.edges():
        predecessors.setdefault(target, set()).add(source)
    cone = set(negated)
    frontier = list(negated)
    while frontier:
        relation = frontier.pop()
        for source in predecessors.get(relation, ()):
            if source not in cone:
                cone.add(source)
                frontier.append(source)
    return frozenset(cone)


def is_head_dominant(rule: Rule) -> bool:
    """True when the head carries every body variable and the body atoms
    are constant-free.

    Any new derivation of a head-dominant rule under a domain-distinct
    addition must bind some body variable to a fresh value (every added
    fact carries one, and constant-free bodies cannot absorb it into a
    constant position), and head-dominance forces that fresh value into
    the derived fact.  Conversely every value of an *old* head fact's
    derivation is old, so negated atoms inside the rule are evaluated
    over old values only.
    """
    body_variables: set[Variable] = set()
    for atom in rule.pos | rule.neg:
        if atom.constants():
            return False
        body_variables |= atom.variables()
    return body_variables <= rule.head.variables()


def is_distinct_safe(program: Program) -> bool:
    """The optimizer's refinement: membership in Mdistinct by way of a
    head-dominant negation cone.

    Requires syntactic stratifiability; semi-positive programs qualify
    vacuously (their negation cone is empty), so this strictly extends
    the SP-Datalog -> Mdistinct arrow of Figure 2.
    """
    try:
        stratify(program)
    except Exception:
        return False
    feeders = negation_feeders(program)
    if not feeders:
        return True
    return all(
        is_head_dominant(rule)
        for rule in program
        if rule.head.relation in feeders
    )


def effective_class(
    program: Program, *, mutate: str | None = None
) -> tuple[str | None, str]:
    """The optimizer's monotonicity class for *program* plus the criterion
    that justified it.

    The ladder is checked strongest-first, and every step subsumes the
    corresponding Figure-2 arrow, so the result is never weaker than
    :func:`repro.core.analyzer.analyze` reports:

    1. positive programs are in **M** (Figure 2);
    2. programs with a head-dominant negation cone are in **Mdistinct**
       (:func:`is_distinct_safe`; includes all of SP-Datalog);
    3. semicon-Datalog¬ programs are in **Mdisjoint** (Thm 4.4 routing,
       includes con-Datalog¬);
    4. unstratifiable connected programs are in **Mdisjoint** (the
       Section-7 well-founded remark);
    5. everything else carries no guarantee — the barrier residue.

    ``mutate="misclassify-stratum"`` plants the bug the fuzz harness must
    catch: the head-dominance test is skipped, so every stratified
    negation cone — including ones that genuinely mix old and new domain
    values — is certified distinct-safe and routed coordination-free.
    """
    baseline = analyze(program)
    if program.is_positive():
        return "M", "positive program: monotone (Figure 2)"
    if mutate == "misclassify-stratum":
        try:
            stratify(program)
        except Exception:
            pass
        else:
            return (
                "Mdistinct",
                "PLANTED BUG: negation cone assumed head-dominant without "
                "checking — unsound coordination-free routing",
            )
    if is_distinct_safe(program):
        if program.is_semi_positive():
            return (
                "Mdistinct",
                "semi-positive: negation on edb relations only (Figure 2)",
            )
        return (
            "Mdistinct",
            "distinct-safe: every rule in the negation cone is "
            "head-dominant, so the cone gains only fresh-valued facts "
            "under domain-distinct additions and negated atoms over old "
            "values never flip (finer than the Figure-2 fragments)",
        )
    if baseline.monotonicity is not None:
        return baseline.monotonicity, (
            f"fragment {baseline.fragment} guarantee (Figure 2)"
        )
    return None, (
        f"fragment {baseline.fragment}: the negation cone is neither "
        "head-dominant nor semicon-connected — the residue pays the "
        "All-barrier"
    )


@dataclass(frozen=True)
class StratumCertificate:
    """The classification of one stratum, standalone and in context.

    ``fragment`` / ``memberships`` / ``monotonicity`` classify the
    stratum *as its own program* (lower-strata relations count as its
    edb, so a stratum is always at least semi-positive).  ``role``
    records what the stratum does inside the composed plan:

    * ``"monotone"`` — negation-free, derives eagerly, never waits;
    * ``"guarded"`` — carries negation but the chosen coordination-free
      protocol decides its absences (the policy-aware or domain-guided
      gate);
    * ``"residue"`` — carries negation the criteria cannot discharge;
      the stratum is why the plan pays the All-barrier.
    """

    index: int
    heads: tuple[str, ...]
    rules: int
    fragment: str
    memberships: dict[str, bool]
    monotonicity: str | None
    connected: bool
    head_dominant: bool
    in_negation_cone: bool
    negates: tuple[str, ...]
    role: str
    pays_coordination: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "heads": list(self.heads),
            "rules": self.rules,
            "fragment": self.fragment,
            "memberships": dict(self.memberships),
            "monotonicity": self.monotonicity,
            "connected": self.connected,
            "head_dominant": self.head_dominant,
            "in_negation_cone": self.in_negation_cone,
            "negates": list(self.negates),
            "role": self.role,
            "pays_coordination": self.pays_coordination,
        }


def stratum_breakdown(
    program: Program, *, mutate: str | None = None
) -> tuple[StratumCertificate, ...]:
    """Classify every stratum of *program* individually.

    Returns ``()`` for unstratifiable programs (there is no stratum
    sequence to speak of; the whole-program analysis applies unchanged).
    """
    try:
        stratification = stratify(program)
    except Exception:
        return ()
    overall, _reason = effective_class(program, mutate=mutate)
    feeders = negation_feeders(program)
    certificates: list[StratumCertificate] = []
    for index, stratum in enumerate(stratification.strata, start=1):
        fragment = classify_fragment(stratum)
        heads = tuple(sorted({rule.head.relation for rule in stratum}))
        negates = tuple(
            sorted(
                {
                    atom.relation
                    for rule in stratum
                    for atom in rule.neg
                }
            )
        )
        has_negation = any(rule.neg for rule in stratum)
        in_cone = any(head in feeders for head in heads)
        if not has_negation:
            role = "monotone"
        elif overall is not None:
            role = "guarded"
        else:
            role = "residue"
        certificates.append(
            StratumCertificate(
                index=index,
                heads=heads,
                rules=len(stratum),
                fragment=fragment,
                memberships=fragment_memberships(stratum),
                monotonicity=guaranteed_class(fragment),
                connected=all(is_connected_rule(rule) for rule in stratum),
                head_dominant=all(
                    is_head_dominant(rule)
                    for rule in stratum
                    if rule.head.relation in feeders
                ),
                in_negation_cone=in_cone,
                negates=negates,
                role=role,
                pays_coordination=role == "residue",
            )
        )
    return tuple(certificates)
