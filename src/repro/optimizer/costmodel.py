"""The coordination cost model: predicted (rounds, messages, transitions).

The Section-4 protocols have sharply different cost shapes — measured by
``benchmarks/bench_protocol_costs.py`` / ``bench_coordination_price.py``
and committed in ``BENCH_service.json``: broadcast quiesces in ~4 rounds,
the policy-aware absence protocol slightly later, the domain-guided
handshake and the All-barrier pay extra message hops (ack / OK / done
chains) that cost ~3 more rounds regardless of input size.  The model
captures exactly that structure:

* ``rounds ~ a + b * nodes`` per protocol kind (the handshake depth is a
  property of the protocol, input size only perturbs it);
* ``messages ~ a + b * nodes + c * nodes * facts`` (every protocol's
  data-driven messaging scales with how much input each node must ship);
* ``transitions = rounds * nodes`` — structural: under the fair
  scheduler every node takes exactly one transition per round.

Coefficients are fitted by least squares over observations from
:func:`calibration_observations` (the ``protocol_cost_sweep`` of
:mod:`repro.core.experiments` plus an All-barrier arm over the same
inputs).  ``DEFAULT_COST_MODEL`` carries committed coefficients from that
calibration so certificates are deterministic and dependency-free; the
``repro optimize --calibrate`` path refits from fresh measurements.

The planner only ever *compares* predictions — chosen bundle vs the
All-barrier — on the lexicographic ``(rounds, transitions)`` key, the
same gate the service's paired-seed A/B comparison uses, so absolute
calibration error cancels where it matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "PROTOCOL_KINDS",
    "CostVector",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "calibration_observations",
    "fit_cost_model",
    "protocol_kind",
]

#: The four protocol families the planner can route to.
PROTOCOL_KINDS = ("broadcast", "distinct", "disjoint", "barrier")

#: Monotonicity class -> the protocol kind the planner routes it to.
KIND_FOR_CLASS: dict[str | None, str] = {
    "M": "broadcast",
    "Mdistinct": "distinct",
    "Mdisjoint": "disjoint",
    None: "barrier",
}


def protocol_kind(transducer_name: str) -> str:
    """The protocol family of a transducer name (``"distinct[datalog[O]]"``
    -> ``"distinct"``).  Unknown prefixes map to ``"barrier"`` — the
    conservative cost assumption."""
    kind = transducer_name.partition("[")[0]
    return kind if kind in PROTOCOL_KINDS else "barrier"


@dataclass(frozen=True)
class CostVector:
    """A predicted or measured protocol cost."""

    rounds: float
    messages: float
    transitions: float

    def ordering_key(self) -> tuple[float, float]:
        """The comparison key of the service's A/B gate: lexicographic on
        (rounds, transitions).  Messages are reported but not gated — the
        handshake protocols trade more messages for fewer rounds."""
        return (self.rounds, self.transitions)

    def cheaper_than(self, other: "CostVector") -> bool:
        return self.ordering_key() < other.ordering_key()

    def to_dict(self) -> dict[str, float]:
        return {
            "rounds": round(self.rounds, 3),
            "messages": round(self.messages, 3),
            "transitions": round(self.transitions, 3),
        }


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting (tiny systems only)."""
    size = len(rhs)
    rows = [list(row) + [value] for row, value in zip(matrix, rhs)]
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(rows[r][col]))
        if abs(rows[pivot][col]) < 1e-12:
            continue  # singular direction: leave the coefficient at 0
        rows[col], rows[pivot] = rows[pivot], rows[col]
        for other in range(size):
            if other == col:
                continue
            factor = rows[other][col] / rows[col][col]
            rows[other] = [
                a - factor * b for a, b in zip(rows[other], rows[col])
            ]
    solution = []
    for col in range(size):
        if abs(rows[col][col]) < 1e-12:
            solution.append(0.0)
        else:
            solution.append(rows[col][size] / rows[col][col])
    return solution


def _least_squares(
    rows: Sequence[Sequence[float]], targets: Sequence[float]
) -> list[float]:
    """Ordinary least squares via the normal equations."""
    params = len(rows[0])
    normal = [[0.0] * params for _ in range(params)]
    rhs = [0.0] * params
    for row, target in zip(rows, targets):
        for i in range(params):
            rhs[i] += row[i] * target
            for j in range(params):
                normal[i][j] += row[i] * row[j]
    return _solve(normal, rhs)


@dataclass(frozen=True)
class CostModel:
    """Per-protocol-kind linear coefficients.

    ``rounds[kind] = (a, b)`` predicts ``a + b * nodes``;
    ``messages[kind] = (a, b, c)`` predicts ``a + b*nodes + c*nodes*facts``.
    """

    rounds: dict[str, tuple[float, float]]
    messages: dict[str, tuple[float, float, float]]

    def predict(self, kind: str, *, nodes: int, facts: int) -> CostVector:
        if kind not in self.rounds:
            raise KeyError(f"unknown protocol kind {kind!r}")
        ra, rb = self.rounds[kind]
        ma, mb, mc = self.messages[kind]
        rounds = max(1.0, ra + rb * nodes)
        messages = max(0.0, ma + mb * nodes + mc * nodes * facts)
        return CostVector(
            rounds=rounds, messages=messages, transitions=rounds * nodes
        )

    def predict_class(
        self, monotonicity: str | None, *, nodes: int, facts: int
    ) -> CostVector:
        return self.predict(
            KIND_FOR_CLASS[monotonicity], nodes=nodes, facts=facts
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rounds": {k: list(v) for k, v in sorted(self.rounds.items())},
            "messages": {k: list(v) for k, v in sorted(self.messages.items())},
        }


def fit_cost_model(
    observations: Iterable[tuple[str, int, int, Any]]
) -> CostModel:
    """Least-squares fit from ``(kind, nodes, facts, RunMetrics)`` rows."""
    by_kind: dict[str, list[tuple[int, int, Any]]] = {}
    for kind, nodes, facts, metrics in observations:
        by_kind.setdefault(kind, []).append((nodes, facts, metrics))
    rounds: dict[str, tuple[float, float]] = {}
    messages: dict[str, tuple[float, float, float]] = {}
    for kind, rows in by_kind.items():
        round_rows = [(1.0, float(n)) for n, _f, _m in rows]
        round_targets = [float(m.rounds) for _n, _f, m in rows]
        ra, rb = _least_squares(round_rows, round_targets)
        rounds[kind] = (ra, rb)
        message_rows = [
            (1.0, float(n), float(n) * float(f)) for n, f, _m in rows
        ]
        message_targets = [float(m.message_facts_sent) for _n, _f, m in rows]
        ma, mb, mc = _least_squares(message_rows, message_targets)
        messages[kind] = (ma, mb, mc)
    return CostModel(rounds=rounds, messages=messages)


def calibration_observations(
    *,
    node_counts: Iterable[int] = (1, 2, 3, 4),
    edge_counts: Iterable[int] = (4, 8, 16),
    seed: int = 0,
) -> list[tuple[str, int, int, Any]]:
    """Fresh calibration data: the three Section-4 protocols *and* the
    All-barrier, over the same inputs across network and input sizes
    (the union of the two ``bench_protocol_costs.py`` sweeps plus the
    barrier arm they lack)."""
    from ..core.experiments import (
        complement_tc_query,
        random_graph,
        transitive_closure_query,
    )
    from ..transducers.barrier import global_barrier_transducer
    from ..transducers.policy import (
        Network,
        domain_guided_policy,
        hash_domain_assignment,
        hash_policy,
    )
    from ..transducers.protocols import (
        broadcast_transducer,
        disjoint_protocol_transducer,
        distinct_protocol_transducer,
    )
    from ..transducers.runtime import FairScheduler, TransducerNetwork

    tc = transitive_closure_query()
    cotc = complement_tc_query()
    observations: list[tuple[str, int, int, Any]] = []
    for edges in edge_counts:
        instance = random_graph(max(6, int(edges)), int(edges), seed=seed)
        facts = len(instance)
        for count in node_counts:
            network = Network([f"n{i}" for i in range(count)])
            configs = [
                ("broadcast", broadcast_transducer(tc), hash_policy(tc.input_schema, network)),
                (
                    "distinct",
                    distinct_protocol_transducer(cotc),
                    hash_policy(cotc.input_schema, network),
                ),
                (
                    "disjoint",
                    disjoint_protocol_transducer(cotc),
                    domain_guided_policy(
                        cotc.input_schema, network, hash_domain_assignment(network)
                    ),
                ),
                (
                    "barrier",
                    global_barrier_transducer(cotc),
                    hash_policy(cotc.input_schema, network),
                ),
            ]
            for kind, transducer, policy in configs:
                run = TransducerNetwork(network, transducer, policy).new_run(instance)
                run.run_to_quiescence(scheduler=FairScheduler(seed))
                observations.append((kind, count, facts, run.metrics))
    return observations


#: Committed coefficients from ``fit_cost_model(calibration_observations())``
#: (node_counts 1-4, edge_counts 4/8/16, seed 0).  Regenerate with
#: ``repro optimize --calibrate`` or ``scripts/bench_report.py --optimizer``;
#: the artifact test pins the *ordering* these induce against the measured
#: ordering in BENCH_service.json, not the raw values.
DEFAULT_COST_MODEL = CostModel(
    rounds={
        "broadcast": (2.0, 0.6),
        "distinct": (1.5, 1.0),
        "disjoint": (2.0, 1.7333),
        "barrier": (2.0, 1.8),
    },
    messages={
        "broadcast": (-9.3333, 3.1111, 0.6667),
        "distinct": (-205.6667, 50.6889, 13.9762),
        "disjoint": (-198.0, 83.5333, 7.6714),
        "barrier": (-73.0, 30.4667, 3.0),
    },
)
