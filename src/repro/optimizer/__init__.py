"""The per-stratum coordination-cost optimizer.

The analyzer in :mod:`repro.core.analyzer` decides coordination *per
program*: one non-monotone stratum drags the whole run onto the global
All-barrier.  This package decides per stratum instead.  It classifies
every stratum of a stratifiable Datalog¬ program (fragment memberships +
monotonicity class, the same machinery as :mod:`repro.core.certificate`),
combines the per-stratum evidence with a criterion strictly finer than
the paper's three syntactic fragments (the *distinct-safe* head-dominance
test, in the spirit of Hellerstein et al.'s "Complete CALM" and the
Zinn/Green/Ludäscher win-move analysis), and emits a
:class:`~repro.optimizer.plan.PlanCertificate`: per-stratum class, the
chosen Section-4 protocol bundle (only the non-monotone residue pays for
coordination), and a predicted (rounds, messages, transitions) cost from
a model fitted to the ``bench_protocol_costs`` sweeps.

Soundness is fuzz-gated: the eighth conformance dimension
(:mod:`repro.conformance.optimizer`) requires every generator-sampled
program to get a certificate that survives empirical refutation and a
plan whose execution is byte-identical to the All-barrier baseline.
"""

from .costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    CostVector,
    calibration_observations,
    fit_cost_model,
    protocol_kind,
)
from .executor import OptimizedArm, PlanComparison, execute_arm, run_comparison
from .plan import (
    OPTIMIZER_MUTATIONS,
    PLAN_CERTIFICATE_VERSION,
    OptimizedPlan,
    downward_consistent,
    plan_certificate,
    plan_optimized,
)
from .strata import (
    StratumCertificate,
    effective_class,
    is_distinct_safe,
    is_head_dominant,
    negation_feeders,
    stratum_breakdown,
)

__all__ = [
    "CostModel",
    "CostVector",
    "DEFAULT_COST_MODEL",
    "OPTIMIZER_MUTATIONS",
    "OptimizedArm",
    "OptimizedPlan",
    "PLAN_CERTIFICATE_VERSION",
    "PlanComparison",
    "StratumCertificate",
    "calibration_observations",
    "downward_consistent",
    "effective_class",
    "execute_arm",
    "fit_cost_model",
    "is_distinct_safe",
    "is_head_dominant",
    "negation_feeders",
    "plan_certificate",
    "plan_optimized",
    "protocol_kind",
    "run_comparison",
    "stratum_breakdown",
]
