"""Paired execution: optimized bundle vs the All-barrier baseline.

The optimizer's promise is checkable, so check it: run the optimized
plan and the All-barrier plan over the same input on the same seeded
scheduler, compare output fingerprints byte-for-byte, and report both
measured and predicted costs.  This is the primitive behind
``repro optimize`` (with facts), the fuzz harness's eighth dimension,
and ``benchmarks/bench_optimizer.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.analyzer import network_for_plan
from ..datalog.instance import Instance
from ..datalog.program import Program
from ..transducers.runtime import FairScheduler
from ..transducers.telemetry import output_fingerprint
from .costmodel import DEFAULT_COST_MODEL, CostModel, CostVector
from .plan import OptimizedPlan, plan_optimized

__all__ = [
    "OptimizedArm",
    "PlanComparison",
    "execute_arm",
    "run_comparison",
]


@dataclass(frozen=True)
class OptimizedArm:
    """One executed arm of a paired comparison."""

    protocol: str
    output: Instance
    fingerprint: str
    measured: CostVector
    predicted: CostVector

    def to_dict(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "fingerprint": self.fingerprint,
            "output_facts": len(self.output),
            "measured": self.measured.to_dict(),
            "predicted": self.predicted.to_dict(),
        }


@dataclass(frozen=True)
class PlanComparison:
    """The paired optimized-vs-barrier verdict for one (program, input)."""

    optimized: OptimizedArm
    barrier: OptimizedArm
    byte_identical: bool
    measured_cheaper: bool
    predicted_cheaper: bool
    prediction_agrees: bool
    upgraded: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "optimized": self.optimized.to_dict(),
            "barrier": self.barrier.to_dict(),
            "byte_identical": self.byte_identical,
            "measured_cheaper": self.measured_cheaper,
            "predicted_cheaper": self.predicted_cheaper,
            "prediction_agrees": self.prediction_agrees,
            "upgraded": self.upgraded,
        }


def execute_arm(
    optimized: OptimizedPlan,
    instance: Instance,
    *,
    nodes: int = 3,
    seed: int = 0,
    scheduler: Any = None,
    model: CostModel = DEFAULT_COST_MODEL,
) -> OptimizedArm:
    """Run one plan arm to quiescence and package its cost evidence."""
    plan = optimized.plan
    base = instance.restrict(optimized.program.edb())
    network = network_for_plan(plan, [f"n{i + 1}" for i in range(nodes)])
    run = network.new_run(base)
    output = run.run_to_quiescence(
        scheduler=scheduler if scheduler is not None else FairScheduler(seed)
    )
    metrics = run.metrics
    measured = CostVector(
        rounds=float(metrics.rounds),
        messages=float(metrics.message_facts_sent),
        transitions=float(metrics.transitions),
    )
    predicted = model.predict(optimized.kind, nodes=nodes, facts=len(base))
    return OptimizedArm(
        protocol=plan.transducer.name,
        output=output,
        fingerprint=output_fingerprint(output),
        measured=measured,
        predicted=predicted,
    )


def run_comparison(
    program: Program,
    instance: Instance,
    *,
    nodes: int = 3,
    seed: int = 0,
    mutate: str | None = None,
    model: CostModel = DEFAULT_COST_MODEL,
) -> PlanComparison:
    """Execute the optimized and All-barrier arms over the same input and
    seeded scheduler, then compare.

    ``byte_identical`` is the soundness gate (equal output fingerprints);
    ``measured_cheaper`` / ``predicted_cheaper`` compare the lexicographic
    (rounds, transitions) keys; ``prediction_agrees`` says the model's
    ordering matched the measurement's — the calibration gate of
    ``BENCH_optimizer.json``.
    """
    optimized_plan = plan_optimized(program, mutate=mutate)
    barrier_plan = plan_optimized(program, force_barrier=True)
    optimized = execute_arm(
        optimized_plan, instance, nodes=nodes, seed=seed, model=model
    )
    barrier = execute_arm(
        barrier_plan, instance, nodes=nodes, seed=seed, model=model
    )
    measured_cheaper = optimized.measured.cheaper_than(barrier.measured)
    predicted_cheaper = optimized.predicted.cheaper_than(barrier.predicted)
    return PlanComparison(
        optimized=optimized,
        barrier=barrier,
        byte_identical=optimized.fingerprint == barrier.fingerprint,
        measured_cheaper=measured_cheaper,
        predicted_cheaper=predicted_cheaper,
        prediction_agrees=measured_cheaper == predicted_cheaper,
        upgraded=optimized_plan.upgraded,
    )
