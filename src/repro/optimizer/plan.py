"""Optimized plans and their PlanCertificates.

:func:`plan_optimized` is the optimizer's counterpart to
:func:`repro.core.analyzer.plan_distribution`: it computes the analyzer's
baseline routing, then re-routes through :func:`effective_class` — the
per-stratum ladder with the distinct-safe refinement — so a program whose
only obstacle is a disconnected-but-head-dominant negation cone runs the
Thm 4.3 policy-aware protocol instead of the All-barrier.  The baseline
planner is deliberately untouched: the optimizer is an opt-in layer
(``repro optimize``, the service's ``"optimize"`` flag, the fuzz
harness's eighth dimension) whose every upgrade is fuzz-gated against the
All-barrier execution.

:func:`plan_certificate` emits the versioned JSON *PlanCertificate*:
whole-program and per-stratum classifications, the chosen protocol
bundle, and predicted (rounds, messages, transitions) from the fitted
cost model for both the chosen bundle and the All-barrier baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.analyzer import DistributedPlan, plan_distribution
from ..core.certificate import (
    empirical_section,
    fragment_memberships,
    protocol_reason,
)
from ..datalog.program import Program
from ..transducers.protocols import (
    broadcast_transducer,
    disjoint_protocol_transducer,
    distinct_protocol_transducer,
)
from .costmodel import (
    DEFAULT_COST_MODEL,
    KIND_FOR_CLASS,
    CostModel,
    protocol_kind,
)
from .strata import (
    CLASS_STRENGTH,
    StratumCertificate,
    effective_class,
    stratum_breakdown,
)

__all__ = [
    "OPTIMIZER_MUTATIONS",
    "PLAN_CERTIFICATE_VERSION",
    "OptimizedPlan",
    "downward_consistent",
    "plan_certificate",
    "plan_optimized",
]

#: Bumped whenever the PlanCertificate JSON layout changes incompatibly.
PLAN_CERTIFICATE_VERSION = 1

#: Planted bugs the fuzz harness must catch (``--mutate optimizer=NAME``).
OPTIMIZER_MUTATIONS = ("misclassify-stratum",)


@dataclass(frozen=True)
class OptimizedPlan:
    """The optimizer's routing decision for one program.

    ``baseline`` is the analyzer's whole-program plan; ``plan`` is the
    (possibly re-routed) plan the optimizer executes.  When the
    effective class matches the analyzer's, the two share the same
    protocol; ``upgraded`` marks the interesting case where the
    per-stratum evidence bought a strictly cheaper bundle.
    """

    program: Program
    baseline: DistributedPlan
    plan: DistributedPlan
    effective_monotonicity: str | None
    reason: str
    strata: tuple[StratumCertificate, ...]
    upgraded: bool
    mutate: str | None

    @property
    def protocol_name(self) -> str:
        return self.plan.transducer.name

    @property
    def kind(self) -> str:
        return protocol_kind(self.plan.transducer.name)

    def describe(self) -> str:
        if self.upgraded:
            return (
                f"{self.plan.query.name}: optimizer upgraded "
                f"{self.baseline.analysis.monotonicity or 'barrier'} -> "
                f"{self.effective_monotonicity} ({self.reason}); protocol "
                f"{self.protocol_name}"
            )
        return self.plan.describe()


def plan_optimized(
    program: Program,
    *,
    force_barrier: bool = False,
    mutate: str | None = None,
) -> OptimizedPlan:
    """Route *program* through the per-stratum optimizer.

    ``force_barrier`` keeps the All-barrier arm available for paired
    comparisons; ``mutate`` plants one of :data:`OPTIMIZER_MUTATIONS`
    into the classification (never into the baseline arm), for the fuzz
    harness's self-check.
    """
    if mutate is not None and mutate not in OPTIMIZER_MUTATIONS:
        raise ValueError(
            f"unknown optimizer mutation {mutate!r}; "
            f"expected one of {', '.join(OPTIMIZER_MUTATIONS)}"
        )
    baseline = plan_distribution(program)
    effective, reason = effective_class(program, mutate=mutate)
    strata = stratum_breakdown(program, mutate=mutate)
    if force_barrier:
        plan = plan_distribution(program, force_barrier=True)
    elif effective == baseline.analysis.monotonicity:
        plan = baseline
    else:
        query = baseline.query
        if effective == "M":
            transducer = broadcast_transducer(query)
        elif effective == "Mdistinct":
            transducer = distinct_protocol_transducer(query)
        elif effective == "Mdisjoint":
            transducer = disjoint_protocol_transducer(query)
        else:  # pragma: no cover - ladder never downgrades to None
            raise AssertionError(
                "effective_class weakened the analyzer's guarantee"
            )
        plan = DistributedPlan(
            analysis=baseline.analysis,
            query=query,
            transducer=transducer,
            requires_domain_guided=effective == "Mdisjoint",
            requires_barrier=False,
        )
    upgraded = (
        not force_barrier
        and CLASS_STRENGTH[effective]
        > CLASS_STRENGTH[baseline.analysis.monotonicity]
    )
    return OptimizedPlan(
        program=program,
        baseline=baseline,
        plan=plan,
        effective_monotonicity=effective,
        reason=reason,
        strata=strata,
        upgraded=upgraded,
        mutate=mutate,
    )


def downward_consistent(optimized: OptimizedPlan) -> bool:
    """Per-stratum certificates must be *downward-consistent* with the
    whole-program certificate: a stratum, run standalone (lower strata as
    its edb), can only carry an equal-or-stronger guarantee than the
    composed program.  Structural for stratifiable programs — every
    stratum is at least semi-positive on its own — and vacuous for
    unstratifiable ones (no stratum sequence exists)."""
    whole = CLASS_STRENGTH[optimized.effective_monotonicity]
    return all(
        CLASS_STRENGTH[stratum.monotonicity] >= whole
        for stratum in optimized.strata
    )


def plan_certificate(
    program: Program,
    *,
    nodes: int = 3,
    facts: int = 8,
    model: CostModel = DEFAULT_COST_MODEL,
    mutate: str | None = None,
    check_pairs: int = 0,
    seed: int = 0,
) -> dict[str, Any]:
    """The versioned PlanCertificate for *program*.

    Extends the core certificate with the optimizer's three additions:
    the effective class and its criterion, the per-stratum breakdown, and
    the predicted cost of the chosen bundle vs the All-barrier under the
    fitted model (at the given network/input size).
    """
    optimized = plan_optimized(program, mutate=mutate)
    analysis = optimized.baseline.analysis
    predicted = model.predict(optimized.kind, nodes=nodes, facts=facts)
    barrier = model.predict("barrier", nodes=nodes, facts=facts)
    payload: dict[str, Any] = {
        "version": PLAN_CERTIFICATE_VERSION,
        "rules": len(program),
        "edb": sorted(program.edb()),
        "output": sorted(program.output_relations),
        "fragment": analysis.fragment,
        "memberships": fragment_memberships(program),
        "baseline": {
            "monotonicity": analysis.monotonicity,
            "protocol": optimized.baseline.transducer.name,
            "reason": protocol_reason(optimized.baseline),
        },
        "effective": {
            "monotonicity": optimized.effective_monotonicity,
            "reason": optimized.reason,
            "upgraded": optimized.upgraded,
            "mutation": optimized.mutate,
        },
        "protocol": {
            "name": optimized.protocol_name,
            "kind": optimized.kind,
            "requires_barrier": optimized.plan.requires_barrier,
            "requires_domain_guided": optimized.plan.requires_domain_guided,
        },
        "strata": [stratum.to_dict() for stratum in optimized.strata],
        "downward_consistent": downward_consistent(optimized),
        "cost": {
            "nodes": nodes,
            "facts": facts,
            "predicted": predicted.to_dict(),
            "barrier": barrier.to_dict(),
            "cheaper_than_barrier": predicted.cheaper_than(barrier),
        },
    }
    if check_pairs > 0:
        payload["empirical"] = empirical_section(
            optimized.plan.query,
            optimized.effective_monotonicity,
            pairs=check_pairs,
            seed=seed,
        )
    return payload
