"""Chaos confluence: stress a Section-4 protocol with channel faults and
adversarial schedules, and watch every fair run converge to Q(I).

Theorem 4.4 constructs, for any query in Mdisjoint, a transducer network
that *distributedly computes* it: every fair run — no matter how messages
are reordered, duplicated, delayed or (temporarily) dropped — ends in the
same global output.  This script makes the adversary concrete.

Run:  python examples/chaos_confluence.py
"""

from repro.transducers import (
    CHAOS_PLAN,
    FairScheduler,
    FaultyChannel,
    Network,
    TransducerNetwork,
    build_run_report,
    chaos_scheduler_zoo,
    section4_protocols,
)


def main() -> None:
    # Theorem 4.4's domain-guided handshake for complement-of-TC.
    bundle = next(b for b in section4_protocols() if b.key == "thm44-disjoint")
    network = Network(["n1", "n2", "n3"])
    policy = bundle.policy(network)
    expected = bundle.expected()

    print(f"== Protocol: {bundle.theorem} ==")
    print(f"   transducer {bundle.transducer.name}, instance:")
    for fact in bundle.instance.sorted_facts():
        print("    ", fact)
    print(f"   Q(I) = {sorted(map(repr, expected.sorted_facts()))}")

    print("\n== Fair baseline ==")
    run = TransducerNetwork(network, bundle.transducer, policy).new_run(
        bundle.instance
    )
    run.run_to_quiescence(scheduler=FairScheduler(0))
    baseline = build_run_report(run, scheduler=FairScheduler(0))
    print("  ", baseline.summary())

    print(f"\n== Chaos sweep (channel: {CHAOS_PLAN.describe()}) ==")
    fingerprints = {baseline.output_fingerprint}
    for seed in (1, 2, 3):
        for scheduler in chaos_scheduler_zoo(seed):
            run = TransducerNetwork(network, bundle.transducer, policy).new_run(
                bundle.instance, channel=FaultyChannel(CHAOS_PLAN, seed)
            )
            run.run_to_quiescence(scheduler=scheduler)
            report = build_run_report(run, scheduler=scheduler)
            fingerprints.add(report.output_fingerprint)
            print("  ", report.summary())

    assert len(fingerprints) == 1, "a faulted run diverged from Q(I)!"
    print("\nall schedules converged to the same output — confluent: OK")


if __name__ == "__main__":
    main()
