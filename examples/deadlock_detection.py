"""Distributed deadlock detection: the win-move query wearing work clothes.

Processes wait on each other (``Move(p, q)`` = "p waits for q").  Under the
game reading of the well-founded semantics:

* a process with no outstanding waits runs to completion — *lost* in game
  terms, "terminates" here;
* ``Win(p)`` (p has a wait on a terminating process) means p eventually
  unblocks through that dependency;
* the *drawn* processes are exactly the deadlocked ones — they sit on or
  behind a cycle of waits with no escape.

This script solves a wait-for graph three ways — retrograde analysis, the
well-founded semantics, and a coordination-free distributed run of the
Theorem 4.4 protocol — and checks all three agree.

Run:  python examples/deadlock_detection.py
"""

from repro.datalog import Instance, parse_facts
from repro.datalog.games import solve_game
from repro.datalog.wellfounded import winmove_truths
from repro.queries import win_move_query
from repro.transducers import (
    Network,
    TransducerNetwork,
    disjoint_protocol_transducer,
    domain_guided_policy,
    hash_domain_assignment,
)

WAIT_FOR = """
    Move('etl', 'db').
    Move('db', 'disk').
    Move('api', 'cache'). Move('cache', 'api').
    Move('cron', 'api').
    Move('batch', 'lock_a'). Move('lock_a', 'lock_b'). Move('lock_b', 'batch').
"""


def main() -> None:
    waits = Instance(parse_facts(WAIT_FOR))

    print("== Retrograde analysis of the wait-for graph ==")
    solution = solve_game(waits)
    print("  terminate (no escape needed):", sorted(solution.lost))
    print("  unblock via a dependency:    ", sorted(solution.won))
    print("  DEADLOCKED:                  ", sorted(solution.drawn))

    print("\n== Cross-check: well-founded semantics ==")
    won, drawn, lost = winmove_truths(waits)
    assert {f.values[0] for f in drawn} == solution.drawn
    assert {f.values[0] for f in won} == solution.won
    print("  well-founded model agrees with retrograde analysis: OK")

    print("\n== Distributed detection, coordination-free (Theorem 4.4) ==")
    query = win_move_query()
    network = Network(["monitor1", "monitor2"])
    policy = domain_guided_policy(
        query.input_schema, network, hash_domain_assignment(network)
    )
    run = TransducerNetwork(
        network, disjoint_protocol_transducer(query), policy
    ).new_run(waits)
    output = run.run_to_quiescence()
    assert output == query(waits)
    unblockers = {f.values[0] for f in output}
    deadlocked = set(waits.adom()) - unblockers - solution.lost
    print("  monitors computed unblocking processes:", sorted(unblockers))
    print("  hence deadlocked:", sorted(deadlocked))
    assert deadlocked == solution.drawn
    print(
        f"  cost: {run.metrics.transitions} transitions, "
        f"{run.metrics.message_facts_sent} message-facts — and no global barrier"
    )


if __name__ == "__main__":
    main()
