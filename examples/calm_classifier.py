"""The CALM classifier over the program zoo, plus a live demonstration of
WHY a query outside a class cannot be computed coordination-free: the
relocation construction from the paper's proofs, executed step by step.

Run:  python examples/calm_classifier.py
"""

from repro.core import analyze, refute_by_relocation
from repro.monotonicity import witness_cotc_not_distinct
from repro.queries import zoo_entries
from repro.transducers import distinct_protocol_transducer


def main() -> None:
    print("== Fragment and strategy per zoo program ==")
    header = f"  {'program':<22} {'fragment':<18} {'class':<10} {'model':<14} cf"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for entry in zoo_entries():
        analysis = analyze(entry.program())
        print(
            f"  {entry.name:<22} {analysis.fragment:<18} "
            f"{analysis.monotonicity or '—':<10} {analysis.model or 'barrier':<14} "
            f"{analysis.coordination_class or '—'}"
        )

    print(
        "\n== Why coTC is NOT coordination-free in the policy-aware model =="
        "\n(Theorem 4.3's 'only if' direction, as a concrete execution.)"
    )
    witness = witness_cotc_not_distinct()
    print(f"  I = {witness.base}")
    print(f"  J = {witness.addition}   (domain-distinct from I)")
    print(f"  Q(I) contains O(a,b); Q(I ∪ J) does not — a Mdistinct violation.")
    refutation = refute_by_relocation(
        distinct_protocol_transducer, witness.query, witness.base, witness.addition
    )
    print(
        "  Relocate J to node y, give node x the ideal view of I, run"
        " heartbeats at x:"
    )
    print(f"  -> {refutation.describe()}")
    assert refutation.refuted
    print(
        "  x could not tell I from I ∪ J without communicating, so it output"
        " a fact\n  that is wrong for the full input — the transducer does"
        " not compute Q."
    )


if __name__ == "__main__":
    main()
