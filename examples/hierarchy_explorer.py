"""Explore the Figure 1 monotonicity hierarchy interactively:
regenerate every Theorem 3.1 claim, then dissect one separating witness.

Run:  python examples/hierarchy_explorer.py
"""

from repro.core import figure1_experiment, render_rows
from repro.monotonicity import (
    AdditionKind,
    check_monotonicity,
    exhaustive_graph_pairs,
    witness_star_bounded_disjoint,
)
from repro.queries import star_query


def main() -> None:
    print("== Theorem 3.1 / Figure 1, regenerated ==")
    rows = figure1_experiment(max_i=2)
    print(render_rows(rows))
    failed = [row for row in rows if not row.ok]
    print(f"\n  {len(rows) - len(failed)}/{len(rows)} claims verified")
    assert not failed

    print("\n== Dissecting one separation: star[3] and the bounded classes ==")
    query = star_query(3)

    verdict = check_monotonicity(
        query,
        AdditionKind.DOMAIN_DISJOINT,
        exhaustive_graph_pairs(kind=AdditionKind.DOMAIN_DISJOINT, max_addition_size=2),
        bound=2,
    )
    print(f"  within M^2_disjoint? {verdict.describe()}")

    witness = witness_star_bounded_disjoint(2)
    print(f"  outside M^3_disjoint? {witness.describe()}")
    print(f"    I = {witness.base}")
    print(f"    J = {witness.addition}")
    print(
        "    Three domain-disjoint edges assemble a brand-new 3-spoke star,\n"
        "    emptying the output — but two edges never can.  Exactly the\n"
        "    boundary the bounded hierarchy of Figure 1 draws."
    )


if __name__ == "__main__":
    main()
