"""Declarative networking proper: a transducer whose four queries are
themselves Datalog programs, run under the exact operational semantics of
Section 4.1.3.

The transducer computes distributed transitive closure: every node gossips
the edges it knows, stores what it hears, and outputs the closure of its
local knowledge — the textbook monotone/coordination-free pattern of [13].
A second transducer shows the policy-aware extension of [32]: a node reads
its `policy_E` relation to *deduce absences* (Example 4.2's observation)
entirely in Datalog.

Run:  python examples/declarative_networking.py
"""

from repro.datalog import Instance, Schema, parse_facts, parse_program
from repro.queries import transitive_closure_query
from repro.transducers import (
    DatalogTransducer,
    FairScheduler,
    Network,
    TransducerNetwork,
    TransducerSchema,
    hash_policy,
    single_node_policy,
)


def gossip_tc_transducer() -> DatalogTransducer:
    schema = TransducerSchema(
        inputs=Schema({"E": 2}),
        outputs=Schema({"O": 2}),
        messages=Schema({"edge_msg": 2}),
        memory=Schema({"stored": 2}),
    )
    send = parse_program(
        """
        edge_msg(x, y) :- E(x, y).
        edge_msg(x, y) :- stored(x, y).
        """,
        output_relations=["edge_msg"],
        add_adom_rules=False,
    )
    insert = parse_program(
        "stored(x, y) :- edge_msg(x, y).",
        output_relations=["stored"],
        add_adom_rules=False,
    )
    out = parse_program(
        """
        Known(x, y) :- E(x, y).
        Known(x, y) :- stored(x, y).
        O(x, y) :- Known(x, y).
        O(x, z) :- O(x, y), Known(y, z).
        """,
        output_relations=["O"],
        add_adom_rules=False,
    )
    return DatalogTransducer(schema, out=out, insert=insert, send=send, name="gossip-tc")


def absence_observer_transducer() -> DatalogTransducer:
    """Example 4.2 in executable form: `policy_E(x, y)` without `E(x, y)`
    means the fact is globally absent — derivable by one Datalog rule."""
    schema = TransducerSchema(
        inputs=Schema({"E": 2}),
        outputs=Schema({"O": 2}),
        messages=Schema({"noop_msg": 1}),
        memory=Schema({}, allow_nullary=True),
    )
    out = parse_program(
        "O(x, y) :- policy_E(x, y), not E(x, y).",
        output_relations=["O"],
        add_adom_rules=False,
    )
    return DatalogTransducer(schema, out=out, name="absence-observer")


def main() -> None:
    instance = Instance(parse_facts("E(1,2). E(2,3). E(3,4). E(4,1)."))
    network = Network(["n1", "n2", "n3"])

    print("== Distributed TC, written in Datalog ==")
    policy = hash_policy(Schema({"E": 2}), network)
    run = TransducerNetwork(network, gossip_tc_transducer(), policy).new_run(instance)
    for node in run.nodes():
        print(f"  {node} starts with edges {sorted(f.values for f in run.local_input(node))}")
    output = run.run_to_quiescence(scheduler=FairScheduler(2))
    expected = transitive_closure_query()(instance)
    print(f"  output facts: {len(output)}; matches centralized TC: {output == expected}")
    print(
        f"  cost: {run.metrics.transitions} transitions, "
        f"{run.metrics.message_facts_sent} message-facts"
    )
    assert output == expected

    print("\n== Example 4.2: deducing global absences from policy_E ==")
    policy = single_node_policy(Schema({"E": 2}), network, "n1")
    run = TransducerNetwork(network, absence_observer_transducer(), policy).new_run(
        Instance(parse_facts("E(1,2)."))
    )
    run.heartbeat("n1")
    absences = run.state("n1").output
    print(f"  node n1 (responsible for everything) deduced {len(absences)} absences")
    print(f"  e.g. {absences.sorted_facts()[:4]}")
    assert len(absences) > 0


if __name__ == "__main__":
    main()
