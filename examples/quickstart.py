"""Quickstart: write a Datalog¬ program, let the CALM analyzer place it in
the paper's hierarchy, and run it coordination-free on a simulated network.

Run:  python examples/quickstart.py
"""

from repro.core import analyze, plan_distribution, run_distributed
from repro.datalog import Instance, evaluate, parse_facts, parse_program


def main() -> None:
    # The complement-of-transitive-closure query: which pairs of vertices
    # are NOT connected by a path?  Non-monotone, so classic CALM says it
    # needs coordination — the paper's refinement says: only a little.
    program = parse_program(
        """
        T(x, y) :- E(x, y).
        T(x, z) :- T(x, y), E(y, z).
        O(x, y) :- Adom(x), Adom(y), not T(x, y).
        """
    )

    print("== Static analysis ==")
    analysis = analyze(program)
    print(" ", analysis.describe())

    plan = plan_distribution(program)
    print(" ", plan.describe())

    instance = Instance(parse_facts("E(1,2). E(2,3). E(4,4)."))
    print("\n== Input ==")
    for fact in instance.sorted_facts():
        print("  ", fact)

    print("\n== Centralized evaluation ==")
    central = evaluate(program, instance)
    for fact in central.sorted_facts():
        print("  ", fact)

    print("\n== Distributed evaluation (3 nodes, domain-guided hashing) ==")
    distributed = run_distributed(program, instance, nodes=("n1", "n2", "n3"))
    for fact in distributed.sorted_facts():
        print("  ", fact)

    assert central == distributed
    print("\ndistributed output == centralized output: OK")


if __name__ == "__main__":
    main()
