"""The flagship scenario of the line of work this paper completes:
**win-move is coordination-free (sometimes)** [32].

The win-move game: positions with moves between them; a position is *won*
when some move leads to a lost position, *lost* when every move leads to a
won position (dead ends are lost), *drawn* otherwise.  The query "which
positions are won?" is non-monotone — yet domain-disjoint-monotone, so by
Theorem 4.4 it is coordination-free for domain-guided data distributions.

This script: solves a game under the well-founded semantics, distributes it
over a 3-node network with a domain-guided hash policy, runs the Theorem 4.4
protocol to quiescence, and exhibits the heartbeat-only witness that makes
the execution *coordination-free* in the formal sense of Definition 3.

Run:  python examples/winmove_distributed.py
"""

from repro.datalog import Instance, parse_facts, winmove_truths
from repro.queries import win_move_query
from repro.transducers import (
    FairScheduler,
    Network,
    TransducerNetwork,
    disjoint_protocol_transducer,
    domain_guided_policy,
    hash_domain_assignment,
    heartbeat_witness,
)


GAME = """
    Move(1,2). Move(2,1). Move(2,3).
    Move(4,5). Move(5,4).
    Move(6,7). Move(7,8). Move(8,9).
"""


def main() -> None:
    game = Instance(parse_facts(GAME))

    print("== The game, solved centrally (well-founded semantics) ==")
    won, drawn, lost = winmove_truths(game)
    print("  won:  ", sorted(f.values[0] for f in won))
    print("  drawn:", sorted(f.values[0] for f in drawn))
    print("  lost: ", sorted(f.values[0] for f in lost))

    query = win_move_query()
    network = Network(["alice", "bob", "carol"])
    policy = domain_guided_policy(
        query.input_schema, network, hash_domain_assignment(network)
    )
    transducer = disjoint_protocol_transducer(query)

    print("\n== Distributed run (domain-guided hash policy) ==")
    run = TransducerNetwork(network, transducer, policy).new_run(game)
    for node in run.nodes():
        print(f"  {node} initially holds {len(run.local_input(node))} Move facts")
    output = run.run_to_quiescence(scheduler=FairScheduler(7))
    print("  output:", sorted(f.values[0] for f in output))
    print(
        f"  cost: {run.metrics.transitions} transitions, "
        f"{run.metrics.message_facts_sent} message-facts, "
        f"{run.metrics.rounds} rounds"
    )
    assert output == query(game)
    print("  distributed output matches the well-founded solution: OK")

    print("\n== Coordination-freeness witness (Definition 3) ==")
    witness = heartbeat_witness(
        transducer, query, network, game, domain_guided=True
    )
    print(" ", witness.describe())
    assert witness.found


if __name__ == "__main__":
    main()
