"""Distributed garbage collection as a CALM case study.

A heap of objects is sharded across storage nodes; objects reference each
other across shards, and some objects are GC roots.  The collector must
find the *collectible* objects: those not reachable from any root.

Reachability from roots is monotone (coordination-free, F0) — but
*collectibility* is its complement, a non-monotone query.  Classic CALM
says it needs coordination.  The refinement reproduced in this repository
says: the program is **semi-connected**, so with a domain-guided sharding
(each object id owned by a shard that holds all facts mentioning it) the
collector runs coordination-free in the F2 sense — nodes wait only on the
data distribution, never on a global barrier.

Run:  python examples/distributed_gc.py
"""

from repro.core import analyze, plan_distribution, run_distributed
from repro.datalog import Instance, evaluate, parse_facts, parse_program

GC_PROGRAM = """
    Reachable(x) :- Root(x).
    Reachable(y) :- Reachable(x), Ref(x, y).
    O(x) :- Obj(x), not Reachable(x).
"""

HEAP = """
    Root(10).
    Obj(10). Obj(11). Obj(12). Obj(13). Obj(14).
    Ref(10, 11). Ref(11, 12).
    Ref(13, 14). Ref(14, 13).

    Root(20).
    Obj(20). Obj(21). Obj(22).
    Ref(20, 21). Ref(22, 22).
"""


def main() -> None:
    program = parse_program(GC_PROGRAM)
    heap = Instance(parse_facts(HEAP))

    print("== Collector analysis ==")
    analysis = analyze(program)
    print(" ", analysis.describe())
    plan = plan_distribution(program)
    print(" ", plan.describe())
    assert analysis.coordination_class == "F2"

    print("\n== Centralized mark & sweep ==")
    collectible = evaluate(program, heap)
    print("  collectible:", sorted(f.values[0] for f in collectible))

    print("\n== Distributed collection over 3 shards (domain-guided) ==")
    distributed = run_distributed(program, heap, nodes=("shard1", "shard2", "shard3"))
    print("  collectible:", sorted(f.values[0] for f in distributed))
    assert distributed == collectible
    print("  distributed == centralized: OK")

    print(
        "\n  Why it is sound to collect incrementally: collectibility is\n"
        "  domain-disjoint-monotone — objects in a *new* disjoint heap\n"
        "  region can never resurrect an old object, so a shard may sweep\n"
        "  as soon as its known region is complete."
    )


if __name__ == "__main__":
    main()
