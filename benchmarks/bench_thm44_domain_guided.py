"""THM4.4 — F2 = Mdisjoint.

Paper claim: a query is computable by a transducer network that is
coordination-free *under domain guidance* iff it is domain-disjoint-
monotone.
Measured, ⊇: the Theorem 4.4 handshake protocol computes coTC and win-move
(both in Mdisjoint, neither in Mdistinct) consistently under domain-guided
policies, each with a heartbeat-only witness.
Measured, ⊆: the triangles-unless-two-disjoint query ∉ Mdisjoint and the
relocation construction makes the protocol output a wrong triangle.
"""

from conftest import assert_rows_ok, run_once

from repro.core import render_rows, theorem44_experiment


def test_thm44_domain_guided(benchmark):
    rows = run_once(benchmark, theorem44_experiment)
    print("\nTHM4.4 — F2 = Mdisjoint:")
    print(render_rows(rows))
    assert_rows_ok(rows)
