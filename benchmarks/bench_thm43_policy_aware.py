"""THM4.3 — F1 = Mdistinct.

Paper claim: a query is computable by a coordination-free *policy-aware*
transducer network iff it is domain-distinct-monotone.
Measured, ⊇ (membership): the Theorem 4.3 absence-broadcast protocol
computes an SP-Datalog query (SP-Datalog ⊆ Mdistinct) consistently over
sampled networks / policies / schedules, with a heartbeat-only witness.
Measured, ⊆ (refutation): coTC ∉ Mdistinct, and the relocation construction
of the proof makes the same protocol output a wrong fact — so coTC ∉ F1.
"""

from conftest import assert_rows_ok, run_once

from repro.core import render_rows, theorem43_experiment


def test_thm43_policy_aware(benchmark):
    rows = run_once(benchmark, theorem43_experiment)
    print("\nTHM4.3 — F1 = Mdistinct:")
    print(render_rows(rows))
    assert_rows_ok(rows)
