"""SERVICE — load test of the multi-tenant query/analysis service.

Boots a real :class:`~repro.service.ReproService` (HTTP over a loopback
socket, bounded worker pool, per-tenant rate limiting, sqlite store) and
drives a concurrent multi-tenant workload through it:

* >= 3 tenants, each hammering from its own client threads;
* >= 200 POST /v1/runs total (the issue's floor; ``--requests`` scales);
* a program mix spanning the paper's routing table — monotone (M ->
  broadcast), semi-positive (Mdistinct -> policy-aware absence protocol,
  Thm 4.3), connected stratified (Mdisjoint -> domain-guided handshake,
  Thm 4.4) and a no-guarantee program (-> global All-barrier);
* for every coordination-free program, a **forced-barrier arm** of the
  same program + instance, so the store ends up holding both sides of
  the cost comparison.

429 responses are flow control, not failures: the client honors
``Retry-After`` and retries.  A request is **dropped** only if it never
reaches a 200 — the acceptance gate requires zero drops.

After the load, the gate checks come straight from the *store* (the
service's own records, not the client's view):

1. every stored fingerprint is byte-identical to a direct in-process
   ``repro eval`` of the same program + instance;
2. per program, the chosen coordination-free protocol finished in
   strictly less coordination — fewer (rounds, transitions) — than the
   forced All-barrier arm, which cannot end a round before explicit word
   from every node (message-fact volume is reported alongside: the
   Section-4 protocols pay in data-plane announcements instead);
3. per-tenant counts add up and no tenant sees another's runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py                # full: 240 POSTs
    PYTHONPATH=src python benchmarks/bench_service.py --smoke        # CI: 60 POSTs
    PYTHONPATH=src python benchmarks/bench_service.py --requests 400

The committed ``BENCH_service.json`` is produced by
``scripts/bench_report.py --service``, which runs this load and then
*queries the store* for every reported number.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.analyzer import query_for  # noqa: E402
from repro.datalog import Instance, parse_facts, parse_program  # noqa: E402
from repro.service import ReproService, RunStore, ServiceConfig  # noqa: E402
from repro.transducers.telemetry import output_fingerprint  # noqa: E402

#: The tenant -> (program, facts, has_cf_protocol) workload mix.  Facts are
#: sized so a request is meaningful work but the full load stays fast.
WORKLOAD = {
    "graph-team": (
        # M: transitive closure -> broadcast (F0)
        "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).",
        "E(1,2). E(2,3). E(3,4). E(4,5). E(5,6). E(2,7). E(7,8).",
        True,
    ),
    "absence-team": (
        # Mdistinct: semi-positive -> policy-aware absence protocol (Thm 4.3)
        "O(x, y) :- E(x, y), not Mark(y).",
        "E(1,2). E(2,3). E(3,4). E(4,1). Mark(3). Mark(9).",
        True,
    ),
    "strata-team": (
        # Mdisjoint: win-move under WFS -> domain-guided handshake (Thm 4.4)
        "Win(x) :- Move(x, y), not Win(y).\nO(x) :- Win(x).",
        "Move(1,2). Move(2,3). Move(3,4). Move(4,5). Move(5,6).",
        True,
    ),
    "cotc-team": (
        # Mdisjoint: complement-of-TC, connected stratified (con-Datalog)
        """
        T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).
        O(x,y) :- Adom(x), Adom(y), not T(x,y).
        """,
        "E(1,2). E(2,1). E(3,4). Adom(1). Adom(2). Adom(3). Adom(4).",
        True,
    ),
    "barrier-team": (
        # no guarantee -> global All-barrier (coordinating baseline)
        """
        T(x, y, z) :- E(x, y), E(y, z), E(z, x), y != x, y != z, x != z.
        D(x1) :- T(x1, x2, x3), T(y1, y2, y3),
                 x1 != y1, x1 != y2, x1 != y3,
                 x2 != y1, x2 != y2, x2 != y3,
                 x3 != y1, x3 != y2, x3 != y3.
        O(x) :- Adom(x), not D(x).
        """,
        "E(1,2). E(2,3). E(3,1). Adom(1). Adom(2). Adom(3). Adom(4).",
        False,
    ),
}


def _post(base: str, payload: dict, *, timeout: float = 120.0):
    request = urllib.request.Request(
        f"{base}/v1/runs",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def service_load_test(
    *,
    requests: int = 240,
    threads_per_tenant: int = 3,
    store_path: str | None = None,
    rate_limit: int = 200,
    rate_window: float = 1.0,
    workers: int = 4,
) -> dict:
    """Run the load; returns the result dict (see module docstring).

    The returned dict carries ``store_path`` — every gate number in it was
    read back from that store, and callers (``bench_report.py --service``)
    re-query it rather than trusting this summary.
    """
    if store_path is None:
        store_path = tempfile.mktemp(prefix="repro-bench-service-", suffix=".db")
    tenants = list(WORKLOAD)
    per_tenant = max(1, requests // len(tenants))
    total_planned = per_tenant * len(tenants)

    config = ServiceConfig(
        port=0,
        store_path=store_path,
        workers=workers,
        queue_capacity=128,
        rate_limit=rate_limit,
        rate_window=rate_window,
    )
    service = ReproService(config).start_in_thread()
    base = f"http://127.0.0.1:{service.port}"

    lock = threading.Lock()
    outcomes = {
        "ok": 0,
        "dropped": 0,
        "retries_429": 0,
        "retries_503": 0,
        "latencies": [],
        "failures": [],
    }

    def client(tenant: str, count: int) -> None:
        program, facts, has_cf = WORKLOAD[tenant]
        for index in range(count):
            # Interleave the barrier arm so both sides of the comparison
            # accumulate under identical load conditions, and pair the
            # scheduler seeds (index // 2) so both arms run the identical
            # seed multiset — the cost comparison is then paired, not
            # noise across different schedules.
            force = has_cf and index % 2 == 1
            payload = {
                "tenant": tenant,
                "program": program,
                "facts": facts,
                "force_barrier": force,
                "seed": index // 2,
            }
            started = time.perf_counter()
            for _attempt in range(60):
                status, body = _post(base, payload)
                if status == 429:
                    with lock:
                        outcomes["retries_429"] += 1
                    time.sleep(min(float(body.get("retry_after", 0.2)), 2.0))
                    continue
                if status == 503:
                    with lock:
                        outcomes["retries_503"] += 1
                    time.sleep(0.2)
                    continue
                break
            with lock:
                if status == 200 and body.get("status") == "ok":
                    outcomes["ok"] += 1
                    outcomes["latencies"].append(time.perf_counter() - started)
                else:
                    outcomes["dropped"] += 1
                    outcomes["failures"].append((tenant, status, body.get("error")))

    started = time.time()
    workers_list = []
    for tenant in tenants:
        share = per_tenant // threads_per_tenant
        extra = per_tenant - share * threads_per_tenant
        for index in range(threads_per_tenant):
            count = share + (extra if index == 0 else 0)
            thread = threading.Thread(target=client, args=(tenant, count))
            thread.start()
            workers_list.append(thread)
    for thread in workers_list:
        thread.join()
    wall_s = time.time() - started
    service.shutdown()

    # -- the gates: every number below is read back from the store --------
    store = RunStore(store_path)
    try:
        parity_failures = []
        direct = {}
        for tenant in tenants:
            program, facts, _ = WORKLOAD[tenant]
            query = query_for(parse_program(program))
            direct[tenant] = output_fingerprint(query(Instance(parse_facts(facts))))
            for summary in store.list_runs(tenant, limit=total_planned):
                if summary["output_fingerprint"] != direct[tenant]:
                    parity_failures.append((tenant, summary["run_id"]))

        per_tenant_counts = {
            row["tenant"]: row["runs"] for row in store.tenant_summary()
        }
        # Coordination cost = (rounds, transitions): the barrier pays in
        # global waiting rounds; the Section-4 protocols pay in data-plane
        # announcement facts (reported, not gated — see store docstring).
        comparison = store.coordination_comparison()
        cheaper = {}
        for row in comparison:
            if row["barrier"] is None or row["chosen"] is None:
                continue
            chosen, barrier = row["chosen"], row["barrier"]
            cheaper[row["fragment"]] = (
                chosen["mean_rounds"],
                chosen["mean_transitions"],
            ) < (barrier["mean_rounds"], barrier["mean_transitions"])
        stored_total = store.run_count()
        routing = store.routing_table()
    finally:
        store.close()

    latencies = outcomes["latencies"]
    return {
        "requests_planned": total_planned,
        "requests_ok": outcomes["ok"],
        "dropped": outcomes["dropped"],
        "retries_429": outcomes["retries_429"],
        "retries_503": outcomes["retries_503"],
        "failures": outcomes["failures"][:10],
        "tenants": len(tenants),
        "threads": len(workers_list),
        "wall_s": round(wall_s, 2),
        "throughput_rps": round(outcomes["ok"] / wall_s, 1) if wall_s else None,
        "latency_mean_s": round(statistics.mean(latencies), 4) if latencies else None,
        "latency_p95_s": round(
            sorted(latencies)[int(len(latencies) * 0.95) - 1], 4
        )
        if latencies
        else None,
        "stored_runs": stored_total,
        "per_tenant_runs": per_tenant_counts,
        "fingerprint_parity": not parity_failures,
        "parity_failures": parity_failures[:10],
        "coordination_comparison": comparison,
        "cf_cheaper_than_barrier": cheaper,
        "routing_table": routing,
        "store_path": store_path,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=240)
    parser.add_argument(
        "--smoke", action="store_true", help="CI preset: 60 POSTs (overrides --requests)"
    )
    parser.add_argument("--store", default=None, help="sqlite store path to keep")
    args = parser.parse_args(argv)
    requests = 60 if args.smoke else args.requests

    data = service_load_test(requests=requests, store_path=args.store)
    print(
        f"{data['requests_ok']}/{data['requests_planned']} ok across "
        f"{data['tenants']} tenants / {data['threads']} threads in "
        f"{data['wall_s']}s ({data['throughput_rps']} req/s, "
        f"p95 {data['latency_p95_s']}s, {data['retries_429']} rate-limited retries)"
    )
    failures = []
    if data["dropped"]:
        failures.append(f"{data['dropped']} dropped requests: {data['failures']}")
    if not data["fingerprint_parity"]:
        failures.append(f"fingerprint mismatches: {data['parity_failures']}")
    for fragment, ok in sorted(data["cf_cheaper_than_barrier"].items()):
        marker = "ok" if ok else "NOT CHEAPER"
        print(f"  {fragment}: coordination-free vs barrier {marker}")
        if not ok:
            failures.append(f"{fragment}: chosen protocol not cheaper than barrier")
    if not data["cf_cheaper_than_barrier"]:
        failures.append("no coordination comparison rows recorded")
    if failures:
        print("FAILURES:\n  " + "\n  ".join(failures))
        return 1
    print(f"store: {data['store_path']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
