"""SCEN — scenario workloads end to end: one per hierarchy level.

Routing (M / F0), distributed GC (Mdisjoint via con-Datalog¬ / F2) and
deadlock detection (Mdisjoint via connected WFS / F2) each run the full
pipeline — analyze, pick the protocol, distribute over three nodes, verify
against centralized evaluation — at two input sizes, with the protocol
cost recorded.
"""

import pytest
from conftest import run_once

from repro.core import analyze, plan_distribution, run_distributed
from repro.queries.scenarios import SCENARIOS, scenario


@pytest.mark.parametrize("name", [s.name for s in SCENARIOS])
def test_scenario_placement(benchmark, name):
    entry = scenario(name)

    def placement():
        analysis = analyze(entry.program)
        plan = plan_distribution(entry.program)
        return analysis, plan

    analysis, plan = run_once(benchmark, placement)
    print(f"\nSCEN[{name}] — {entry.description}")
    print(f"  {plan.describe()}")
    assert analysis.fragment == entry.expected_fragment
    assert analysis.monotonicity == entry.expected_class


@pytest.mark.parametrize("name,size", [(s.name, size) for s in SCENARIOS for size in (10, 24)])
def test_scenario_distributed(benchmark, name, size):
    entry = scenario(name)
    instance = entry.generate(size, seed=size)
    plan = plan_distribution(entry.program)
    expected = plan.query(instance)

    def distributed():
        return run_distributed(entry.program, instance, seed=1)

    output = run_once(benchmark, distributed)
    assert output == expected
    print(
        f"\nSCEN[{name}] size={size}: |I|={len(instance)}, "
        f"|Q(I)|={len(expected)} — distributed == centralized"
    )
