"""THM5.4 — semi-connected wILOG¬ and Mdisjoint.

Paper claim: semi-connected weakly safe ILOG¬ computes precisely Mdisjoint.
The capture direction is a simulation argument; the reproducible half is the
containment: semicon-wILOG¬ queries are domain-disjoint-monotone, value
invention included.  Also exercised: weak-safety analysis (unsafe programs
leak Skolem terms; weakly safe ones never do) and divergence detection.
"""

import pytest
from conftest import run_once

from repro.datalog import Instance, parse_facts
from repro.ilog import (
    DivergenceError,
    diverging_counter,
    evaluate_ilog,
    is_weakly_safe,
    tc_with_witnesses,
    unsafe_leak,
)


def test_thm54_wilog_containment(benchmark):
    from repro.core import render_rows, theorem54_experiment

    rows = run_once(benchmark, theorem54_experiment)
    print("\nTHM5.4 — (semi-connected) wILOG¬ and Mdisjoint:")
    print(render_rows(rows))
    assert all(row.ok for row in rows), "\n".join(
        f"{row.claim}: {row.detail}" for row in rows if not row.ok
    )


def test_thm54_safety_boundary(benchmark):
    """Weak safety separates programs whose outputs stay invention-free."""

    def boundary():
        assert is_weakly_safe(tc_with_witnesses())
        assert not is_weakly_safe(unsafe_leak())
        with pytest.raises(DivergenceError):
            evaluate_ilog(
                diverging_counter(), Instance(parse_facts("Start(1).")), max_depth=5
            )
        return True

    assert run_once(benchmark, boundary)
    print("\nTHM5.4 — weak-safety + divergence boundary checks passed")
