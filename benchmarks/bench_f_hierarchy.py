"""F-HIER — the strict hierarchy F0 ⊊ F1 ⊊ F2 ⊊ C of coordination-free
classes ([32], completed by this paper's monotonicity characterizations).

Each level's membership is demonstrated by its protocol; each strictness by
a monotonicity violation of the matching kind (sound exclusions because
F0 = M, F1 = Mdistinct, F2 = Mdisjoint — Theorems 4.3/4.4 + [13]).
"""

from conftest import assert_rows_ok, run_once

from repro.core import hierarchy_f_experiment, render_rows


def test_f_hierarchy(benchmark):
    rows = run_once(benchmark, hierarchy_f_experiment)
    print("\nF-HIER — F0 ⊊ F1 ⊊ F2 ⊊ C:")
    print(render_rows(rows))
    assert_rows_ok(rows)
