"""ENGINE — microbenchmarks for the compiled-plan engine and the
incremental transducer runtime.

Unlike the paper-artifact benchmarks (one verification run each), these are
honest microbenchmarks: small, join-heavy workloads measured over several
rounds so that ``scripts/bench_report.py`` can A/B them against the legacy
engine (``REPRO_DISABLE_PLANS=1 REPRO_DISABLE_QUERY_CACHE=1``) and distill
the speedups into the committed ``BENCH_engine.json``.

Workloads:

* transitive closure (the canonical two-rule recursive join) at three
  seeded random-graph sizes, the largest matching bench_scaling's 40-node /
  120-edge shape; the default rows run the interned columnar kernel (the
  default engine), and the ``_plans`` rows pin the kernel off so the
  compiled tuple-plan engine stays separately visible in the A/B record;
* win-move through the well-founded solver (negation + alternating
  fixpoint, so the doubled program exercises plans under Datalog¬);
* one Section-4 protocol driven to quiescence (end-to-end transducer cost);
* the heartbeat-heavy chaos sweep — HeartbeatStormScheduler schedules are
  dominated by transitions that deliver zero new facts, exactly the case
  the fingerprint step-cache memoizes;
* the default mixed chaos-confluence sweep (a smaller copy of
  bench_chaos_confluence's adversary) as the "realistic mix" datapoint.

``BENCH_ENGINE_SMOKE=1`` shrinks sizes and rounds for CI smoke runs.
Every workload asserts its output against an engine-independent expectation
so an A/B run that diverges fails loudly instead of timing garbage.
"""

from __future__ import annotations

import os
import random

from repro.datalog import (
    Fact,
    Instance,
    SemiNaiveEvaluator,
    evaluate_well_founded,
    parse_program,
    winmove_program,
)
from repro.queries import random_game_graph
from repro.transducers import (
    CHAOS_PLAN,
    FairScheduler,
    FaultyChannel,
    Network,
    TransducerNetwork,
    chaos_scheduler_zoo,
    output_fingerprint,
    section4_protocols,
)
from repro.transducers.faults import HeartbeatStormScheduler

SMOKE = os.environ.get("BENCH_ENGINE_SMOKE", "").lower() in {"1", "true", "yes"}
ROUNDS = 1 if SMOKE else 3
NETWORK = Network(["n1", "n2", "n3"])

TC_PROGRAM = parse_program(
    "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).",
    output_relations=["T"],
)

# (nodes, edges) -> closure size for seed 42; recomputed once below and
# asserted every round so both engine variants must agree on the output.
TC_SIZES = [(10, 20), (40, 120)] if SMOKE else [(10, 20), (40, 120), (70, 210)]


def random_edges(nodes: int, edges: int, seed: int = 42) -> Instance:
    rng = random.Random(seed)
    return Instance(
        Fact("E", (f"n{rng.randrange(nodes)}", f"n{rng.randrange(nodes)}"))
        for _ in range(edges)
    )


def tc_closure(instance: Instance) -> Instance:
    return SemiNaiveEvaluator(TC_PROGRAM, check_semipositive=False).run(instance)


def tc_closure_plans(instance: Instance) -> Instance:
    """Transitive closure with the kernel pinned off: measures the compiled
    tuple-plan engine even though the kernel is the default dispatch."""
    from repro.kernel import engine as kernel_engine

    saved = kernel_engine.KERNEL_ENABLED
    kernel_engine.KERNEL_ENABLED = False
    try:
        return tc_closure(instance)
    finally:
        kernel_engine.KERNEL_ENABLED = saved


def _measure(benchmark, fn, *args, iters: int = 1):
    """Pedantic measurement; sub-50ms workloads pass iters > 1 so each round
    is long enough to rise above timer jitter (smoke mode stays at 1)."""
    iterations = 1 if SMOKE else iters
    return benchmark.pedantic(
        fn, args=args, rounds=ROUNDS, iterations=iterations, warmup_rounds=1
    )


def test_tc_small(benchmark):
    instance = random_edges(*TC_SIZES[0])
    expected = len(tc_closure(instance))
    result = _measure(benchmark, tc_closure, instance, iters=20)
    assert len(result) == expected


def test_tc_medium(benchmark):
    instance = random_edges(*TC_SIZES[1])
    expected = len(tc_closure(instance))
    result = _measure(benchmark, tc_closure, instance, iters=8)
    assert len(result) == expected


def test_tc_large(benchmark):
    nodes, edges = TC_SIZES[-1]
    instance = random_edges(nodes, edges)
    expected = len(tc_closure(instance))
    result = _measure(benchmark, tc_closure, instance, iters=3)
    assert len(result) == expected


def test_tc_medium_plans(benchmark):
    instance = random_edges(*TC_SIZES[1])
    expected = len(tc_closure(instance))
    result = _measure(benchmark, tc_closure_plans, instance, iters=8)
    assert len(result) == expected


def test_tc_large_plans(benchmark):
    nodes, edges = TC_SIZES[-1]
    instance = random_edges(nodes, edges)
    expected = len(tc_closure(instance))
    result = _measure(benchmark, tc_closure_plans, instance, iters=3)
    assert len(result) == expected


def test_winmove_small(benchmark):
    game = random_game_graph(14, 30, seed=7)
    program = winmove_program()
    expected = evaluate_well_founded(program, game)
    model = _measure(benchmark, evaluate_well_founded, program, game, iters=10)
    assert model.true == expected.true and model.undefined == expected.undefined


def test_winmove_medium(benchmark):
    game = random_game_graph(24 if SMOKE else 34, 50 if SMOKE else 80, seed=21)
    program = winmove_program()
    expected = evaluate_well_founded(program, game)
    model = _measure(benchmark, evaluate_well_founded, program, game, iters=5)
    assert model.true == expected.true and model.undefined == expected.undefined


def protocol_run():
    """One Section-4 protocol bundle driven to quiescence on a fair schedule."""
    bundle = section4_protocols()[0]
    run = TransducerNetwork(NETWORK, bundle.transducer, bundle.policy(NETWORK)).new_run(
        bundle.instance
    )
    output = run.run_to_quiescence(scheduler=FairScheduler(0))
    return output_fingerprint(output)


def test_protocol_quiescence(benchmark):
    expected = output_fingerprint(section4_protocols()[0].expected())
    fingerprint = _measure(benchmark, protocol_run, iters=5)
    assert fingerprint == expected


def heartbeat_sweep(schedules: int, storms: int = 6) -> list[str]:
    """Section-4 protocols under heartbeat storms + fault-injecting channels.

    Heartbeat transitions deliver zero new facts, so the db-fingerprint
    step cache should absorb almost all of them; this is the workload the
    >= 3x acceptance target is measured on."""
    prints = []
    for bundle in section4_protocols():
        policy = bundle.policy(NETWORK)
        for seed in range(schedules):
            run = TransducerNetwork(NETWORK, bundle.transducer, policy).new_run(
                bundle.instance, channel=FaultyChannel(CHAOS_PLAN, seed)
            )
            output = run.run_to_quiescence(
                scheduler=HeartbeatStormScheduler(seed, storms=storms)
            )
            prints.append(output_fingerprint(output))
    return prints


def test_heartbeat_heavy_chaos(benchmark):
    schedules = 2 if SMOKE else 8
    expected = [
        output_fingerprint(bundle.expected())
        for bundle in section4_protocols()
        for _ in range(schedules)
    ]
    prints = _measure(benchmark, heartbeat_sweep, schedules)
    assert prints == expected, "heartbeat sweep diverged from Q(I)"


def mixed_chaos_sweep(schedules: int) -> list[str]:
    """The bench_chaos_confluence adversary in miniature: every scheduler in
    the zoo paired with a seeded faulty channel."""
    prints = []
    for bundle in section4_protocols():
        policy = bundle.policy(NETWORK)
        zoo_len = len(chaos_scheduler_zoo(0))
        for seed in range(schedules):
            scheduler = chaos_scheduler_zoo(seed)[seed % zoo_len]
            run = TransducerNetwork(NETWORK, bundle.transducer, policy).new_run(
                bundle.instance, channel=FaultyChannel(CHAOS_PLAN, seed)
            )
            output = run.run_to_quiescence(scheduler=scheduler)
            prints.append(output_fingerprint(output))
    return prints


def test_mixed_chaos(benchmark):
    schedules = 2 if SMOKE else 5
    expected = [
        output_fingerprint(bundle.expected())
        for bundle in section4_protocols()
        for _ in range(schedules)
    ]
    prints = _measure(benchmark, mixed_chaos_sweep, schedules)
    assert prints == expected, "mixed chaos sweep diverged from Q(I)"
