"""The cluster divergence gate: async runtime vs. synchronous simulator.

For every gate workload (Section-4 protocol bundles, the barrier baseline,
and every planned query-zoo program) this sweep:

1. runs the synchronous simulator under all six schedulers and asserts a
   single output fingerprint (the confluence guarantee, sync side);
2. runs the asynchronous cluster for every seed × transport × fault/crash
   mode and asserts the same fingerprint (the gate).  Crash mode layers
   checkpoint/WAL crash-recovery on top of the message chaos; every crash
   run must exercise at least one actual recovery.

The full sweep (default: 20 seeds × {memory, tcp} × {clean, chaos,
chaos+crash}) is what produces the committed ``BENCH_cluster.json``; CI
re-runs a smoke subset (``--smoke``: 5 seeds) on every push and validates
the committed artifact's shape.  Exit status is non-zero on any
divergence.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py            # full, 20 seeds
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke    # 5 seeds
    PYTHONPATH=src python benchmarks/bench_cluster.py --seeds 3 --transports memory
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.gate import (  # noqa: E402
    GATE_NETWORK_NODES,
    check_workload,
    gate_workloads,
)
from repro.cluster.transport import TRANSPORT_NAMES  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def run_gate(
    *,
    seeds: int,
    transports: list[str],
    fault_modes: list[bool],
    crash_modes: list[bool] | None = None,
    keys: list[str] | None = None,
) -> dict:
    if crash_modes is None:
        crash_modes = [False, True]
    workloads = gate_workloads()
    if keys:
        workloads = tuple(w for w in workloads if w.key in keys)
    verdicts = []
    total_runs = 0
    started = time.time()
    for workload in workloads:
        t0 = time.time()
        verdict = check_workload(
            workload,
            seeds=range(seeds),
            transports=transports,
            fault_modes=fault_modes,
            crash_modes=crash_modes,
        )
        verdicts.append(verdict)
        total_runs += verdict.runs
        status = "ok" if verdict.passed else "DIVERGED"
        print(
            f"  {workload.key:28s} {status:8s} "
            f"{verdict.runs:4d} runs  {time.time() - t0:5.1f}s",
            flush=True,
        )
    return {
        "suite": "cluster-divergence-gate",
        "date": datetime.date.today().isoformat(),
        "network": list(GATE_NETWORK_NODES),
        "seeds": seeds,
        "transports": transports,
        "fault_modes": fault_modes,
        "crash_modes": crash_modes,
        "workloads": [v.to_dict() for v in verdicts],
        "total_runs": total_runs,
        "elapsed_seconds": round(time.time() - started, 1),
        "passed": all(v.passed for v in verdicts),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=20, help="seeds per (transport, faults) cell"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 5 seeds (overrides --seeds)",
    )
    parser.add_argument(
        "--transports",
        nargs="+",
        choices=sorted(TRANSPORT_NAMES),
        default=sorted(TRANSPORT_NAMES),
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        metavar="KEY",
        help="restrict to these workload keys (default: all)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the result JSON (default: {DEFAULT_OUTPUT.name})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="print only; do not write JSON"
    )
    args = parser.parse_args(argv)
    seeds = 5 if args.smoke else args.seeds
    print(
        f"divergence gate: {seeds} seeds x {args.transports} x "
        f"{{clean, chaos, chaos+crash}}",
        flush=True,
    )
    payload = run_gate(
        seeds=seeds,
        transports=list(args.transports),
        fault_modes=[False, True],
        crash_modes=[False, True],
        keys=args.workloads,
    )
    if not args.no_write:
        args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    print(
        f"{payload['total_runs']} cluster runs, "
        f"{'all matched' if payload['passed'] else 'DIVERGENCES FOUND'} "
        f"({payload['elapsed_seconds']}s)"
    )
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
