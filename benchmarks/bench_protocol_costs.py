"""PROTO — protocol cost profiles (the Section 4.3 discussion, quantified).

Paper discussion: the three evaluation strategies are increasingly
"knowledge-hungry" — M broadcasts facts, Mdistinct additionally broadcasts
absences, Mdisjoint runs per-value handshakes.  None coordinates globally,
but the richer classes pay more data-driven messaging.
Measured: transitions / message-facts / rounds for the three protocols on a
fixed input as the network grows.  Expected shape: broadcast cheapest,
distinct and disjoint higher and growing faster with node count.
"""

from conftest import run_once

from repro.core import protocol_cost_sweep, protocol_size_sweep


def test_protocol_cost_sweep(benchmark):
    results = run_once(
        benchmark, protocol_cost_sweep, node_counts=(1, 2, 3, 4), edge_count=8
    )
    print("\nPROTO — protocol cost profile (8-edge graph):")
    print(f"  {'protocol':<20} {'nodes':>5} {'transitions':>12} {'msg-facts':>10} {'rounds':>7}")
    table = {}
    for label, nodes, metrics in results:
        table[(label, nodes)] = metrics
        print(
            f"  {label:<20} {nodes:>5} {metrics.transitions:>12} "
            f"{metrics.message_facts_sent:>10} {metrics.rounds:>7}"
        )

    # Shape assertions: single-node runs are silent; broadcast is the
    # cheapest strategy at every multi-node size.
    for label in ("broadcast/M", "distinct/Mdistinct", "disjoint/Mdisjoint"):
        assert table[(label, 1)].message_facts_sent == 0
    for nodes in (2, 3, 4):
        broadcast = table[("broadcast/M", nodes)].message_facts_sent
        assert broadcast < table[("distinct/Mdistinct", nodes)].message_facts_sent
        assert broadcast < table[("disjoint/Mdisjoint", nodes)].message_facts_sent

    # Message cost grows with the network for the policy-aware protocols.
    assert (
        table[("distinct/Mdistinct", 4)].message_facts_sent
        > table[("distinct/Mdistinct", 2)].message_facts_sent
    )
    assert (
        table[("disjoint/Mdisjoint", 4)].message_facts_sent
        > table[("disjoint/Mdisjoint", 2)].message_facts_sent
    )


def test_protocol_size_sweep(benchmark):
    results = run_once(
        benchmark, protocol_size_sweep, edge_counts=(4, 8, 16), nodes=3
    )
    print("\nPROTO — protocol cost vs. instance size (3 nodes):")
    print(f"  {'protocol':<20} {'edges':>5} {'transitions':>12} {'msg-facts':>10}")
    table = {}
    for label, edges, metrics in results:
        table[(label, edges)] = metrics
        print(
            f"  {label:<20} {edges:>5} {metrics.transitions:>12} "
            f"{metrics.message_facts_sent:>10}"
        )
    # Message cost grows with the input for every protocol:
    for label in ("broadcast/M", "distinct/Mdistinct", "disjoint/Mdisjoint"):
        assert (
            table[(label, 16)].message_facts_sent
            > table[(label, 4)].message_facts_sent
        )
