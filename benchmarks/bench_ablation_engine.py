"""ABL — engine design-choice ablations called out in DESIGN.md.

(a) Semi-naive vs naive fixpoint evaluation: the delta-driven evaluator
    should beat re-deriving everything per round on recursive workloads.
(b) Doubled-program vs direct alternating fixpoint for the well-founded
    semantics: equivalent results, comparable cost — the doubled program is
    a *structural* device (it preserves connectivity), not an optimization.
"""

from conftest import run_once

from repro.datalog import (
    Instance,
    evaluate_doubled,
    evaluate_well_founded,
    immediate_consequence,
    parse_program,
    winmove_program,
)
from repro.datalog.evaluation import SemiNaiveEvaluator
from repro.queries import random_game_graph, random_graph

TC = parse_program(
    "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).", output_relations=["T"]
)


def naive_fixpoint(program, instance):
    current = instance
    while True:
        following = immediate_consequence(program, current)
        if following == current:
            return current
        current = following


def test_ablation_semi_naive(benchmark):
    instance = random_graph(30, 60, seed=5)
    import time

    start = time.perf_counter()
    naive = naive_fixpoint(TC, instance)
    naive_seconds = time.perf_counter() - start

    evaluator = SemiNaiveEvaluator(TC)
    result = benchmark(lambda: evaluator.run(instance))
    assert result == naive
    print(
        f"\nABL(a) — naive fixpoint: {naive_seconds * 1e3:.1f} ms on a "
        f"30-node/60-edge graph (semi-naive time is the benchmark figure; "
        f"expect a clear win for semi-naive)"
    )


def test_ablation_doubled_program(benchmark):
    program = winmove_program()
    game = random_game_graph(25, 50, seed=8)

    def both():
        direct = evaluate_well_founded(program, game)
        doubled = evaluate_doubled(program, game)
        assert direct.true == doubled.true
        assert direct.undefined == doubled.undefined
        return direct

    model = run_once(benchmark, both)
    print(
        f"\nABL(b) — doubled program ≡ alternating fixpoint on a 25-position "
        f"game ({len(model.true)} true facts, {len(model.undefined)} undefined)"
    )
