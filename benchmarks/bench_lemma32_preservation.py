"""L3.2 — H ⊊ Hinj = M ⊊ E = Mdistinct.

Paper claim (Lemma 3.2): the preservation classes line up with the
monotonicity classes; in particular E = Mdistinct because J is an induced
subinstance of I iff I \\ J is domain distinct from J.
Measured: the E-condition and the Mdistinct-condition agree pair by pair on
an exhaustive family; TC separates H from nothing here but witnesses the
positive memberships; coTC refutes Hinj and E.
"""

from conftest import run_once

from repro.monotonicity import (
    AdditionKind,
    exhaustive_graph_pairs,
    preserved_under_extensions_on,
    preserved_under_homomorphism_on,
    preserved_under_injective_homomorphism_on,
    violation_on,
)
from repro.queries import complement_tc_query, transitive_closure_query


def lemma32_agreement():
    tc = transitive_closure_query()
    cotc = complement_tc_query()
    pairs = list(
        exhaustive_graph_pairs(
            max_base_nodes=2,
            max_base_edges=3,
            kind=AdditionKind.DOMAIN_DISTINCT,
            max_addition_size=1,
        )
    )
    agreements = 0
    for query in (tc, cotc):
        for base, addition in pairs:
            whole = base | addition
            distinct_ok = violation_on(query, base, addition) is None
            extension_ok = preserved_under_extensions_on(query, whole, base)
            assert distinct_ok == extension_ok
            agreements += 1
    # Hinj = M on a spot check: the Theorem 3.1 coTC witness violates the
    # monotonicity condition AND the injective-homomorphism condition on
    # the same (I, I ∪ J) pair — the Lemma 3.2 equality in action.
    from repro.monotonicity import witness_cotc_not_distinct

    witness = witness_cotc_not_distinct()
    assert violation_on(cotc, witness.base, witness.addition) is not None
    ok, _ = preserved_under_injective_homomorphism_on(
        cotc, witness.base, witness.base | witness.addition
    )
    assert not ok
    return agreements


def test_lemma32_preservation(benchmark):
    agreements = run_once(benchmark, lemma32_agreement)
    print(f"\nL3.2 — E = Mdistinct agreed on {agreements} (query, pair) checks")
    assert agreements > 100


def test_lemma32_h_strictness(benchmark):
    """H ⊊ Hinj: the Datalog(≠) query 'edges between distinct endpoints' is
    monotone (= Hinj) but NOT preserved under arbitrary homomorphisms — the
    collapse homomorphism merges the endpoints and kills the output.  Also
    spot-checks Datalog ⊆ H on TC (Figure 2's folklore row)."""
    from repro.datalog import Instance, parse_facts
    from repro.queries import DatalogQuery, zoo_program

    def strictness():
        neq = DatalogQuery(zoo_program("neq-pairs"), "neq-pairs")
        source = Instance(parse_facts("E(1,2)."))
        collapsed = Instance(parse_facts("E(3,3)."))
        not_h, collapse_map = preserved_under_homomorphism_on(neq, source, collapsed)
        in_hinj, _ = preserved_under_injective_homomorphism_on(
            neq, source, source | Instance(parse_facts("E(4,5)."))
        )

        tc = transitive_closure_query()
        bigger = Instance(parse_facts("E(7,7)."))
        tc_in_h, _ = preserved_under_homomorphism_on(tc, source, bigger)
        return not_h, collapse_map, in_hinj, tc_in_h

    not_h, collapse_map, in_hinj, tc_in_h = run_once(benchmark, strictness)
    print("\nL3.2 — H ⊊ Hinj:")
    print(f"  neq-pairs ∉ H (collapse {collapse_map} kills O(1,2)): {not not_h}")
    print(f"  neq-pairs ∈ Hinj on the extension spot check: {in_hinj}")
    print(f"  TC ∈ H on the collapse spot check (Datalog ⊆ H): {tc_in_h}")
    assert not not_h       # the homomorphism condition FAILS
    assert in_hinj         # the injective condition holds
    assert tc_in_h         # positive Datalog is preserved under homs
