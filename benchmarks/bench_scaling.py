"""SCALE — substrate scaling sweeps and the multi-process scaling curve.

Not a paper figure: these measure the reproduction's own substrates so the
protocol measurements elsewhere can be put in perspective — how much of a
distributed run's cost is the Datalog engine vs the network simulation.

(a) semi-naive TC across growing random graphs;
(b) well-founded win-move across growing random games;
(c) the disjoint protocol across growing inputs and node counts (the
    single-process baseline for the process-runtime curve);
(d) the process-runtime scaling curve: one OS process per node, a fixed
    partitionable workload sharded by the block domain assignment, wall
    clock at 1→N workers plus one real-SIGKILL recovery run.
    :func:`scaling_sweep` is the measurement ``scripts/bench_report.py
    --scaling`` commits as ``BENCH_scaling.json``.
"""

import time

import pytest
from conftest import run_once

from repro.datalog import winmove_program
from repro.datalog.evaluation import SemiNaiveEvaluator
from repro.datalog.wellfounded import evaluate_well_founded
from repro.datalog.parser import parse_program
from repro.queries import complement_tc_query, random_game_graph, random_graph
from repro.transducers import (
    FairScheduler,
    Network,
    TransducerNetwork,
    disjoint_protocol_transducer,
    domain_guided_policy,
    hash_domain_assignment,
)

TC = parse_program(
    "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).", output_relations=["T"]
)


@pytest.mark.parametrize("nodes,edges", [(10, 20), (20, 50), (40, 120)])
def test_scaling_tc(benchmark, nodes, edges):
    instance = random_graph(nodes, edges, seed=nodes)
    evaluator = SemiNaiveEvaluator(TC)
    result = benchmark(lambda: evaluator.run(instance))
    closure = {f for f in result if f.relation == "T"}
    print(f"\nSCALE(a) TC: {nodes} nodes / {edges} edges -> {len(closure)} pairs")


@pytest.mark.parametrize("positions,moves", [(15, 30), (30, 70), (60, 150)])
def test_scaling_winmove(benchmark, positions, moves):
    game = random_game_graph(positions, moves, seed=positions)
    program = winmove_program()
    model = benchmark(lambda: evaluate_well_founded(program, game))
    print(
        f"\nSCALE(b) win-move: {positions} positions -> "
        f"{len(model.true)} true, {len(model.undefined)} undefined"
    )


@pytest.mark.parametrize("nodes", [2, 3, 5])
@pytest.mark.parametrize("edges", [4, 8, 12])
def test_scaling_disjoint_protocol(benchmark, nodes, edges):
    cotc = complement_tc_query()
    instance = random_graph(6, edges, seed=edges)
    network = Network([f"n{i + 1}" for i in range(nodes)])
    policy = domain_guided_policy(
        cotc.input_schema, network, hash_domain_assignment(network)
    )

    def distributed():
        run = TransducerNetwork(
            network, disjoint_protocol_transducer(cotc), policy
        ).new_run(instance)
        output = run.run_to_quiescence(scheduler=FairScheduler(0))
        return output, run.metrics

    (output, metrics) = run_once(benchmark, distributed)
    assert output == cotc(instance)
    print(
        f"\nSCALE(c) disjoint protocol: {edges} edges / {nodes} nodes -> "
        f"{metrics.transitions} transitions, {metrics.message_facts_sent} msg-facts"
    )


# ----------------------------------------------------------------------
# (d) the multi-process scaling curve
# ----------------------------------------------------------------------

#: The committed curve's worker counts (BENCH_scaling.json).
SCALING_WORKERS = (1, 2, 4)


def scaling_sweep(
    workers=SCALING_WORKERS,
    *,
    components: int = 24,
    size: int = 120,
    kill: bool = True,
    # The block-sharded workload is fully partitioned: a non-initiator
    # worker quiesces in ONE transition, so the SIGKILL probe must fire on
    # the first one or the kill run would silently test nothing.
    kill_after: int = 1,
    timeout: float = 240.0,
) -> dict:
    """Measure the process runtime's wall clock at each worker count on the
    fixed partitionable workload, asserting every run byte-identical to the
    centralized Q(I), plus (``kill``) one run with a real worker SIGKILL +
    WAL-replay recovery at the largest worker count.

    Returns the ``BENCH_scaling.json`` sweep payload.
    """
    from repro.cluster.procs import (
        ProcessCluster,
        scaling_workload,
        workload_spec_for,
    )
    from repro.transducers.telemetry import output_fingerprint

    workload = scaling_workload(components=components, size=size)
    expected = output_fingerprint(workload.expected())
    spec = workload_spec_for(workload)
    points = []
    for count in workers:
        cluster = ProcessCluster(
            spec, workload.instance, processes=count, timeout=timeout
        )
        started = time.perf_counter()
        output = cluster.run_to_quiescence()
        wall = time.perf_counter() - started
        fingerprint = output_fingerprint(output)
        points.append(
            {
                "workers": count,
                "wall_s": round(wall, 3),
                "fingerprint_ok": fingerprint == expected,
                "output_facts": len(output),
                "transitions": cluster.metrics.transitions,
                "token_probes": cluster.token_probes,
            }
        )
    baseline = points[0]["wall_s"]
    speedups = {
        str(point["workers"]): round(baseline / point["wall_s"], 2)
        for point in points
    }
    recovery = None
    if kill:
        count = max(workers)
        nodes = tuple(f"n{i + 1}" for i in range(count))
        cluster = ProcessCluster(
            spec,
            workload.instance,
            processes=count,
            kill_node=nodes[1 % len(nodes)],
            kill_after=kill_after,
            timeout=timeout,
        )
        started = time.perf_counter()
        output = cluster.run_to_quiescence()
        recovery = {
            "workers": count,
            "wall_s": round(time.perf_counter() - started, 3),
            "fingerprint_ok": output_fingerprint(output) == expected,
            "crashes": cluster.crashes,
            "recoveries": cluster.recoveries,
            "wal_replayed": cluster.wal_replayed,
        }
    return {
        "workload": workload.key,
        "input_facts": len(workload.instance),
        "expected_fingerprint": expected,
        "workers": list(workers),
        "points": points,
        "speedups": speedups,
        "recovery": recovery,
    }


def test_scaling_process_sweep(benchmark):
    """Smoke-sized process sweep: fingerprints identical at every worker
    count and the real-kill run recovers.  (The committed full-size curve
    is produced by ``scripts/bench_report.py --scaling``.)"""
    data = run_once(
        benchmark,
        lambda: scaling_sweep(
            workers=(1, 2), components=6, size=30, kill=True, timeout=120.0
        ),
    )
    assert all(point["fingerprint_ok"] for point in data["points"])
    assert data["recovery"]["fingerprint_ok"]
    assert data["recovery"]["crashes"] >= 1
    assert data["recovery"]["recoveries"] >= 1
    assert data["recovery"]["wal_replayed"] >= 1
    print(
        f"\nSCALE(d) process sweep: {data['workload']} -> "
        + ", ".join(f"{p['workers']}w={p['wall_s']}s" for p in data["points"])
    )
