"""SCALE — substrate scaling sweeps.

Not a paper figure: these measure the reproduction's own substrates so the
protocol measurements elsewhere can be put in perspective — how much of a
distributed run's cost is the Datalog engine vs the network simulation.

(a) semi-naive TC across growing random graphs;
(b) well-founded win-move across growing random games;
(c) the disjoint protocol across growing inputs on a fixed 3-node network.
"""

import pytest
from conftest import run_once

from repro.datalog import winmove_program
from repro.datalog.evaluation import SemiNaiveEvaluator
from repro.datalog.wellfounded import evaluate_well_founded
from repro.datalog.parser import parse_program
from repro.queries import complement_tc_query, random_game_graph, random_graph
from repro.transducers import (
    FairScheduler,
    Network,
    TransducerNetwork,
    disjoint_protocol_transducer,
    domain_guided_policy,
    hash_domain_assignment,
)

TC = parse_program(
    "T(x, y) :- E(x, y). T(x, z) :- T(x, y), E(y, z).", output_relations=["T"]
)


@pytest.mark.parametrize("nodes,edges", [(10, 20), (20, 50), (40, 120)])
def test_scaling_tc(benchmark, nodes, edges):
    instance = random_graph(nodes, edges, seed=nodes)
    evaluator = SemiNaiveEvaluator(TC)
    result = benchmark(lambda: evaluator.run(instance))
    closure = {f for f in result if f.relation == "T"}
    print(f"\nSCALE(a) TC: {nodes} nodes / {edges} edges -> {len(closure)} pairs")


@pytest.mark.parametrize("positions,moves", [(15, 30), (30, 70), (60, 150)])
def test_scaling_winmove(benchmark, positions, moves):
    game = random_game_graph(positions, moves, seed=positions)
    program = winmove_program()
    model = benchmark(lambda: evaluate_well_founded(program, game))
    print(
        f"\nSCALE(b) win-move: {positions} positions -> "
        f"{len(model.true)} true, {len(model.undefined)} undefined"
    )


@pytest.mark.parametrize("edges", [4, 8, 12])
def test_scaling_disjoint_protocol(benchmark, edges):
    cotc = complement_tc_query()
    instance = random_graph(6, edges, seed=edges)
    network = Network(["a", "b", "c"])
    policy = domain_guided_policy(
        cotc.input_schema, network, hash_domain_assignment(network)
    )

    def distributed():
        run = TransducerNetwork(
            network, disjoint_protocol_transducer(cotc), policy
        ).new_run(instance)
        output = run.run_to_quiescence(scheduler=FairScheduler(0))
        return output, run.metrics

    (output, metrics) = run_once(benchmark, distributed)
    assert output == cotc(instance)
    print(
        f"\nSCALE(c) disjoint protocol: {edges} edges -> "
        f"{metrics.transitions} transitions, {metrics.message_facts_sent} msg-facts"
    )
