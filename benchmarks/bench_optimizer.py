"""Optimizer benchmark: paired optimized-vs-barrier runs over the zoo.

For every zoo program with a committed gate instance, run the per-stratum
optimizer's chosen protocol bundle and the All-barrier baseline on the
same input and seeded scheduler, and record:

* byte-identity of the two outputs (the soundness gate);
* measured (rounds, messages, transitions) for both arms;
* the fitted cost model's predictions and whether the predicted
  (rounds, transitions) ordering agrees with the measured one;
* which programs the optimizer *upgraded* past the analyzer's Figure-2
  routing (the showcase being ``tagged-edges``: fragment=stratified, no
  whole-program guarantee, yet distinct-safe and so coordination-free).

``scripts/bench_report.py --optimizer`` distills the sweep into
``BENCH_optimizer.json`` and gates on: all arms byte-identical, at least
one upgraded mixed-stratification program strictly cheaper on measured
(rounds, transitions), and predicted/measured ordering agreement.
"""

from __future__ import annotations

from repro.cluster.gate import _ZOO_INSTANCES
from repro.datalog.instance import Instance
from repro.datalog.parser import parse_facts
from repro.optimizer import (
    DEFAULT_COST_MODEL,
    calibration_observations,
    fit_cost_model,
    plan_optimized,
    run_comparison,
)
from repro.queries.zoo import zoo_entries


def optimizer_sweep(*, nodes: int = 3, seeds: tuple[int, ...] = (0, 1)) -> dict:
    """Run the paired comparison for every zoo program with a gate
    instance, at every seed; returns the JSON-ready sweep record."""
    comparisons = []
    for entry in zoo_entries():
        facts_text = _ZOO_INSTANCES.get(entry.name)
        if facts_text is None:
            continue
        program = entry.program()
        optimized = plan_optimized(program)
        instance = Instance(parse_facts(facts_text))
        for seed in seeds:
            comparison = run_comparison(
                program, instance, nodes=nodes, seed=seed
            )
            comparisons.append(
                {
                    "program": entry.name,
                    "fragment": entry.fragment,
                    "baseline_monotonicity": (
                        optimized.baseline.analysis.monotonicity
                    ),
                    "effective_monotonicity": (
                        optimized.effective_monotonicity
                    ),
                    "seed": seed,
                    **comparison.to_dict(),
                }
            )
    return {
        "nodes": nodes,
        "seeds": list(seeds),
        "programs": len({c["program"] for c in comparisons}),
        "comparisons": comparisons,
        "default_cost_model": DEFAULT_COST_MODEL.to_dict(),
    }


def refit_agreement(*, smoke: bool = False) -> dict:
    """Refit the cost model from fresh calibration sweeps and check that
    it induces the same (rounds, transitions) protocol ordering at the
    benchmark's network size as the committed coefficients."""
    kwargs = (
        {"node_counts": (1, 3), "edge_counts": (4, 8)} if smoke else {}
    )
    fitted = fit_cost_model(calibration_observations(**kwargs))

    def ordering(model):
        kinds = ("broadcast", "distinct", "disjoint", "barrier")
        return sorted(
            kinds,
            key=lambda kind: model.predict(
                kind, nodes=3, facts=8
            ).ordering_key(),
        )

    committed_order = ordering(DEFAULT_COST_MODEL)
    fitted_order = ordering(fitted)
    return {
        "committed_order": committed_order,
        "fitted_order": fitted_order,
        "agrees": committed_order == fitted_order,
        "fitted": fitted.to_dict(),
    }


def main() -> int:
    sweep = optimizer_sweep()
    bad = [c for c in sweep["comparisons"] if not c["byte_identical"]]
    showcase = [
        c
        for c in sweep["comparisons"]
        if c["upgraded"] and c["measured_cheaper"]
    ]
    agree = sum(1 for c in sweep["comparisons"] if c["prediction_agrees"])
    total = len(sweep["comparisons"])
    print(f"comparisons:        {total} over {sweep['programs']} programs")
    print(f"byte-identical:     {total - len(bad)}/{total}")
    print(f"upgraded & cheaper: {len(showcase)}")
    print(f"prediction agrees:  {agree}/{total}")
    refit = refit_agreement()
    print(
        "refit ordering:     "
        + (" == " if refit["agrees"] else " != ").join(
            ["/".join(refit["committed_order"]), "/".join(refit["fitted_order"])]
        )
    )
    ok = not bad and showcase and refit["agrees"]
    print("verdict:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
