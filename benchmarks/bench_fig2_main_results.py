"""FIG2 — regenerate Figure 2: fragment placements and class guarantees.

Paper claim (Figure 2): Datalog(≠) ⊆ M, SP-Datalog ⊆ Mdistinct = E,
semicon-Datalog¬ ⊆ Mdisjoint, with the F/A model equalities alongside.
Measured: every zoo program is classified into its declared fragment by the
analyzer, and each fragment's guaranteed monotonicity class survives a
counterexample search.
"""

from conftest import assert_rows_ok, run_once

from repro.core import figure2_experiment, render_rows


def test_fig2_main_results(benchmark):
    rows = run_once(benchmark, figure2_experiment)
    print("\nFIG2 — main-results diagram (fragments and guarantees):")
    print(render_rows(rows))
    assert_rows_ok(rows)
