"""Benchmark helpers: every benchmark regenerates one paper artifact; the
measured quantity is the wall-clock of the regeneration, and the assertion
is that every claim in the artifact verifies."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """pytest-benchmark pedantic single-shot: these drivers are verification
    workloads, not microbenchmarks — one round is the honest measurement."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def assert_rows_ok(rows):
    failed = [r for r in rows if not r.ok]
    assert not failed, "\n".join(f"{r.claim}: {r.detail}" for r in failed)
