"""THM5.3 — semicon-Datalog¬ ⊆ Mdisjoint.

Paper claim: every semi-connected stratified program expresses a
domain-disjoint-monotone query; the non-semicon program P2 of Example 5.1
expresses a query outside Mdisjoint.
Measured: counterexample search over disjoint additions for every (semi-)
connected zoo program; the two-disjoint-triangles witness against P2.
"""

from conftest import assert_rows_ok, run_once

from repro.core import render_rows, theorem53_experiment


def test_thm53_semicon(benchmark):
    rows = run_once(benchmark, theorem53_experiment)
    print("\nTHM5.3 — semicon-Datalog¬ ⊆ Mdisjoint:")
    print(render_rows(rows))
    assert_rows_ok(rows)
