"""L5.2 — every con-Datalog¬ query distributes over components.

Paper claim: for connected stratified programs, Q(I) = ∪_{C ∈ co(I)} Q(C)
with componentwise-disjoint output adoms.
Measured: the connected program P1 of Example 5.1 evaluated globally vs
componentwise on seeded multi-component instances — plus a scaling sweep
showing componentwise evaluation is *cheaper*, the practical payoff of the
lemma.
"""

import time

from conftest import assert_rows_ok, run_once

from repro.core import lemma52_experiment, render_rows
from repro.datalog import Instance
from repro.datalog.stratified import evaluate as evaluate_program
from repro.queries import multi_component_instance, zoo_program


def test_lemma52_components(benchmark):
    rows = run_once(benchmark, lemma52_experiment, seeds=range(6))
    print("\nL5.2 — distribution over components:")
    print(render_rows(rows))
    assert_rows_ok(rows)


def test_lemma52_componentwise_speedup(benchmark):
    """Componentwise evaluation of a connected program should not be slower
    than whole-instance evaluation (it prunes the cross-component joins)."""
    program = zoo_program("example51-p1")
    instance = multi_component_instance([6, 6, 6, 6], seed=9)

    def componentwise():
        result = Instance()
        for component in instance.components():
            result = result | evaluate_program(program, component)
        return result

    start = time.perf_counter()
    whole = evaluate_program(program, instance)
    whole_seconds = time.perf_counter() - start

    result = benchmark(componentwise)
    assert result == whole
    print(
        f"\nL5.2 sweep — whole-instance evaluation took {whole_seconds * 1e3:.1f} ms "
        f"on 4x6-node components (componentwise time is the benchmark figure)"
    )
