"""THM4.5 / COR4.6 — removing `All` changes nothing: A1 = Mdistinct,
A2 = Mdisjoint, and F0 = A0 = M.

Paper claim: transducers with no knowledge of the full node set are
automatically coordination-free, and the protocol constructions never read
`All`, so they run unmodified in the no-All model.
Measured: the three protocols re-run under POLICY_AWARE_NO_ALL, with the
same consistency and heartbeat witnesses as in the full model.
"""

from conftest import assert_rows_ok, run_once

from repro.core import render_rows, theorem45_experiment


def test_thm45_no_all(benchmark):
    rows = run_once(benchmark, theorem45_experiment)
    print("\nTHM4.5 — no-All variants (A1 = Mdistinct, A2 = Mdisjoint):")
    print(render_rows(rows))
    assert_rows_ok(rows)
