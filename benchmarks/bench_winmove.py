"""WM — win-move is in Mdisjoint and coordination-free under domain
guidance (the headline of [32], reproved via the Section 7 remark).

Paper claims bundled here: the doubled program reproduces the well-founded
model; doubling preserves rule connectivity (the structural step of the
Section 7 argument); win-move survives disjoint-addition counterexample
search; and the Theorem 4.4 protocol computes it coordination-free.
"""

from conftest import assert_rows_ok, run_once

from repro.core import render_rows, winmove_experiment
from repro.datalog import evaluate_well_founded, winmove_program
from repro.queries import random_game_graph


def test_winmove_headline(benchmark):
    rows = run_once(benchmark, winmove_experiment)
    print("\nWM — win-move ∈ Mdisjoint, coordination-free under domain guidance:")
    print(render_rows(rows))
    assert_rows_ok(rows)


def test_winmove_solver_scaling(benchmark):
    """Raw well-founded solver cost on a 40-position random game — the
    substrate cost underlying every distributed win-move experiment."""
    game = random_game_graph(40, 90, seed=21)
    program = winmove_program()

    model = benchmark(lambda: evaluate_well_founded(program, game))
    won = {f.values[0] for f in model.true if f.relation == "Win"}
    positions = set(game.adom())
    assert won <= positions
    print(f"\nWM scaling — {len(positions)} positions, {len(won)} won")
