"""COORD — the price of coordination (Sections 4.1.5 / 4.3 made concrete).

Claim embodied: with `All`, a transducer can compute ANY query via a global
barrier — but that barrier is exactly what coordination-freeness forbids
(no heartbeat-only witness), and it costs extra handshake messaging even
for queries that did not need it.
Measured: (a) the barrier transducer computes a query outside Mdisjoint;
(b) it has no heartbeat witness while the disjoint protocol (on its member
query) does; (c) message cost of barrier vs disjoint protocol on the same
Mdisjoint query and input.
"""

from conftest import run_once

from repro.datalog import Instance, parse_facts
from repro.queries import complement_tc_query, triangle_unless_two_disjoint_query
from repro.transducers import (
    FairScheduler,
    Network,
    TransducerNetwork,
    check_distributed_computation,
    disjoint_protocol_transducer,
    domain_guided_policy,
    global_barrier_transducer,
    hash_domain_assignment,
    heartbeat_witness,
)

TRIANGLE = Instance(parse_facts("E(1,2). E(2,3). E(3,1)."))
GRAPH = Instance(parse_facts("E(1,2). E(2,1). E(3,4). E(4,5)."))


def coordination_price():
    network = Network(["a", "b", "c"])
    triangle_query = triangle_unless_two_disjoint_query()
    barrier = global_barrier_transducer(triangle_query)

    beyond = check_distributed_computation(
        barrier, triangle_query, TRIANGLE, seeds=(0,), include_trickle=False
    )
    no_witness = not heartbeat_witness(
        barrier, triangle_query, network, TRIANGLE, max_heartbeats=20
    ).found

    cotc = complement_tc_query()
    policy = domain_guided_policy(
        cotc.input_schema, network, hash_domain_assignment(network)
    )
    free_run = TransducerNetwork(
        network, disjoint_protocol_transducer(cotc), policy
    ).new_run(GRAPH)
    free_run.run_to_quiescence(scheduler=FairScheduler(0))

    barrier_run = TransducerNetwork(
        network, global_barrier_transducer(cotc), policy
    ).new_run(GRAPH)
    barrier_run.run_to_quiescence(scheduler=FairScheduler(0))

    return beyond, no_witness, free_run.metrics, barrier_run.metrics


def test_coordination_price(benchmark):
    beyond, no_witness, free_metrics, barrier_metrics = run_once(
        benchmark, coordination_price
    )
    print("\nCOORD — the price of coordination:")
    print(f"  barrier computes a query outside Mdisjoint: {beyond.consistent}")
    print(f"  barrier has NO heartbeat-only witness: {no_witness}")
    print(
        f"  coTC via disjoint protocol: {free_metrics.message_facts_sent} "
        f"message-facts, {free_metrics.rounds} rounds"
    )
    print(
        f"  coTC via global barrier:   {barrier_metrics.message_facts_sent} "
        f"message-facts, {barrier_metrics.rounds} rounds"
    )
    assert beyond.consistent
    assert no_witness
