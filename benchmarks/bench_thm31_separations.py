"""THM3.1 — the seven separation statements, witness by witness.

Paper claim: each witness query (coTC, Q^k_clique, Q^k_star,
Q^j_duplicate, triangles-unless-two-disjoint) refutes exactly the class the
proof of Theorem 3.1 says it refutes, with an addition of exactly the
claimed kind and size.
Measured: `verify()` on every packaged witness up to index 3.
"""

from conftest import run_once

from repro.monotonicity import theorem31_witnesses


def test_thm31_witnesses(benchmark):
    witnesses = run_once(benchmark, theorem31_witnesses, max_i=3)
    print("\nTHM3.1 — separating witnesses:")
    for witness in witnesses:
        print(f"  {witness.describe()}")
    assert all(w.verify() for w in witnesses)
    assert len(witnesses) >= 17
