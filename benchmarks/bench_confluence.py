"""CONF — bounded-exhaustive confluence: 'every fair run' made literal.

The transducer claims of Section 4 quantify over every fair run.  The
sampling in the THM4.x benchmarks covers many schedules; this benchmark
explores ALL reachable configurations (under the duplicate-idempotent
set-buffer abstraction) for small inputs, and shows the sharpest finding of
the reproduction: the naive broadcast strategy on a non-monotone query can
be *confluent but uniformly wrong* — every schedule converges to the same
incorrect output, which is exactly why 'distributedly computes Q' compares
against Q(I) rather than just demanding schedule-independence.
"""

from conftest import run_once

from repro.datalog import Instance, parse_facts
from repro.queries import complement_tc_query, transitive_closure_query
from repro.transducers import (
    Network,
    TransducerNetwork,
    broadcast_transducer,
    explore_runs,
    hash_policy,
)


def confluence_sweep():
    network = Network(["a", "b"])
    tc = transitive_closure_query()
    cotc = complement_tc_query()
    tc_instance = Instance(parse_facts("E(1,2). E(2,3)."))
    cycle = Instance(parse_facts("E(1,2). E(2,1)."))

    good = explore_runs(
        TransducerNetwork(
            network, broadcast_transducer(tc), hash_policy(tc.input_schema, network)
        ),
        tc_instance,
    )
    wrong = explore_runs(
        TransducerNetwork(
            network, broadcast_transducer(cotc), hash_policy(cotc.input_schema, network)
        ),
        cycle,
    )
    return good, wrong, tc(tc_instance), cotc(cycle)


def test_confluence_exploration(benchmark):
    good, wrong, tc_expected, cotc_expected = run_once(benchmark, confluence_sweep)
    print("\nCONF — exhaustive run exploration (2 nodes):")
    print(f"  broadcast/TC:   {good.describe()}")
    print(f"  broadcast/coTC: {wrong.describe()}")
    assert good.complete and good.confluent
    assert good.outputs[0] == tc_expected
    assert wrong.complete and wrong.confluent
    assert wrong.outputs[0] != cotc_expected
    print(
        "  -> broadcast/coTC is confluent but WRONG on every schedule: "
        "confluence alone does not make a strategy compute Q."
    )
