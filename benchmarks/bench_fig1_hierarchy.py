"""FIG1 — regenerate Figure 1: the monotonicity hierarchy via Theorem 3.1.

Paper claim: M ⊊ Mdistinct ⊊ Mdisjoint ⊊ C; M = M^i; the bounded distinct /
disjoint families form strict hierarchies with the stated incomparabilities.
Measured: all claims verify (separations by explicit witness pairs,
memberships by exhaustive-small + randomized counterexample search).
"""

from conftest import assert_rows_ok, run_once

from repro.core import figure1_experiment, render_rows


def test_fig1_hierarchy(benchmark):
    rows = run_once(benchmark, figure1_experiment, max_i=2)
    print("\nFIG1 — monotonicity hierarchy (Theorem 3.1):")
    print(render_rows(rows))
    assert_rows_ok(rows)
