"""CHAOS — confluence of the Section-4 protocols under injected faults.

Theorems 4.3/4.4/4.5 claim the constructed protocols *distributedly
compute* their query: every fair run — arbitrary reordering, duplication
and heartbeat interleavings of the multiset-buffer semantics — converges
to the same global output Q(I).  The THM4.x benchmarks sample orderly
schedules; this sweep turns the adversary all the way up: each protocol is
run across >= 20 seeded fault schedules combining

* an adversarial scheduler (trickle / singleton / heartbeat-storm /
  starvation-then-burst / seeded chaos mix), and
* a fault-injecting channel (duplicate-on-send, bounded delay,
  drop-with-eventual-redelivery — all fairness-preserving),

and asserts the global output is byte-identical (same telemetry
fingerprint) across every schedule AND equal to the centralized Q(I).
The coordinating barrier baseline rides along: it also converges under
fair faults — what it lacks is coordination-freeness, not confluence.

``CHAOS_SCHEDULES`` (env var) shrinks the sweep for CI smoke runs.
"""

import os

from conftest import run_once

from repro.transducers import (
    CHAOS_PLAN,
    FairScheduler,
    FaultyChannel,
    Network,
    TransducerNetwork,
    barrier_baseline,
    build_run_report,
    chaos_scheduler_zoo,
    output_fingerprint,
    section4_protocols,
)

SCHEDULES = int(os.environ.get("CHAOS_SCHEDULES", "20"))
NETWORK = Network(["n1", "n2", "n3"])


def _sweep_bundle(bundle, schedules):
    """Run one protocol bundle across *schedules* seeded fault schedules;
    returns (bundle, expected_fingerprint, reports, divergences)."""
    policy = bundle.policy(NETWORK)
    expected = bundle.expected()
    expected_print = output_fingerprint(expected)

    baseline = TransducerNetwork(NETWORK, bundle.transducer, policy).new_run(
        bundle.instance
    )
    baseline_out = baseline.run_to_quiescence(scheduler=FairScheduler(0))
    reports = [build_run_report(baseline, scheduler=FairScheduler(0))]
    divergences = []
    if output_fingerprint(baseline_out) != expected_print:
        divergences.append(f"{bundle.key}: fair baseline != Q(I)")

    zoo = chaos_scheduler_zoo(0)
    count = 0
    seed = 0
    while count < schedules:
        scheduler = chaos_scheduler_zoo(seed)[count % len(zoo)]
        run = TransducerNetwork(NETWORK, bundle.transducer, policy).new_run(
            bundle.instance, channel=FaultyChannel(CHAOS_PLAN, seed)
        )
        output = run.run_to_quiescence(scheduler=scheduler)
        report = build_run_report(run, scheduler=scheduler)
        reports.append(report)
        if report.output_fingerprint != expected_print:
            divergences.append(
                f"{bundle.key}: seed={seed} sched={scheduler.name} "
                f"out={report.output_fingerprint[:12]} != {expected_print[:12]}"
            )
        count += 1
        seed += 1
    return expected_print, reports, divergences


def chaos_sweep(schedules=SCHEDULES):
    results = []
    for bundle in section4_protocols() + (barrier_baseline(),):
        expected_print, reports, divergences = _sweep_bundle(bundle, schedules)
        results.append((bundle, expected_print, reports, divergences))
    return results


def test_chaos_confluence(benchmark):
    results = run_once(benchmark, chaos_sweep)
    print(f"\nCHAOS — confluence under {SCHEDULES} seeded fault schedules:")
    failures = []
    for bundle, expected_print, reports, divergences in results:
        failures.extend(divergences)
        rounds = [r.metrics["rounds"] for r in reports]
        adversarial = sum(r.metrics["pre_round_transitions"] for r in reports)
        faults = {}
        for report in reports:
            for key, value in report.faults.items():
                faults[key] = faults.get(key, 0) + value
        verdict = "confluent " if not divergences else "DIVERGED  "
        print(
            f"  [{verdict}] {bundle.theorem:<45} runs={len(reports)} "
            f"rounds={min(rounds)}..{max(rounds)} adversarial_transitions={adversarial} "
            f"faults={faults} out={expected_print[:12]}"
        )
        # Telemetry sanity: every run must actually quiesce, deliver
        # something somewhere, and report consistent counters.
        for report in reports:
            assert report.quiesced
            assert report.rounds_to_quiescence == report.metrics["rounds"]
            assert report.metrics["transitions"] == sum(
                n.transitions for n in report.per_node
            )
    assert not failures, "\n".join(failures)


def test_chaos_report_roundtrip(benchmark):
    """The JSON emitted for a chaos run parses back with the documented
    top-level fields (the contract of ``repro run --chaos --report``)."""
    import json

    def one_report():
        bundle = section4_protocols()[0]
        run = TransducerNetwork(
            NETWORK, bundle.transducer, bundle.policy(NETWORK)
        ).new_run(bundle.instance, channel=FaultyChannel(CHAOS_PLAN, 7))
        scheduler = chaos_scheduler_zoo(7)[-1]
        run.run_to_quiescence(scheduler=scheduler)
        return build_run_report(run, scheduler=scheduler, include_trace=True)

    report = run_once(benchmark, one_report)
    payload = json.loads(report.to_json())
    for field in (
        "version",
        "protocol",
        "nodes",
        "policy",
        "scheduler",
        "channel",
        "quiesced",
        "rounds_to_quiescence",
        "metrics",
        "faults",
        "per_node",
        "output_facts",
        "output_fingerprint",
        "trace",
    ):
        assert field in payload, field
    assert payload["faults"]["duplicated"] >= 0
    assert payload["per_node"][0]["buffer_high_water"] >= 0
